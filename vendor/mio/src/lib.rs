//! Offline vendored subset of the `mio` API.
//!
//! Provides exactly the readiness primitives the l2q reactor uses, with
//! mio's names and shapes so the engine reads like any mio program:
//!
//! * [`Poll`] / [`Registry`] / [`Events`] / [`event::Event`] — an OS
//!   readiness selector. On Linux this is epoll (level-triggered: the
//!   engine drains sockets until `WouldBlock`, which is correct under
//!   both level and edge semantics, and level-triggering cannot lose a
//!   wakeup to a missed drain). On other unixes a `poll(2)` fallback
//!   rebuilds the fd set from the registration table each call.
//! * [`Token`] / [`Interest`] — the per-registration identity and the
//!   readable/writable interest mask.
//! * [`Waker`] — a self-pipe that makes `Poll::poll` return from another
//!   thread (worker completions, accept-loop handoffs, shutdown).
//! * [`net::TcpListener`] / [`net::TcpStream`] — thin nonblocking
//!   wrappers over the std types implementing [`event::Source`].
//!
//! This is the only crate in the workspace allowed to contain `unsafe`
//! (raw syscall FFI); every other crate carries `#![forbid(unsafe_code)]`.
//! The FFI declares the handful of libc symbols std already links —
//! there is no dependency on the `libc` crate or any registry.

#![cfg(unix)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::unix::io::RawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Identity a readiness event carries back to the caller. The reactor
/// maps tokens to connection slab slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readable/writable interest mask for a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);
    /// No readiness interest: the registration is parked and only
    /// hangup/error conditions (which epoll always reports) surface.
    /// Subset extension over upstream mio, where registrations must
    /// carry at least one interest; readiness loops here use it to
    /// pause level-triggered read interest without deregistering.
    pub const NONE: Interest = Interest(0);

    /// Union of two interests (mio's combinator name).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include write readiness?
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

pub mod event {
    //! Readiness events and the registration trait.

    use super::{Interest, Registry, Token};
    use std::io;

    /// A single readiness event delivered by [`super::Poll::poll`].
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub(crate) token: Token,
        pub(crate) readable: bool,
        pub(crate) writable: bool,
        pub(crate) read_closed: bool,
        pub(crate) write_closed: bool,
        pub(crate) error: bool,
    }

    impl Event {
        /// The token the fd was registered with.
        pub fn token(&self) -> Token {
            self.token
        }
        /// Read readiness (data, or a close/error that a read will surface).
        pub fn is_readable(&self) -> bool {
            self.readable
        }
        /// Write readiness.
        pub fn is_writable(&self) -> bool {
            self.writable
        }
        /// Peer shut down its write half (HUP/RDHUP).
        pub fn is_read_closed(&self) -> bool {
            self.read_closed
        }
        /// Our write half is no longer usable (HUP/ERR).
        pub fn is_write_closed(&self) -> bool {
            self.write_closed
        }
        /// Error condition on the fd; a read or write will surface it.
        pub fn is_error(&self) -> bool {
            self.error
        }
    }

    /// Types that can be registered with a [`Registry`].
    pub trait Source {
        /// Register interest in this source under `token`.
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;
        /// Change the token or interest of an existing registration.
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;
        /// Remove this source from the selector.
        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

pub use event::Event;

/// Buffer of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer that receives at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// No events were delivered (timeout expired).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Maximum events deliverable per poll.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop all buffered events (poll does this implicitly).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Handle for registering sources with a [`Poll`]. Cloneable and
/// shareable across threads (the selector lives behind an `Arc`).
#[derive(Clone)]
pub struct Registry {
    selector: Arc<sys::Selector>,
    wakers: Arc<Mutex<Vec<(u64, RawFd)>>>,
}

impl Registry {
    /// Register `source` for `interests` under `token`.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Update an existing registration's token/interests.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Remove `source` from the selector.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    /// Independent handle to the same selector (mio API parity; the
    /// handle is also plain [`Clone`]).
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(self.clone())
    }

    fn register_raw(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.selector.register(fd, token.0 as u64, interests)
    }

    fn reregister_raw(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token.0 as u64, interests)
    }

    fn deregister_raw(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }
}

/// The readiness selector. One per reactor thread; `poll` blocks until
/// an event, the timeout, or a [`Waker`] fires.
pub struct Poll {
    registry: Registry,
    buf: Vec<sys::RawEvent>,
}

impl Poll {
    /// A fresh selector (epoll instance on Linux).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
                wakers: Arc::new(Mutex::new(Vec::new())),
            },
            buf: Vec::new(),
        })
    }

    /// The registration handle for this selector.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until readiness events arrive, the timeout expires, or a
    /// waker fires. Events land in `events` (cleared first). Waker pipes
    /// are drained here so a waker token is delivered at most once per
    /// burst of `wake` calls.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.registry
            .selector
            .select(&mut self.buf, events.capacity, timeout)?;
        let wakers = self
            .registry
            .wakers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for raw in &self.buf {
            let ev = sys::decode(raw);
            if let Some((_, read_fd)) = wakers.iter().find(|(t, _)| *t == ev.token.0 as u64) {
                sys::drain_pipe(*read_fd);
            }
            events.inner.push(ev);
        }
        Ok(())
    }
}

/// Cross-thread wakeup for a [`Poll`]: a nonblocking self-pipe whose
/// read end is registered under `token`. `wake` writes one byte; the
/// poll loop sees a readable event on `token` (the pipe is drained by
/// `Poll::poll` itself, so spurious re-deliveries don't accumulate).
pub struct Waker {
    registry: Registry,
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Create a waker delivering events on `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        if let Err(e) = registry.register_raw(read_fd, token, Interest::READABLE) {
            sys::close_fd(read_fd);
            sys::close_fd(write_fd);
            return Err(e);
        }
        registry
            .wakers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((token.0 as u64, read_fd));
        Ok(Waker {
            registry: registry.clone(),
            read_fd,
            write_fd,
        })
    }

    /// Make the owning `Poll::poll` return. Safe from any thread; a full
    /// pipe means a wakeup is already pending, which is success.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write_byte(self.write_fd) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => self.wake(),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        self.registry
            .wakers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(_, fd)| *fd != self.read_fd);
        let _ = self.registry.deregister_raw(self.read_fd);
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

pub mod net {
    //! Nonblocking TCP wrappers implementing [`event::Source`].

    use super::{event, Interest, Registry, Token};
    use std::io::{self, Read, Write};
    use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
    use std::os::unix::io::{AsRawFd, RawFd};

    /// Nonblocking TCP listener.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Bind and switch to nonblocking mode.
        pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Adopt a std listener (switched to nonblocking mode here).
        pub fn from_std(inner: std::net::TcpListener) -> io::Result<TcpListener> {
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Accept one pending connection; `WouldBlock` when none is
        /// queued. The returned stream is already nonblocking.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            stream.set_nonblocking(true)?;
            Ok((TcpStream { inner: stream }, addr))
        }

        /// Local bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl AsRawFd for TcpListener {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    /// Nonblocking TCP stream.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Adopt a std stream (switched to nonblocking mode here).
        pub fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        /// Remote peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// Local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Half/full-close the socket.
        pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
            self.inner.shutdown(how)
        }

        /// Pending asynchronous socket error, if any.
        pub fn take_error(&self) -> io::Result<Option<io::Error>> {
            self.inner.take_error()
        }
    }

    impl AsRawFd for TcpStream {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }

    impl event::Source for TcpListener {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.register_raw(self.as_raw_fd(), token, interests)
        }
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.reregister_raw(self.as_raw_fd(), token, interests)
        }
        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            registry.deregister_raw(self.as_raw_fd())
        }
    }

    impl event::Source for TcpStream {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.register_raw(self.as_raw_fd(), token, interests)
        }
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.reregister_raw(self.as_raw_fd(), token, interests)
        }
        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            registry.deregister_raw(self.as_raw_fd())
        }
    }
}

mod sys {
    //! Raw syscall surface. All `unsafe` in the workspace lives here.

    use super::{Event, Interest, Token};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    extern "C" {
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const F_SETFD: c_int = 2;
    const FD_CLOEXEC: c_int = 1;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Close ignoring errors (drop paths).
    pub(crate) fn close_fd(fd: RawFd) {
        // SAFETY: closing an fd this crate owns; errors are ignorable here.
        unsafe {
            close(fd);
        }
    }

    /// A nonblocking close-on-exec self-pipe: (read_end, write_end).
    pub(crate) fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds points at two writable c_ints.
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            // SAFETY: plain fcntl on fds we just created.
            let r = unsafe {
                cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))
                    .and_then(|_| cvt(fcntl(fd, F_GETFL, 0)))
                    .and_then(|flags| cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK)))
            };
            if let Err(e) = r {
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Write one byte to a waker pipe.
    pub(crate) fn write_byte(fd: RawFd) -> io::Result<()> {
        let byte = 1u8;
        // SAFETY: writing one byte from a live stack buffer.
        let n = unsafe { write(fd, std::ptr::addr_of!(byte).cast::<c_void>(), 1) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Drain a waker pipe so one delivered event covers a burst of wakes.
    pub(crate) fn drain_pipe(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live stack buffer of the stated size.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }

    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => {
                // Round up so a nonzero timeout never busy-spins at 0ms.
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                ms.min(c_int::MAX as u128) as c_int
            }
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) use epoll::{decode, RawEvent, Selector};

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::*;

        // The kernel packs epoll_event on x86; other ABIs use natural
        // alignment. Mirroring glibc's __EPOLL_PACKED exactly.
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
        #[derive(Clone, Copy)]
        pub(crate) struct RawEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut RawEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        const EPOLL_CLOEXEC: c_int = 0o2000000;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLPRI: u32 = 0x002;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;

        pub(crate) struct Selector {
            epfd: RawFd,
        }

        impl Selector {
            pub(crate) fn new() -> io::Result<Selector> {
                // SAFETY: plain syscall, no pointers.
                let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
                Ok(Selector { epfd })
            }

            fn mask(interests: Interest) -> u32 {
                let mut m = EPOLLRDHUP;
                if interests.is_readable() {
                    m |= EPOLLIN;
                }
                if interests.is_writable() {
                    m |= EPOLLOUT;
                }
                m
            }

            fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
                let mut ev = RawEvent { events, data };
                // SAFETY: ev is a live, correctly-laid-out epoll_event.
                cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
                Ok(())
            }

            pub(crate) fn register(
                &self,
                fd: RawFd,
                token: u64,
                interests: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, Self::mask(interests), token)
            }

            pub(crate) fn reregister(
                &self,
                fd: RawFd,
                token: u64,
                interests: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, Self::mask(interests), token)
            }

            pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
            }

            pub(crate) fn select(
                &self,
                buf: &mut Vec<RawEvent>,
                capacity: usize,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                buf.clear();
                buf.resize(capacity, RawEvent { events: 0, data: 0 });
                // SAFETY: buf has `capacity` writable RawEvents; the
                // kernel fills at most that many.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        capacity as c_int,
                        timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    buf.clear();
                    if err.kind() == io::ErrorKind::Interrupted {
                        // A signal is a spurious wakeup, not a failure.
                        return Ok(0);
                    }
                    return Err(err);
                }
                buf.truncate(n as usize);
                Ok(n as usize)
            }
        }

        impl Drop for Selector {
            fn drop(&mut self) {
                close_fd(self.epfd);
            }
        }

        pub(crate) fn decode(raw: &RawEvent) -> Event {
            let bits = raw.events;
            Event {
                token: Token(raw.data as usize),
                readable: bits & (EPOLLIN | EPOLLPRI | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & EPOLLOUT != 0,
                read_closed: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                write_closed: bits & (EPOLLHUP | EPOLLERR) != 0,
                error: bits & EPOLLERR != 0,
            }
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub(crate) use fallback::{decode, RawEvent, Selector};

    #[cfg(not(target_os = "linux"))]
    mod fallback {
        //! `poll(2)` fallback for non-Linux unixes: the registration
        //! table lives in userspace and the pollfd set is rebuilt per
        //! call. O(registered) per wakeup — fine for tests and dev
        //! boxes; production serving targets Linux.

        use super::*;
        use std::collections::HashMap;
        use std::sync::Mutex;

        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: c_int,
            events: i16,
            revents: i16,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: std::os::raw::c_uint, timeout: c_int) -> c_int;
        }

        const POLLIN: i16 = 0x001;
        const POLLPRI: i16 = 0x002;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;

        pub(crate) struct RawEvent {
            token: u64,
            revents: i16,
        }

        pub(crate) struct Selector {
            table: Mutex<HashMap<RawFd, (u64, Interest)>>,
        }

        impl Selector {
            pub(crate) fn new() -> io::Result<Selector> {
                Ok(Selector {
                    table: Mutex::new(HashMap::new()),
                })
            }

            pub(crate) fn register(
                &self,
                fd: RawFd,
                token: u64,
                interests: Interest,
            ) -> io::Result<()> {
                let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
                if table.insert(fd, (token, interests)).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                Ok(())
            }

            pub(crate) fn reregister(
                &self,
                fd: RawFd,
                token: u64,
                interests: Interest,
            ) -> io::Result<()> {
                let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
                match table.get_mut(&fd) {
                    Some(slot) => {
                        *slot = (token, interests);
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }

            pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
                let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
                match table.remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }

            pub(crate) fn select(
                &self,
                buf: &mut Vec<RawEvent>,
                capacity: usize,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                buf.clear();
                let mut raw: Vec<PollFd> = Vec::new();
                let mut tokens: Vec<u64> = Vec::new();
                {
                    let table = self.table.lock().unwrap_or_else(|e| e.into_inner());
                    for (&fd, &(token, interests)) in table.iter() {
                        let mut events = 0i16;
                        if interests.is_readable() {
                            events |= POLLIN;
                        }
                        if interests.is_writable() {
                            events |= POLLOUT;
                        }
                        raw.push(PollFd {
                            fd,
                            events,
                            revents: 0,
                        });
                        tokens.push(token);
                    }
                }
                // SAFETY: raw is a live array of raw.len() pollfds.
                let n = unsafe {
                    poll(
                        raw.as_mut_ptr(),
                        raw.len() as std::os::raw::c_uint,
                        timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for (i, p) in raw.iter().enumerate() {
                    if p.revents != 0 && buf.len() < capacity {
                        buf.push(RawEvent {
                            token: tokens[i],
                            revents: p.revents,
                        });
                    }
                }
                Ok(buf.len())
            }
        }

        pub(crate) fn decode(raw: &RawEvent) -> Event {
            let bits = raw.revents;
            Event {
                token: Token(raw.token as usize),
                readable: bits & (POLLIN | POLLPRI | POLLHUP | POLLERR) != 0,
                writable: bits & POLLOUT != 0,
                read_closed: bits & POLLHUP != 0,
                write_closed: bits & (POLLHUP | POLLERR) != 0,
                error: bits & POLLERR != 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Instant;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(9);

    #[test]
    fn listener_accept_and_stream_echo_via_readiness() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(16);
        let mut listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .unwrap();

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        // Accept becomes readable.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut accepted = None;
        while accepted.is_none() && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                if ev.token() == LISTENER && ev.is_readable() {
                    let (stream, _) = listener.accept().unwrap();
                    accepted = Some(stream);
                }
            }
        }
        let mut server_side = accepted.expect("listener never became readable");
        poll.registry()
            .register(
                &mut server_side,
                CLIENT,
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();

        client.write_all(b"ping\n").unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 5 && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                if ev.token() == CLIENT && ev.is_readable() {
                    let mut buf = [0u8; 64];
                    loop {
                        match server_side.read(&mut buf) {
                            Ok(0) => break,
                            Ok(n) => got.extend_from_slice(&buf[..n]),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) => panic!("read failed: {e}"),
                        }
                    }
                }
            }
        }
        assert_eq!(got, b"ping\n");

        // A fresh connection is immediately writable.
        server_side.write_all(b"pong\n").unwrap();
        let mut reply = [0u8; 5];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"pong\n");

        poll.registry().deregister(&mut server_side).unwrap();
        poll.registry().deregister(&mut listener).unwrap();
    }

    #[test]
    fn waker_fires_from_another_thread_and_coalesces() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let waker = Arc::new(Waker::new(poll.registry(), WAKER).unwrap());

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            // A burst of wakes coalesces into (at least) one event.
            for _ in 0..100 {
                remote.wake().unwrap();
            }
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut woke = false;
        while !woke && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            woke = events.iter().any(|e| e.token() == WAKER && e.is_readable());
        }
        t.join().unwrap();
        assert!(woke, "waker event never delivered");

        // Pipe was drained by poll: with no new wakes, poll times out.
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token() != WAKER),
            "stale waker event redelivered after drain"
        );
    }

    #[test]
    fn poll_timeout_returns_empty() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
