//! Offline vendored subset of the `serde` API.
//!
//! The build container cannot reach crates.io, so the workspace ships a
//! minimal serde look-alike: [`Serialize`] / [`Deserialize`] traits over an
//! in-memory JSON [`Value`] model, plus the derive macros re-exported from
//! the vendored `serde_derive`. The `serde_json` vendor crate layers text
//! encoding/decoding on top of this data model.
//!
//! Supported container attributes: `#[serde(rename_all = "snake_case")]`
//! on enums. Supported field attribute: `#[serde(skip)]` (omitted on
//! serialize, `Default::default()` on deserialize).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory JSON data model shared by `serde` and `serde_json`.
///
/// Objects preserve insertion order (serialization order = declaration
/// order), which keeps exported artifacts diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers round-trip exactly up to
    /// 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short label of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error: a message plus an optional field path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Wrap the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Self {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to the JSON data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected boolean, got {}", v.kind())))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))?;
                if n.fract() != 0.0 {
                    return Err(Error::msg(format!("expected integer, got {n}")));
                }
                let min = <$t>::MIN as f64;
                let max = <$t>::MAX as f64;
                if n < min || n > max {
                    return Err(Error::msg(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr; $($t:ident : $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?;
                if a.len() != $n {
                    return Err(Error::msg(format!(
                        "expected {}-tuple, got array of {}",
                        $n,
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    };
}

impl_tuple!(1; A: 0);
impl_tuple!(2; A: 0, B: 1);
impl_tuple!(3; A: 0, B: 1, C: 2);
impl_tuple!(4; A: 0, B: 1, C: 2, D: 3);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

/// Support machinery used by the derive macros (not public API).
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up `name` in the object entries and deserialize it; missing
    /// fields deserialize from `null` (so `Option` fields default to
    /// `None` and everything else reports a clear error).
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        let found = obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match found {
            Some(v) => T::from_value(v).map_err(|e| e.in_field(name)),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::msg(format!("missing field `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert!(Option::<u32>::from_value(&o.to_value()).unwrap().is_none());
    }

    #[test]
    fn type_errors_are_descriptive() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected number"));
        let err = u8::from_value(&Value::Num(300.0)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn object_get_and_missing_fields() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
        let opt: Option<u32> = __private::field(v.as_object().unwrap(), "b").unwrap();
        assert!(opt.is_none());
        let err = __private::field::<u32>(v.as_object().unwrap(), "b").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
