//! Offline vendored subset of the `crossbeam` API.
//!
//! Provides the two pieces the workspace uses, built on `std`:
//!
//! * [`channel`] — MPMC channels (bounded with backpressure, unbounded)
//!   implemented with a mutex-guarded ring plus condvars. Senders and
//!   receivers are cloneable; disconnection is tracked by reference
//!   counts, matching crossbeam's semantics for `recv` returning `Err`
//!   once the channel is empty and all senders are gone.
//! * [`thread`] — scoped threads wrapping `std::thread::scope` in
//!   crossbeam's `scope(|s| ...) -> thread::Result<R>` signature.

pub mod channel {
    //! MPMC channels with crossbeam's API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Self {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    senders: 1,
                    receivers: 1,
                }),
                cap,
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half (cloneable; messages are distributed, not broadcast).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error of [`Sender::send`]: all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error of [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(Some(cap.max(1)));
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(None);
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> core::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> core::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (waits while a bounded channel is full).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send; fails with `Full` on a bounded channel at
        /// capacity (the service's backpressure signal).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Current queue length (diagnostic).
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Current queue length (diagnostic).
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    use std::marker::PhantomData;

    /// Handle passed to scoped closures (crossbeam passes `&Scope`; the
    /// workspace's closures ignore it, so this carries no operations
    /// beyond nested `spawn`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and collect its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// handle (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    f(&Scope {
                        inner: inner_scope,
                        _marker: PhantomData,
                    })
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns. Panics in spawned
    /// threads surface on `join` (or propagate on scope exit, as with
    /// `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                _marker: PhantomData,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_backpressure_try_send() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded::<usize>(4);
        let n = 200;
        let counted = std::sync::Mutex::new(vec![0usize; n]);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let counted = &counted;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        counted.lock().unwrap()[v] += 1;
                    }
                });
            }
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert!(counted.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn scoped_threads_join_with_results() {
        let data = [1u32, 2, 3, 4];
        let sum: u32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }
}
