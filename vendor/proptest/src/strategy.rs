//! The [`Strategy`] trait and the concrete strategies the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe producing random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// directly yields a value.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from each value and draw from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values not matching a predicate (retried by the runner's
    /// caller via fresh generation, bounded to keep rejection cheap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy of `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct ArbBool;

impl Strategy for ArbBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($s:ident : $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `&str` as a strategy: a regex-subset string generator.
///
/// Supported syntax — enough for the workspace's patterns: top-level
/// alternation `a|b`, character classes `[a-z0-9_.]` (ranges + literals),
/// literal characters, and `{m}` / `{m,n}` repetition of the preceding
/// atom. Unsupported constructs panic with the offending pattern.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let branches = parse_pattern(self);
        let branch = &branches[rng.gen_range(0..branches.len())];
        let mut out = String::new();
        for atom in branch {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Vec<Atom>> {
    pattern.split('|').map(parse_branch).collect()
}

fn parse_branch(branch: &str) -> Vec<Atom> {
    let chars: Vec<char> = branch.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {branch:?}"))
                    + i;
                let set = parse_class(&chars[i + 1..close], branch);
                i = close + 1;
                set
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing backslash in {branch:?}"));
                i += 2;
                vec![c]
            }
            c @ ('(' | ')' | '*' | '+' | '?' | '.' | '^' | '$') => {
                panic!("unsupported regex construct {c:?} in pattern {branch:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {branch:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

fn parse_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' && class[i] <= class[i + 2] {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            set.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else if class[i] == '\\' && i + 1 < class.len() {
            set.push(class[i + 1]);
            i += 2;
        } else {
            set.push(class[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (0u32..5).generate(&mut r);
            assert!(x < 5);
            let (a, b) = (1usize..4, 0.5f64..1.5).generate(&mut r);
            assert!((1..4).contains(&a));
            assert!((0.5..1.5).contains(&b));
            assert_eq!(Just(7u8).generate(&mut r), 7);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        let pat = "[a-z]{1,8}|[0-9]{1,4}|[-.,!?@#]{1,2}";
        for _ in 0..500 {
            let s = pat.generate(&mut r);
            assert!(!s.is_empty());
            let all_alpha = s.chars().all(|c| c.is_ascii_lowercase());
            let all_digit = s.chars().all(|c| c.is_ascii_digit());
            let all_punct = s.chars().all(|c| "-.,!?@#".contains(c));
            assert!(all_alpha || all_digit || all_punct, "{s:?}");
            match (all_alpha, all_digit) {
                (true, false) => assert!(s.len() <= 8),
                (false, true) => assert!(s.len() <= 4),
                _ => assert!(s.len() <= 2),
            }
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n..n + 1).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.generate(&mut r);
            assert_eq!(v.len(), n);
        }
    }
}
