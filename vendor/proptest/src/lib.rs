//! Offline vendored subset of the `proptest` API.
//!
//! Supports the features this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map`, integer and float range
//! strategies, `Just`, `any::<bool>()`, tuple strategies up to arity 6,
//! [`collection::vec`], and string-generating strategies from a regex
//! subset (`[...]` classes, `{m,n}` repetition, top-level alternation).
//!
//! Differences from upstream: no shrinking (failures report the original
//! input), and the per-test RNG is seeded from the test body's source
//! location, so runs are deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure: fail the test.
    Fail(String),
    /// `prop_assume!` rejection: skip the case.
    Reject,
}

/// Deterministic per-test random source.
pub struct TestRunner {
    rng: StdRng,
    config: ProptestConfig,
}

impl TestRunner {
    /// Create a runner; the seed is derived from `name` (deterministic).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
            config,
        }
    }

    /// Run `f` for the configured number of cases. Rejected cases
    /// (`prop_assume!`) are retried with fresh inputs, up to a global
    /// rejection budget.
    pub fn run(&mut self, name: &str, mut f: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
        let mut executed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(256);
        while executed < self.config.cases {
            match f(&mut self.rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {name}: too many prop_assume! rejections \
                             ({rejected} rejects for {executed} cases)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: case {executed} failed: {msg}")
                }
            }
        }
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for any `Arbitrary` type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = strategy::ArbBool;

    fn arbitrary() -> Self::Strategy {
        strategy::ArbBool
    }
}

impl Arbitrary for u8 {
    type Strategy = core::ops::Range<u8>;

    fn arbitrary() -> Self::Strategy {
        0..u8::MAX
    }
}

impl Arbitrary for u32 {
    type Strategy = core::ops::Range<u32>;

    fn arbitrary() -> Self::Strategy {
        0..u32::MAX
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — the proptest collection constructor.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::{any, Arbitrary, ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test entry macro. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_prop(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
                runner.run(stringify!($name), |__rng| {
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), __rng);
                    )*
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
