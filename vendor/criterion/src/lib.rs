//! Offline vendored subset of the `criterion` API.
//!
//! Matches the call surface of this workspace's benches — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a lightweight
//! timing core: each benchmark is warmed up briefly, then sampled until a
//! small wall-clock budget is spent, and the median per-iteration time is
//! printed in criterion-like one-line form. There is no statistical
//! analysis, plotting, or baseline persistence.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
    time_budget: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one sample per call, until the
    /// sample or time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (also forces lazy setup).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.sample_budget && started.elapsed() < self.time_budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark manager: entry point handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            time_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
            sample_size: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, f: R) -> &mut Self {
        run_one(id, self.sample_size, self.time_budget, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.time_budget,
            f,
        );
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (upstream finalizes reports here; a no-op beyond
    /// keeping call sites source-compatible).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: R) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        sample_budget: samples.max(1),
        time_budget: budget,
    };
    f(&mut b);
    let n = b.samples.len();
    let med = b.median();
    println!("{id:<50} time: [{} median, {n} samples]", human(med));
}

/// Declare a benchmark group function. Mirrors criterion's basic form
/// (`criterion_group!(name, target1, target2, ...)`); the config form
/// is not supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups. Command-line arguments
/// (e.g. cargo's `--bench`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness flags such as `--bench` / filter strings.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 3), &3u32, |b, &n| {
            b.iter(|| {
                ran += n;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran >= 3, "routine should run at least once (warmup)");
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("solve", 64).to_string(), "solve/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
