//! Offline vendored subset of the `serde_json` API: JSON text
//! encoding/decoding over the vendored `serde` [`Value`] data model.
//!
//! Numbers serialize through `f64` with shortest-round-trip formatting
//! (Rust's `{}` for floats), so every finite value re-parses to the exact
//! same bits; integers up to 2^53 print without a decimal point.

pub use serde::{Error, Value};

/// Convert any serializable value to the in-memory data model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty (2-space indented) JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Match serde_json's Value behavior: non-finite numbers become null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's artifacts; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("unexpected end"))?;
                    if (c as u32) < 0x20 {
                        return Err(Error::msg("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn float_precision_survives_round_trip() {
        let xs = [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE];
        for &x in &xs {
            let text = to_string(&Value::Num(x)).unwrap();
            let back = parse_value(&text).unwrap().as_f64().unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":{"e":[]}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_on_malformed_input() {
        for bad in [
            "not json",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn escapes_decode() {
        let v = parse_value(r#""aA\t\"\\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\t\"\\");
    }
}
