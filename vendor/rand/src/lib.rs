//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: seedable
//! deterministic generators ([`rngs::StdRng`], [`rngs::SmallRng`]), the
//! [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`, and the
//! [`seq::SliceRandom`] helpers `shuffle` / `choose`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for corpus synthesis and shuffling. It is
//! **not** the upstream `StdRng` (ChaCha12): streams differ from the real
//! crate, which only matters if a fixed seed must reproduce upstream
//! sequences (nothing in this workspace does; tests assert structural
//! invariants, not golden sequences).

/// Core trait of random generators: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty float range in gen_range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Debias-free modular reduction (Lemire's multiply-shift).
#[inline]
fn reduce_u64(x: u64, span: u64) -> u64 {
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

/// Uniform in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values producible by [`Rng::gen`].
pub trait Standard0Sample: Sized {
    /// Draw one value.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard0Sample for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard0Sample for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard0Sample for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl Standard0Sample for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

/// Extension methods over any [`RngCore`] (the user-facing API).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Draw a value of an inferable type.
    fn r#gen<T: Standard0Sample>(&mut self) -> T {
        T::draw(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixpoint of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 1, 2];
            }
            Self { s }
        }
    }

    /// Small fast generator (same engine as [`StdRng`] here).
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Random helpers on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 5];
        let pool = [0usize, 1, 2, 3, 4];
        for _ in 0..500 {
            seen[*pool.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
