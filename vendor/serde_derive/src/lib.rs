//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! A dependency-free (no syn/quote) derive for the vendored `serde` data
//! model. Supported shapes — exactly what the l2q workspace uses:
//!
//! * structs with named fields (`#[serde(skip)]` honored per field);
//! * enums whose variants are unit or tuple variants (externally tagged,
//!   `#[serde(rename_all = "snake_case")]` honored on the container).
//!
//! Anything else (generics, tuple structs, struct variants) produces a
//! `compile_error!` naming the unsupported shape, so misuse fails loudly
//! at build time rather than misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// Number of tuple payload fields (0 = unit variant).
    arity: usize,
}

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
        snake_case: bool,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token")
}

/// Whether an attribute token text carries `serde(...)` containing `what`.
fn serde_attr_contains(attr_text: &str, what: &str) -> bool {
    let t: String = attr_text.chars().filter(|c| !c.is_whitespace()).collect();
    t.starts_with("serde(") && t.contains(what)
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_attrs: Vec<String> = Vec::new();

    // Header: attributes, visibility, then `struct`/`enum` + name.
    let kind;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // #[...] — record the bracket group text.
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    container_attrs.push(g.stream().to_string());
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                i += 1;
                // Skip pub(crate)/pub(super) group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"struct" => {
                kind = "struct";
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"enum" => {
                kind = "enum";
                i += 1;
                break;
            }
            Some(other) => return Err(format!("unexpected token {other} before struct/enum")),
            None => return Err("no struct or enum found".into()),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    i += 1;

    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Shape::Struct {
                    name,
                    fields: parse_fields(&body)?,
                })
            } else {
                let snake_case = container_attrs
                    .iter()
                    .any(|a| serde_attr_contains(a, "rename_all=\"snake_case\""));
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(&body)?,
                    snake_case,
                })
            }
        }
        _ => Err(format!(
            "vendored serde derive supports only braced {kind} bodies for `{name}`"
        )),
    }
}

/// Split `body` on top-level commas, tracking `<...>` angle depth so that
/// commas inside generic arguments don't split.
fn split_top_level(body: &[TokenTree]) -> Vec<Vec<&TokenTree>> {
    let mut out: Vec<Vec<&TokenTree>> = Vec::new();
    let mut cur: Vec<&TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for item in split_top_level(body) {
        let mut j = 0;
        let mut skip = false;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = item.get(j) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = item.get(j + 1) {
                if serde_attr_contains(&g.stream().to_string(), "skip") {
                    skip = true;
                }
                j += 2;
            } else {
                return Err("malformed field attribute".into());
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = item.get(j) {
            if *id.to_string() == *"pub" {
                j += 1;
                if let Some(TokenTree::Group(g)) = item.get(j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        j += 1;
                    }
                }
            }
        }
        let name = match item.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, got {other}")),
            None => continue,
        };
        match item.get(j + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "vendored serde derive supports only named fields (at `{name}`)"
                ))
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for item in split_top_level(body) {
        let mut j = 0;
        // Variant attributes (ignored).
        while let Some(TokenTree::Punct(p)) = item.get(j) {
            if p.as_char() != '#' {
                break;
            }
            j += 2;
        }
        let name = match item.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, got {other}")),
            None => continue,
        };
        let arity = match item.get(j + 1) {
            None => 0,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                split_top_level(&inner).len()
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde derive does not support struct variant `{name}`"
                ));
            }
            Some(other) => return Err(format!("unexpected token {other} after variant `{name}`")),
        };
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

/// CamelCase → snake_case (serde's rename_all convention).
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn tag(v: &Variant, snake_case: bool) -> String {
    if snake_case {
        snake(&v.name)
    } else {
        v.name.clone()
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push(({:?}.to_string(), serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut __m: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(__m)\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum {
            name,
            variants,
            snake_case,
        } => {
            let mut arms = String::new();
            for v in variants {
                let t = tag(v, *snake_case);
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{} => serde::Value::Str({t:?}.to_string()),\n",
                        v.name
                    ));
                } else {
                    let binds: Vec<String> = (0..v.arity).map(|k| format!("__x{k}")).collect();
                    let payload = if v.arity == 1 {
                        "serde::Serialize::to_value(__x0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!("serde::Value::Array(vec![{}])", items.join(", "))
                    };
                    arms.push_str(&format!(
                        "{name}::{}({}) => serde::Value::Object(vec![({t:?}.to_string(), {payload})]),\n",
                        v.name,
                        binds.join(", ")
                    ));
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{}: serde::__private::field(__obj, {:?})?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| serde::Error::msg(\
                 format!(\"expected object for {name}, got {{}}\", __v.kind())))?;\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Shape::Enum {
            name,
            variants,
            snake_case,
        } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let t = tag(v, *snake_case);
                if v.arity == 0 {
                    unit_arms.push_str(&format!("{t:?} => return Ok({name}::{}),\n", v.name));
                } else if v.arity == 1 {
                    tagged_arms.push_str(&format!(
                        "{t:?} => return Ok({name}::{}(serde::Deserialize::from_value(__pv)?)),\n",
                        v.name
                    ));
                } else {
                    let gets: Vec<String> = (0..v.arity)
                        .map(|k| {
                            format!(
                                "serde::Deserialize::from_value(__pa.get({k}).unwrap_or(&serde::Value::Null))?"
                            )
                        })
                        .collect();
                    tagged_arms.push_str(&format!(
                        "{t:?} => {{\n\
                         let __pa = __pv.as_array().ok_or_else(|| serde::Error::msg(\
                         \"expected array payload\"))?;\n\
                         return Ok({name}::{}({}));\n}}\n",
                        v.name,
                        gets.join(", ")
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return Err(serde::Error::msg(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}}\n\
                 }}\n\
                 let __obj = __v.as_object().ok_or_else(|| serde::Error::msg(\
                 format!(\"expected object for {name}, got {{}}\", __v.kind())))?;\n\
                 if __obj.len() != 1 {{\n\
                 return Err(serde::Error::msg(\"expected single-key variant object\"));\n}}\n\
                 let (__tag, __pv) = &__obj[0];\n\
                 let _ = __pv;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => Err(serde::Error::msg(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}}\n\
                 }}\n}}\n"
            )
        }
    }
}
