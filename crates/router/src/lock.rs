//! Poison-recovering lock helpers for router soft state.
//!
//! Every mutex/rwlock in this crate guards *soft* state that stays
//! internally consistent across a panic (registry maps, the ring, the
//! placement-override map, connection pools): each critical section is a
//! single insert/remove/lookup, so a panicking holder can never leave a
//! half-applied update behind. That makes `lock().expect(..)` strictly
//! worse than recovery — one panic while holding a lock would poison it
//! and turn every subsequent route into a panic cascade (the exact
//! failure PR 5's session/selector `lock_recover` closed elsewhere).
//! These helpers clear the poison, count the recovery, and hand the
//! guard back.

use std::sync::{Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

fn poison_recoveries() -> &'static std::sync::Arc<l2q_obs::Counter> {
    static M: OnceLock<std::sync::Arc<l2q_obs::Counter>> = OnceLock::new();
    M.get_or_init(|| l2q_obs::global().counter("router_lock_poison_recoveries_total"))
}

/// Lock a router mutex, recovering a poisoned one instead of
/// propagating the panic.
pub(crate) fn lock_recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            lock.clear_poison();
            poison_recoveries().inc();
            poisoned.into_inner()
        }
    }
}

/// Read-lock a router rwlock, recovering a poisoned one.
pub(crate) fn read_recover<'a, T>(lock: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
    match lock.read() {
        Ok(guard) => guard,
        Err(poisoned) => {
            lock.clear_poison();
            poison_recoveries().inc();
            poisoned.into_inner()
        }
    }
}

/// Write-lock a router rwlock, recovering a poisoned one.
pub(crate) fn write_recover<'a, T>(lock: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
    match lock.write() {
        Ok(guard) => guard,
        Err(poisoned) => {
            lock.clear_poison();
            poison_recoveries().inc();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn poisoned_mutex_recovers_with_data_intact() {
        let lock = Arc::new(Mutex::new(7u64));
        let poisoner = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        assert!(lock.is_poisoned());
        assert_eq!(*lock_recover(&lock), 7);
        assert!(!lock.is_poisoned());
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let poisoner = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().expect("first write");
            panic!("poison it");
        })
        .join();
        assert!(lock.is_poisoned());
        assert_eq!(read_recover(&lock).len(), 3);
        write_recover(&lock).push(4);
        assert_eq!(read_recover(&lock).len(), 4);
        assert!(!lock.is_poisoned());
    }
}
