//! The router core: ring + shard registry + request dispatch.
//!
//! Session ops are proxied to the owning shard (consistent hash of the
//! session id, [`crate::ring`]), failing over down the ring's preference
//! order on transport errors. Admin ops (`fleet_status`, `join_shard`,
//! `drain_shard`, `migrate`) manage topology. The router holds **no
//! session state of its own** beyond a small placement-override map for
//! explicitly migrated sessions — failover needs no handoff protocol
//! because every shard shares one durable store and restores sessions
//! from it on first touch (fencing the store generation so the old owner
//! can never write behind the new one's back).

use crate::lock::{lock_recover, read_recover, write_recover};
use crate::ring::HashRing;
use crate::shard::{Health, Shard};
use crate::supervise::Supervisor;
use l2q_service::proto::{FleetStatusBody, ShardStatusBody};
use l2q_service::{ClientConfig, Request, Response, SessionEntryBody, StatsBody};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Router policy knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Interval between health probes per shard (jittered per shard so a
    /// fleet of probes never fires in lockstep).
    pub probe_interval: Duration,
    /// Consecutive transport failures before a shard is marked dead.
    pub fail_threshold: u32,
    /// Socket/retry policy for shard connections.
    pub client: ClientConfig,
    /// Concurrent client connections the router front door accepts.
    pub max_connections: usize,
    /// Request-line byte cap on the front door.
    pub max_line_bytes: usize,
    /// How long shutdown waits for in-flight connections.
    pub drain_timeout: Duration,
    /// Which serving engine handles front-door connections.
    pub serve_mode: l2q_service::ServeMode,
    /// Reactor mode only: threads forwarding requests to shards (each
    /// forward blocks on shard I/O, so they live in their own pool, not
    /// on the reactor thread).
    pub forward_workers: usize,
    /// Reactor mode only: bounded forward-queue capacity; a full queue
    /// answers `Overloaded` with a retry hint.
    pub forward_queue_cap: usize,
    /// Load-rebalancer cadence; `Duration::ZERO` disables the
    /// background task (`rebalance_once` stays callable).
    pub rebalance_interval: Duration,
    /// Rebalancer hysteresis: only migrate while the hottest and coldest
    /// shards' resident-session counts differ by more than this gap, so
    /// a converged fleet never thrashes.
    pub rebalance_min_gap: u64,
    /// Migration budget per rebalancer pass.
    pub rebalance_budget: usize,
    /// How long a rolling restart waits for a restarted shard to answer
    /// again before aborting.
    pub restart_recovery_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            vnodes: crate::ring::DEFAULT_VNODES,
            probe_interval: Duration::from_secs(2),
            fail_threshold: 2,
            client: ClientConfig::default(),
            max_connections: 256,
            max_line_bytes: l2q_service::framing::DEFAULT_MAX_LINE_BYTES,
            drain_timeout: Duration::from_secs(5),
            serve_mode: l2q_service::ServeMode::Reactor,
            forward_workers: 16,
            forward_queue_cap: 64,
            rebalance_interval: Duration::ZERO,
            rebalance_min_gap: 2,
            rebalance_budget: 4,
            restart_recovery_timeout: Duration::from_secs(30),
        }
    }
}

/// Router ops with a catch-all bucket, for bounded metric-label
/// cardinality (mirrors the service's `WIRE_OPS` discipline).
const ROUTER_OPS: [&str; 22] = [
    "ping",
    "create",
    "step",
    "status",
    "snapshot",
    "close",
    "stats",
    "metrics",
    "fleet_metrics",
    "trace",
    "persist",
    "restore",
    "detach",
    "list_sessions",
    "fleet_status",
    "join_shard",
    "drain_shard",
    "migrate",
    "rolling_restart",
    "supervisor_status",
    "shutdown",
    "unknown",
];

/// Session-targeted ops the router proxies with failover.
const SESSION_OPS: [&str; 7] = [
    "step", "status", "snapshot", "close", "persist", "restore", "detach",
];

struct RouterObs {
    failovers: Arc<l2q_obs::Counter>,
    migrations: Arc<l2q_obs::Counter>,
    migration_pause: Arc<l2q_obs::Histogram>,
    probe_failures: Arc<l2q_obs::Counter>,
    shards: Arc<l2q_obs::Gauge>,
    stale_placements: Arc<l2q_obs::Counter>,
    rebalancer_migrations: Arc<l2q_obs::Counter>,
    rebalancer_passes: Arc<l2q_obs::Counter>,
    drain_duration: Arc<l2q_obs::Histogram>,
    rolling_restarts: Arc<l2q_obs::Counter>,
}

fn router_obs() -> &'static RouterObs {
    static M: OnceLock<RouterObs> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        RouterObs {
            failovers: reg.counter("router_failovers_total"),
            migrations: reg.counter("router_migrations_total"),
            migration_pause: reg.histogram("router_migration_pause_seconds"),
            probe_failures: reg.counter("router_probe_failures_total"),
            shards: reg.gauge("router_shards"),
            stale_placements: reg.counter("router_stale_placements_cleared_total"),
            rebalancer_migrations: reg.counter("router_rebalancer_migrations_total"),
            rebalancer_passes: reg.counter("router_rebalancer_passes_total"),
            drain_duration: reg.histogram("router_drain_seconds"),
            rolling_restarts: reg.counter("router_rolling_restarts_total"),
        }
    })
}

/// Per-op request counter + latency histogram.
fn op_obs(op: &str) -> &'static (Arc<l2q_obs::Counter>, Arc<l2q_obs::Histogram>) {
    type Handles = Vec<(Arc<l2q_obs::Counter>, Arc<l2q_obs::Histogram>)>;
    static M: OnceLock<Handles> = OnceLock::new();
    let by_op = M.get_or_init(|| {
        let reg = l2q_obs::global();
        ROUTER_OPS
            .iter()
            .map(|&op| {
                (
                    reg.counter_with("router_requests_total", &[("op", op)]),
                    reg.histogram_with("router_op_seconds", &[("op", op)]),
                )
            })
            .collect()
    });
    let idx = ROUTER_OPS
        .iter()
        .position(|&known| known == op)
        .unwrap_or(ROUTER_OPS.len() - 1);
    &by_op[idx]
}

fn err_resp(msg: impl Into<String>) -> Response {
    Response {
        ok: false,
        error: Some(msg.into()),
        ..Response::default()
    }
}

/// Shared state every router connection dispatches against.
pub struct RouterCore {
    cfg: RouterConfig,
    ring: RwLock<HashRing>,
    shards: RwLock<HashMap<String, Arc<Shard>>>,
    /// Explicit placement overrides from `migrate`: routed ahead of the
    /// ring so a migrated session sticks to its target. Cleared on close.
    placements: Mutex<HashMap<u64, String>>,
    /// Fleet-wide session-id allocator, seeded above every id any shard
    /// already knows (shards' local counters would collide otherwise).
    next_id: AtomicU64,
    /// The shard supervisor, when this router spawned its own children
    /// (`--supervise`); `rolling_restart` and `supervisor_status` use it.
    supervisor: OnceLock<Arc<Supervisor>>,
}

impl RouterCore {
    /// An empty fleet; register shards with [`RouterCore::add_shard`].
    pub fn new(cfg: RouterConfig) -> Self {
        let vnodes = cfg.vnodes;
        Self {
            cfg,
            ring: RwLock::new(HashRing::new(vnodes)),
            shards: RwLock::new(HashMap::new()),
            placements: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            supervisor: OnceLock::new(),
        }
    }

    /// Attach the shard supervisor (once, at startup). Enables the
    /// `supervisor_status` op and real child restarts during
    /// `rolling_restart`.
    pub fn set_supervisor(&self, sup: Arc<Supervisor>) {
        let _ = self.supervisor.set(sup);
    }

    /// The attached supervisor, if this router supervises its shards.
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.get()
    }

    /// The router's policy knobs.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Register a shard and add it to the ring. Best-effort seeds the
    /// session-id allocator from the shard's known sessions so routed
    /// `create`s never collide with recovered or pre-existing ids.
    pub fn add_shard(&self, name: &str, addr: &str) -> Result<(), String> {
        if name.is_empty() || addr.is_empty() {
            return Err("shard name and address must be non-empty".into());
        }
        {
            let mut shards = write_recover(&self.shards);
            if shards.contains_key(name) {
                return Err(format!("shard '{name}' already registered"));
            }
            shards.insert(name.to_owned(), Arc::new(Shard::new(name, addr)));
        }
        write_recover(&self.ring).add(name);
        router_obs().shards.inc();
        // Seed the id allocator (unreachable shard: the prober will mark
        // it; ids stay safe because create retries allocation per call).
        if let Some(shard) = self.shard(name) {
            if let Ok(resp) = shard.request(&self.cfg.client, &Request::op("list_sessions")) {
                let max = resp
                    .sessions
                    .unwrap_or_default()
                    .iter()
                    .map(|s| s.session)
                    .max()
                    .unwrap_or(0);
                self.next_id.fetch_max(max + 1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Unregister a shard: drop it from the registry, the ring, and
    /// every placement override that targets it (a gone shard must
    /// never keep attracting routed traffic). Returns whether the name
    /// was registered.
    pub fn remove_shard(&self, name: &str) -> bool {
        if write_recover(&self.shards).remove(name).is_none() {
            return false;
        }
        write_recover(&self.ring).remove(name);
        lock_recover(&self.placements).retain(|_, target| target != name);
        router_obs().shards.dec();
        true
    }

    /// Handle to a registered shard.
    pub fn shard(&self, name: &str) -> Option<Arc<Shard>> {
        read_recover(&self.shards).get(name).cloned()
    }

    /// Every registered shard, for the prober.
    pub fn all_shards(&self) -> Vec<Arc<Shard>> {
        read_recover(&self.shards).values().cloned().collect()
    }

    /// Count a failed probe (prober bookkeeping lives with the core so
    /// the metric is registered once).
    pub fn note_probe_failure(&self, shard: &Shard) {
        router_obs().probe_failures.inc();
        shard.note_failure(self.cfg.fail_threshold);
    }

    /// The shards that may serve `session`, most-preferred first: an
    /// explicit placement override (from `migrate`) ahead of the ring's
    /// clockwise preference order. Includes non-routable shards — callers
    /// filter by what they need (routing skips them; owner discovery
    /// still wants draining shards).
    ///
    /// A **stale** override — its target no longer registered, or dead —
    /// is cleared here rather than honored: the session falls back to
    /// the ring walk and gets restored wherever it lands (store fencing
    /// keeps that safe). Honoring it would keep routing at a gone shard,
    /// and worse, a later revival of that shard (e.g. a supervisor
    /// restart) would resurrect the stale route and fence the session's
    /// legitimate current owner. Draining targets stay: they are still
    /// reachable and mid-drain migration moves their sessions anyway.
    fn candidates(&self, session: u64) -> Vec<Arc<Shard>> {
        let shards = read_recover(&self.shards);
        let ring = read_recover(&self.ring);
        let mut out: Vec<Arc<Shard>> = Vec::with_capacity(shards.len());
        let mut placements = lock_recover(&self.placements);
        if let Some(name) = placements.get(&session) {
            match shards.get(name) {
                Some(s) if s.health() != Health::Dead => out.push(s.clone()),
                _ => {
                    placements.remove(&session);
                    router_obs().stale_placements.inc();
                }
            }
        }
        drop(placements);
        for name in ring.ranked(session) {
            if let Some(s) = shards.get(name) {
                if !out.iter().any(|o| o.name() == s.name()) {
                    out.push(s.clone());
                }
            }
        }
        out
    }

    /// Dispatch one request (the router's front door calls this per
    /// line; tests call it directly).
    pub fn dispatch(&self, req: &Request) -> Response {
        let (requests, latency) = op_obs(&req.op);
        requests.inc();
        // The router is the trace edge: a `trace:true` request starts a
        // fresh trace here (its id is echoed in the response), an incoming
        // `trace_id` is adopted (e.g. a client propagating its own ids).
        // The `trace` op is exempt — there `trace_id` is the lookup key.
        let ctx = if req.op == "trace" {
            None
        } else {
            match req.trace_id {
                Some(tid) => Some(l2q_obs::TraceContext::remote(tid, req.parent_span_id)),
                None if req.trace == Some(true) => Some(l2q_obs::TraceContext::new_root()),
                None => None,
            }
        };
        let _trace_guard = ctx.map(l2q_obs::trace::enter);
        let known_op = ROUTER_OPS
            .iter()
            .copied()
            .find(|&known| known == req.op)
            .unwrap_or("unknown");
        let _timer = l2q_obs::SpanTimer::start_named_labeled(
            latency.clone(),
            "router_dispatch",
            &[("op", known_op)],
        );
        let trace_id = _timer.trace_context().map(|c| c.trace_id);
        let mut resp = match req.op.as_str() {
            "ping" => Response::ok(),
            "create" => self.handle_create(req),
            op if SESSION_OPS.contains(&op) => self.forward_session_op(req),
            "stats" => self.handle_stats(),
            "metrics" => self.handle_metrics(req),
            "fleet_metrics" => self.handle_fleet_metrics(req),
            "trace" => self.handle_trace(req),
            "list_sessions" => self.handle_list_sessions(),
            "fleet_status" => self.handle_fleet_status(),
            "join_shard" => self.handle_join_shard(req),
            "drain_shard" => self.handle_drain_shard(req),
            "migrate" => self.handle_migrate(req),
            "rolling_restart" => self.rolling_restart(),
            "supervisor_status" => self.handle_supervisor_status(),
            "shutdown" => Response {
                ok: true,
                state: Some("shutting_down".into()),
                ..Response::default()
            },
            other => err_resp(format!("unknown op '{other}'")),
        };
        if resp.trace_id.is_none() {
            resp.trace_id = trace_id;
        }
        resp
    }

    /// One shard attempt with the active trace context injected on the
    /// wire. Each attempt gets its own `router_forward` span labeled by
    /// shard, so failovers show up as sibling spans under the dispatch.
    fn forward(&self, shard: &Shard, req: &Request) -> Result<Response, l2q_service::ClientError> {
        let span = l2q_obs::span!("router_forward", "shard" => shard.name());
        match span.trace_context() {
            Some(ctx) => {
                let (trace_id, parent_span_id) = ctx.wire_parent();
                let mut routed = req.clone();
                routed.trace_id = Some(trace_id);
                routed.parent_span_id = parent_span_id;
                // Downstream decides tracing by `trace_id`, not the flag.
                routed.trace = None;
                shard.request(&self.cfg.client, &routed)
            }
            None => shard.request(&self.cfg.client, req),
        }
    }

    /// Proxy a session op to its owner, failing over down the preference
    /// order on transport errors. No handoff is needed: the next shard
    /// restores the session from the shared durable store on first touch
    /// (fencing the old owner), so the retried request continues from the
    /// last committed step.
    fn forward_session_op(&self, req: &Request) -> Response {
        let Some(id) = req.session else {
            return err_resp("missing 'session'");
        };
        let mut skipped_unroutable = 0usize;
        let mut transport_failures = 0usize;
        let mut last_err = String::new();
        for shard in self.candidates(id) {
            if !shard.routable() {
                skipped_unroutable += 1;
                continue;
            }
            match self.forward(&shard, req) {
                Ok(mut resp) => {
                    if skipped_unroutable + transport_failures > 0 {
                        router_obs().failovers.inc();
                    }
                    if req.op == "close" && resp.ok {
                        lock_recover(&self.placements).remove(&id);
                    }
                    resp.shard = Some(shard.name().to_owned());
                    return resp;
                }
                Err(e) => {
                    shard.note_failure(self.cfg.fail_threshold);
                    transport_failures += 1;
                    last_err = e.to_string();
                }
            }
        }
        err_resp(if last_err.is_empty() {
            format!("no routable shard for session {id}")
        } else {
            format!("no routable shard for session {id} (last error: {last_err})")
        })
    }

    /// Create with a router-allocated fleet-wide id, placed by the ring.
    /// A shard that dies mid-create is skipped and the same id is retried
    /// on the next candidate (nothing durable exists for it yet).
    fn handle_create(&self, req: &Request) -> Response {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut routed = req.clone();
        routed.session = Some(id);
        let mut failed_over = false;
        let mut last_err = String::new();
        for shard in self.candidates(id) {
            if !shard.routable() {
                failed_over = true;
                continue;
            }
            match self.forward(&shard, &routed) {
                Ok(mut resp) => {
                    if failed_over {
                        router_obs().failovers.inc();
                    }
                    resp.shard = Some(shard.name().to_owned());
                    return resp;
                }
                Err(e) => {
                    shard.note_failure(self.cfg.fail_threshold);
                    failed_over = true;
                    last_err = e.to_string();
                }
            }
        }
        err_resp(if last_err.is_empty() {
            "no routable shard for create".to_string()
        } else {
            format!("no routable shard for create (last error: {last_err})")
        })
    }

    /// Fleet-aggregated stats: sums across reachable shards (hit rate
    /// recomputed from the summed hits/misses).
    fn handle_stats(&self) -> Response {
        let mut agg = StatsBody::default();
        let mut reachable = 0usize;
        for shard in self.all_shards() {
            if shard.health() == Health::Dead {
                continue;
            }
            let Ok(resp) = shard.request(&self.cfg.client, &Request::op("stats")) else {
                continue;
            };
            let Some(s) = resp.stats else { continue };
            reachable += 1;
            agg.active_sessions += s.active_sessions;
            agg.sessions_created += s.sessions_created;
            agg.sessions_closed += s.sessions_closed;
            agg.sessions_evicted += s.sessions_evicted;
            agg.steps_executed += s.steps_executed;
            agg.queries_fired += s.queries_fired;
            agg.jobs_rejected += s.jobs_rejected;
            agg.queue_depth += s.queue_depth;
            agg.workers += s.workers;
            agg.retrieval_cache_hits += s.retrieval_cache_hits;
            agg.retrieval_cache_misses += s.retrieval_cache_misses;
            agg.domain_cache_hits += s.domain_cache_hits;
            agg.domain_cache_misses += s.domain_cache_misses;
            agg.store_enabled |= s.store_enabled;
            agg.sessions_spilled += s.sessions_spilled;
            agg.sessions_restored += s.sessions_restored;
            agg.eviction_refusals += s.eviction_refusals;
        }
        if reachable == 0 {
            return err_resp("no reachable shard for stats");
        }
        let total = agg.retrieval_cache_hits + agg.retrieval_cache_misses;
        agg.retrieval_cache_hit_rate = if total == 0 {
            0.0
        } else {
            agg.retrieval_cache_hits as f64 / total as f64
        };
        Response {
            ok: true,
            stats: Some(agg),
            ..Response::default()
        }
    }

    /// The router's own metrics registry (routing latency, failovers,
    /// shard health); shard-local metrics stay on the shards.
    fn handle_metrics(&self, req: &Request) -> Response {
        let reg = l2q_obs::global();
        match req.format.as_deref().unwrap_or("json") {
            "text" | "prometheus" => Response {
                ok: true,
                metrics_text: Some(reg.render_text()),
                ..Response::default()
            },
            "json" => match serde_json::from_str(&reg.render_json()) {
                Ok(v) => Response {
                    ok: true,
                    metrics: Some(v),
                    ..Response::default()
                },
                Err(e) => err_resp(format!("metrics render failed: {e}")),
            },
            other => err_resp(format!("unknown metrics format '{other}' (json|text)")),
        }
    }

    /// Fleet-merged metrics: every reachable shard's registry plus the
    /// router's own, merged by [`crate::metrics::FleetMetrics`] —
    /// counters and gauges as `shard`-labeled series, histograms
    /// bucket-wise for fleet percentiles.
    fn handle_fleet_metrics(&self, req: &Request) -> Response {
        let mut fleet = crate::metrics::FleetMetrics::default();
        match serde_json::from_str(&l2q_obs::global().render_json()) {
            Ok(own) => fleet.merge_shard("router", &own),
            Err(e) => return err_resp(format!("router metrics render failed: {e}")),
        }
        let mut shards = self.all_shards();
        shards.sort_by(|a, b| a.name().cmp(b.name()));
        let mut reachable = 0usize;
        for shard in shards {
            if shard.health() == Health::Dead {
                continue;
            }
            let Ok(resp) = shard.request(&self.cfg.client, &Request::op("metrics")) else {
                continue;
            };
            let Some(m) = resp.metrics else { continue };
            reachable += 1;
            fleet.merge_shard(shard.name(), &m);
        }
        if reachable == 0 {
            return err_resp("no reachable shard for fleet_metrics");
        }
        match req.format.as_deref().unwrap_or("json") {
            "json" => Response {
                ok: true,
                metrics: Some(fleet.render_json()),
                ..Response::default()
            },
            "text" | "prometheus" => Response {
                ok: true,
                metrics_text: Some(fleet.render_text()),
                ..Response::default()
            },
            other => err_resp(format!("unknown metrics format '{other}' (json|text)")),
        }
    }

    /// `trace` op at the fleet edge. `by_id` stitches one trace from the
    /// router's own ring buffer plus every reachable shard's, deduped by
    /// span id (an in-process fleet shares one buffer) and ordered by
    /// start time; `recent`/`slow` query the router's own buffer.
    fn handle_trace(&self, req: &Request) -> Response {
        use l2q_service::proto::SpanBody;
        let buffer = l2q_obs::trace::buffer();
        let limit = req.limit.unwrap_or(32).clamp(1, 4096) as usize;
        let default_mode = if req.trace_id.is_some() {
            "by_id"
        } else {
            "recent"
        };
        match req.mode.as_deref().unwrap_or(default_mode) {
            "by_id" => {
                let Some(tid) = req.trace_id else {
                    return err_resp("trace mode 'by_id' requires 'trace_id'");
                };
                let mut spans: Vec<SpanBody> = buffer
                    .by_trace(tid)
                    .iter()
                    .map(|r| SpanBody::from_record(r, "router"))
                    .collect();
                let mut fetch = Request::op("trace");
                fetch.trace_id = Some(tid);
                fetch.mode = Some("by_id".into());
                for shard in self.all_shards() {
                    if shard.health() == Health::Dead {
                        continue;
                    }
                    let Ok(resp) = shard.request(&self.cfg.client, &fetch) else {
                        continue;
                    };
                    spans.extend(resp.spans.unwrap_or_default());
                }
                let mut seen = std::collections::HashSet::new();
                spans.retain(|s| seen.insert(s.span_id));
                spans.sort_by_key(|s| s.start_unix_ns);
                Response {
                    ok: true,
                    trace_id: Some(tid),
                    spans: Some(spans),
                    ..Response::default()
                }
            }
            mode @ ("recent" | "slow") => {
                let records = if mode == "recent" {
                    buffer.recent(limit)
                } else {
                    buffer.slow_roots(limit)
                };
                Response {
                    ok: true,
                    spans: Some(
                        records
                            .iter()
                            .map(|r| SpanBody::from_record(r, "router"))
                            .collect(),
                    ),
                    ..Response::default()
                }
            }
            other => err_resp(format!("unknown trace mode '{other}' (by_id|recent|slow)")),
        }
    }

    /// Union of every shard's sessions. All shards see the same stored
    /// set (shared data dir), so rows dedup by id with live (resident /
    /// failed) rows preferred over stored-only ones.
    fn handle_list_sessions(&self) -> Response {
        let mut by_id: HashMap<u64, SessionEntryBody> = HashMap::new();
        let mut reachable = 0usize;
        for shard in self.all_shards() {
            if !shard.routable() && shard.health() != Health::Draining {
                continue;
            }
            let Ok(resp) = shard.request(&self.cfg.client, &Request::op("list_sessions")) else {
                continue;
            };
            reachable += 1;
            for row in resp.sessions.unwrap_or_default() {
                let live = row.health.as_deref() != Some("stored");
                match by_id.entry(row.session) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(row);
                    }
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        if live && slot.get().health.as_deref() == Some("stored") {
                            slot.insert(row);
                        }
                    }
                }
            }
        }
        if reachable == 0 {
            return err_resp("no reachable shard for list_sessions");
        }
        let mut sessions: Vec<SessionEntryBody> = by_id.into_values().collect();
        sessions.sort_by_key(|s| s.session);
        Response {
            ok: true,
            sessions: Some(sessions),
            ..Response::default()
        }
    }

    fn handle_fleet_status(&self) -> Response {
        let vnodes = read_recover(&self.ring).vnodes() as u64;
        let mut rows: Vec<ShardStatusBody> = Vec::new();
        let mut shards = self.all_shards();
        shards.sort_by(|a, b| a.name().cmp(b.name()));
        for shard in shards {
            let health = shard.health();
            let active_sessions = if health == Health::Dead {
                None
            } else {
                shard
                    .request(&self.cfg.client, &Request::op("stats"))
                    .ok()
                    .and_then(|r| r.stats)
                    .map(|s| s.active_sessions)
            };
            rows.push(ShardStatusBody {
                name: shard.name().to_owned(),
                addr: shard.addr().to_owned(),
                health: shard.health().as_str().to_owned(),
                active_sessions,
            });
        }
        Response {
            ok: true,
            fleet: Some(FleetStatusBody {
                vnodes,
                shards: rows,
            }),
            ..Response::default()
        }
    }

    fn handle_join_shard(&self, req: &Request) -> Response {
        let (Some(name), Some(addr)) = (req.shard.as_deref(), req.shard_addr.as_deref()) else {
            return err_resp("join_shard needs 'shard' and 'shard_addr'");
        };
        match self.add_shard(name, addr) {
            Ok(()) => Response {
                ok: true,
                shard: Some(name.to_owned()),
                ..Response::default()
            },
            Err(e) => err_resp(e),
        }
    }

    /// Mark a shard draining (no new routed traffic) and migrate its
    /// resident sessions to their ring-chosen new owners.
    fn handle_drain_shard(&self, req: &Request) -> Response {
        let Some(name) = req.shard.as_deref() else {
            return err_resp("drain_shard needs 'shard'");
        };
        match self.drain_shard_inner(name) {
            Ok((moved, last_err)) => Response {
                ok: true,
                shard: Some(name.to_owned()),
                migrated: Some(moved),
                error: last_err,
                ..Response::default()
            },
            Err(e) => err_resp(e),
        }
    }

    /// The drain flow shared by `drain_shard` and `rolling_restart`:
    /// mark the shard draining, migrate every resident session off it,
    /// and record the drain duration. Returns the migrated count and
    /// the last per-session migration error (drains are best-effort —
    /// unmoved sessions fail over on next touch anyway).
    fn drain_shard_inner(&self, name: &str) -> Result<(u64, Option<String>), String> {
        let Some(shard) = self.shard(name) else {
            return Err(format!("unknown shard '{name}'"));
        };
        let started = Instant::now();
        shard.set_health(Health::Draining);
        let resident: Vec<u64> =
            match shard.request(&self.cfg.client, &Request::op("list_sessions")) {
                Ok(resp) => resp
                    .sessions
                    .unwrap_or_default()
                    .iter()
                    .filter(|r| r.health.as_deref() == Some("resident"))
                    .map(|r| r.session)
                    .collect(),
                // Unreachable while draining: nothing resident to move — its
                // sessions already fail over on next touch.
                Err(_) => Vec::new(),
            };
        let mut moved = 0u64;
        let mut last_err = None;
        for id in resident {
            match self.migrate_session(id, None) {
                Ok(_) => moved += 1,
                Err(e) => last_err = Some(e),
            }
        }
        router_obs()
            .drain_duration
            .record(started.elapsed().as_secs_f64());
        Ok((moved, last_err))
    }

    /// One row per supervised child, or a refusal when this router does
    /// not supervise its shards.
    fn handle_supervisor_status(&self) -> Response {
        match self.supervisor() {
            Some(sup) => Response {
                ok: true,
                supervised: Some(sup.status()),
                ..Response::default()
            },
            None => err_resp("router runs without --supervise; no supervisor"),
        }
    }

    /// Rolling restart: for each registered shard in name order — drain
    /// it, restart its supervised child, wait until it answers again,
    /// and undrain it (rejoining the ring) before moving to the next.
    /// Before touching each shard the fleet must keep majority quorum
    /// without it; otherwise the restart aborts with the shards cycled
    /// so far. Unsupervised shards get the same drain → wait → rejoin
    /// cycle without a process restart (their process is managed
    /// externally).
    pub fn rolling_restart(&self) -> Response {
        let mut names: Vec<String> = self
            .all_shards()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        names.sort();
        if names.is_empty() {
            return err_resp("no shards registered");
        }
        let mut cycled = 0u64;
        for name in &names {
            // Majority quorum: taking `name` down must leave at least
            // ceil(total/2) routable shards serving.
            let total = names.len() as u64;
            let routable_others = self
                .all_shards()
                .iter()
                .filter(|s| s.name() != name && s.routable())
                .count() as u64;
            let needed = total.div_ceil(2);
            if routable_others < needed {
                return Response {
                    ok: false,
                    restarted: Some(cycled),
                    error: Some(format!(
                        "aborted before '{name}': only {routable_others} routable shards \
                         would remain (quorum {needed} of {total})"
                    )),
                    state: Some("aborted".into()),
                    ..Response::default()
                };
            }
            if let Err(e) = self.drain_shard_inner(name) {
                return Response {
                    ok: false,
                    restarted: Some(cycled),
                    error: Some(format!("aborted at '{name}': {e}")),
                    state: Some("aborted".into()),
                    ..Response::default()
                };
            }
            if let Some(sup) = self.supervisor() {
                if sup.supervises(name) {
                    if let Err(e) = sup.restart(name) {
                        return Response {
                            ok: false,
                            restarted: Some(cycled),
                            error: Some(format!("aborted at '{name}': {e}")),
                            state: Some("aborted".into()),
                            ..Response::default()
                        };
                    }
                }
            }
            // Wait for the (re)started shard to answer, then undrain it
            // so it takes routed traffic again.
            let Some(shard) = self.shard(name) else {
                return Response {
                    ok: false,
                    restarted: Some(cycled),
                    error: Some(format!("aborted: shard '{name}' vanished mid-restart")),
                    state: Some("aborted".into()),
                    ..Response::default()
                };
            };
            let deadline = Instant::now() + self.cfg.restart_recovery_timeout;
            let mut recovered = false;
            while Instant::now() < deadline {
                if shard.probe(&self.cfg.client) {
                    recovered = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            if !recovered {
                return Response {
                    ok: false,
                    restarted: Some(cycled),
                    error: Some(format!(
                        "aborted: shard '{name}' did not answer within {:?} of restart",
                        self.cfg.restart_recovery_timeout
                    )),
                    state: Some("aborted".into()),
                    ..Response::default()
                };
            }
            shard.set_health(Health::Healthy);
            router_obs().rolling_restarts.inc();
            cycled += 1;
        }
        Response {
            ok: true,
            restarted: Some(cycled),
            state: Some("completed".into()),
            ..Response::default()
        }
    }

    /// One load-rebalancer pass: read every routable shard's resident
    /// sessions, and while the hottest and coldest shards differ by more
    /// than the hysteresis gap, migrate sessions hot → cold within the
    /// per-pass budget. Returns the migrations performed; a balanced
    /// fleet returns 0, and because each move updates the counts it
    /// converges instead of ping-ponging (a moved session sticks to its
    /// target via the placement override).
    pub fn rebalance_once(&self) -> usize {
        router_obs().rebalancer_passes.inc();
        let mut loads: Vec<(String, Vec<u64>)> = Vec::new();
        for shard in self.all_shards() {
            if !shard.routable() {
                continue;
            }
            let Ok(resp) = shard.request(&self.cfg.client, &Request::op("list_sessions")) else {
                continue;
            };
            let mut resident: Vec<u64> = resp
                .sessions
                .unwrap_or_default()
                .iter()
                .filter(|r| r.health.as_deref() == Some("resident"))
                .map(|r| r.session)
                .collect();
            resident.sort_unstable();
            loads.push((shard.name().to_owned(), resident));
        }
        if loads.len() < 2 {
            return 0;
        }
        let min_gap = self.cfg.rebalance_min_gap.max(1) as usize;
        let mut moved = 0usize;
        while moved < self.cfg.rebalance_budget {
            let hot = loads
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, v))| v.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let cold = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, v))| v.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            if loads[hot].1.len().saturating_sub(loads[cold].1.len()) <= min_gap {
                break;
            }
            // Deterministic pick: the hottest shard's highest session id.
            let Some(session) = loads[hot].1.pop() else {
                break;
            };
            let target = loads[cold].0.clone();
            match self.migrate_session(session, Some(&target)) {
                Ok(_) => {
                    loads[cold].1.push(session);
                    router_obs().rebalancer_migrations.inc();
                    moved += 1;
                }
                // A session that refuses to move (mid-step, just closed)
                // is skipped this pass; the next pass sees fresh counts.
                Err(_) => {
                    loads[hot].1.insert(0, session);
                    break;
                }
            }
        }
        moved
    }

    fn handle_migrate(&self, req: &Request) -> Response {
        let Some(id) = req.session else {
            return err_resp("missing 'session'");
        };
        match self.migrate_session(id, req.shard.as_deref()) {
            Ok((target, mut resp)) => {
                resp.shard = Some(target);
                resp.migrated = Some(1);
                resp
            }
            Err(e) => err_resp(e),
        }
    }

    /// The shard currently holding `session` resident, if any. Asks
    /// shards in preference order (draining shards included — drains are
    /// exactly when sessions must be found and moved).
    fn resident_owner(&self, session: u64) -> Option<Arc<Shard>> {
        for shard in self.candidates(session) {
            if shard.health() == Health::Dead {
                continue;
            }
            let Ok(resp) = shard.request(&self.cfg.client, &Request::op("list_sessions")) else {
                continue;
            };
            let resident = resp
                .sessions
                .unwrap_or_default()
                .iter()
                .any(|r| r.session == session && r.health.as_deref() == Some("resident"));
            if resident {
                return Some(shard);
            }
        }
        None
    }

    /// Live migration: `detach` on the source (drains the in-flight step
    /// batch, spills, drops residency), then `restore` on the target
    /// (fences the store generation and rebuilds bit-identically). The
    /// placement override makes subsequent routing stick to the target.
    /// The client-observable pause is the whole flow, recorded in
    /// `router_migration_pause_seconds`.
    fn migrate_session(
        &self,
        session: u64,
        target: Option<&str>,
    ) -> Result<(String, Response), String> {
        let started = Instant::now();
        let source = self.resident_owner(session);

        // Pick the target before draining: explicit name, else the ring's
        // first routable choice that is not the source.
        let target_shard = match target {
            Some(name) => {
                let shard = self
                    .shard(name)
                    .ok_or_else(|| format!("unknown target shard '{name}'"))?;
                if !shard.routable() {
                    return Err(format!(
                        "target shard '{name}' is {}",
                        shard.health().as_str()
                    ));
                }
                shard
            }
            None => self
                .candidates(session)
                .into_iter()
                .filter(|s| s.routable())
                .find(|s| source.as_ref().is_none_or(|src| src.name() != s.name()))
                .ok_or_else(|| format!("no routable migration target for session {session}"))?,
        };

        if let Some(src) = &source {
            if src.name() == target_shard.name() {
                // Already where it should be; report current status.
                let resp = src
                    .request(&self.cfg.client, &Request::for_session("status", session))
                    .map_err(|e| format!("status on '{}' failed: {e}", src.name()))?;
                return Ok((src.name().to_owned(), resp));
            }
            let resp = src
                .request(&self.cfg.client, &Request::for_session("detach", session))
                .map_err(|e| format!("detach on '{}' failed: {e}", src.name()))?;
            if !resp.ok {
                return Err(format!(
                    "detach on '{}' refused: {}",
                    src.name(),
                    resp.error.unwrap_or_else(|| "unspecified".into())
                ));
            }
        }

        let resp = target_shard
            .request(&self.cfg.client, &Request::for_session("restore", session))
            .map_err(|e| format!("restore on '{}' failed: {e}", target_shard.name()))?;
        if !resp.ok {
            // The session stays durably stored and restorable anywhere;
            // routing falls back to the ring.
            return Err(format!(
                "restore on '{}' refused: {}",
                target_shard.name(),
                resp.error.unwrap_or_else(|| "unspecified".into())
            ));
        }
        lock_recover(&self.placements).insert(session, target_shard.name().to_owned());
        let obs = router_obs();
        obs.migrations.inc();
        obs.migration_pause.record(started.elapsed().as_secs_f64());
        Ok((target_shard.name().to_owned(), resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirrors the selector's poisoned-lock regression: a panic while a
    /// thread holds a router lock must not cascade into every later
    /// route (the seed behavior of `lock().expect("placements")`).
    #[test]
    fn poisoned_placements_lock_recovers_instead_of_cascading() {
        let core = Arc::new(RouterCore::new(RouterConfig::default()));
        let poisoner = core.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.placements.lock().expect("first lock");
            panic!("poison the placement map");
        })
        .join();
        assert!(core.placements.is_poisoned());
        // Routing walks placements first; it must recover and answer a
        // clean refusal (no shards registered), not panic.
        let resp = core.dispatch(&Request::for_session("step", 7));
        assert!(!resp.ok);
        assert!(resp.error.unwrap_or_default().contains("no routable shard"));
        assert!(!core.placements.is_poisoned());
    }

    /// An override whose target shard is no longer registered is cleared
    /// on first touch instead of routing into the void forever.
    #[test]
    fn stale_placement_for_an_unregistered_target_is_cleared() {
        let core = RouterCore::new(RouterConfig::default());
        lock_recover(&core.placements).insert(9, "ghost".into());
        assert!(core.candidates(9).is_empty());
        assert!(!lock_recover(&core.placements).contains_key(&9));
    }
}
