//! One registered `l2q-serve` shard: address, health state, and a small
//! pool of reusable client connections.

use crate::lock::lock_recover;
use l2q_service::{Client, ClientConfig, ClientError, Request, Response};
use std::sync::{Arc, Mutex};

/// How many idle connections to keep pooled per shard.
const POOL_CAP: usize = 8;

/// A shard's health as the router sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Probes pass; full traffic.
    Healthy,
    /// A recent probe or request failed; still routable (the next
    /// failure past the threshold marks it dead).
    Suspect,
    /// Probes keep failing; skipped by routing until a probe succeeds.
    Dead,
    /// Administratively draining (`drain_shard`); not routable, but
    /// reachable for migration drains.
    Draining,
}

impl Health {
    /// Wire/diagnostic name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Suspect => "suspect",
            Self::Dead => "dead",
            Self::Draining => "draining",
        }
    }

    /// Gauge encoding (`router_shard_health{shard=...}`): 0 dead,
    /// 1 suspect, 2 healthy, 3 draining.
    fn gauge_value(self) -> i64 {
        match self {
            Self::Dead => 0,
            Self::Suspect => 1,
            Self::Healthy => 2,
            Self::Draining => 3,
        }
    }
}

struct HealthState {
    health: Health,
    consecutive_failures: u32,
}

/// A registered shard. All methods take `&self`; the router shares each
/// shard behind an `Arc` across connection threads and the prober.
pub struct Shard {
    name: String,
    addr: String,
    state: Mutex<HealthState>,
    pool: Mutex<Vec<Client>>,
    health_gauge: Arc<l2q_obs::Gauge>,
}

impl Shard {
    /// Register a shard, initially healthy.
    pub fn new(name: &str, addr: &str) -> Self {
        let health_gauge = l2q_obs::global().gauge_with("router_shard_health", &[("shard", name)]);
        health_gauge.set(Health::Healthy.gauge_value());
        Self {
            name: name.to_owned(),
            addr: addr.to_owned(),
            state: Mutex::new(HealthState {
                health: Health::Healthy,
                consecutive_failures: 0,
            }),
            pool: Mutex::new(Vec::new()),
            health_gauge,
        }
    }

    /// The shard's ring name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard's `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current health.
    pub fn health(&self) -> Health {
        lock_recover(&self.state).health
    }

    /// Whether routing may send session traffic here.
    pub fn routable(&self) -> bool {
        matches!(self.health(), Health::Healthy | Health::Suspect)
    }

    /// Force a health state (admin drain / undrain).
    pub fn set_health(&self, health: Health) {
        let mut st = lock_recover(&self.state);
        st.health = health;
        st.consecutive_failures = 0;
        self.health_gauge.set(health.gauge_value());
    }

    /// Record a successful probe or request: failures reset, and a
    /// suspect/dead shard recovers (draining is sticky — only an admin
    /// undrains).
    pub fn note_ok(&self) {
        let mut st = lock_recover(&self.state);
        st.consecutive_failures = 0;
        if !matches!(st.health, Health::Draining) && st.health != Health::Healthy {
            st.health = Health::Healthy;
            self.health_gauge.set(Health::Healthy.gauge_value());
        }
    }

    /// Record a transport failure: suspect immediately, dead once
    /// `threshold` consecutive failures accumulate. Returns the new
    /// health.
    pub fn note_failure(&self, threshold: u32) -> Health {
        let mut st = lock_recover(&self.state);
        st.consecutive_failures = st.consecutive_failures.saturating_add(1);
        if !matches!(st.health, Health::Draining) {
            st.health = if st.consecutive_failures >= threshold.max(1) {
                Health::Dead
            } else {
                Health::Suspect
            };
            self.health_gauge.set(st.health.gauge_value());
        }
        st.health
    }

    /// Send one request over a pooled connection (dialing a fresh one
    /// when the pool is empty or its connection has gone stale). Returns
    /// the raw response — `ok:false` refusals pass through untouched;
    /// `Err` means transport failure after a fresh dial, i.e. the shard
    /// itself is unreachable.
    pub fn request(&self, cfg: &ClientConfig, req: &Request) -> Result<Response, ClientError> {
        // Bind the pop so the pool guard drops here — an `if let` on the
        // locked pop would hold the pool mutex across the request (and
        // self-deadlock on check_in).
        let pooled = lock_recover(&self.pool).pop();
        if let Some(mut conn) = pooled {
            if let Ok(resp) = conn.request_raw(req) {
                self.check_in(conn);
                self.note_ok();
                return Ok(resp);
            }
            // Stale pooled connection (idle close, shard restart): fall
            // through to a fresh dial before declaring the shard gone.
        }
        let mut conn = Client::connect_with(self.addr.as_str(), *cfg)?;
        let resp = conn.request_raw(req)?;
        self.check_in(conn);
        self.note_ok();
        Ok(resp)
    }

    fn check_in(&self, conn: Client) {
        let mut pool = lock_recover(&self.pool);
        if pool.len() < POOL_CAP {
            pool.push(conn);
        }
    }

    /// One health probe: a `ping` over the pooled transport.
    pub fn probe(&self, cfg: &ClientConfig) -> bool {
        matches!(self.request(cfg, &Request::op("ping")), Ok(resp) if resp.ok)
    }
}
