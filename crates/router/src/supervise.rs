//! Shard supervision: spawn, monitor, and auto-restart `l2q-serve`
//! children.
//!
//! The supervisor owns one child process per [`ShardSpec`]. A monitor
//! thread polls every child: a crashed child is respawned after a capped
//! exponential backoff, a child that keeps crashing before reaching
//! stable uptime trips a crash-loop circuit breaker (the shard is then
//! removed from the ring and left for an operator), and a freshly
//! respawned child is pinged until it answers — at which point it
//! rejoins routing through the ordinary health machinery
//! ([`crate::shard::Shard::note_ok`] flips dead → healthy). Because all
//! shards share one durable store, a restarted child recovers its
//! sessions from the last committed step on first touch; nothing
//! acknowledged is lost across the crash.
//!
//! Rolling restarts ([`crate::router::RouterCore::rolling_restart`])
//! reuse the same machinery through [`Supervisor::restart`]:
//! an intentional kill + immediate respawn that neither backs off nor
//! counts toward the breaker.

use crate::lock::lock_recover;
use crate::router::RouterCore;
use crate::shard::Health;
use l2q_service::proto::SupervisedShardBody;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One supervised shard: ring name, serve address, and the command line
/// that (re)starts its `l2q-serve` process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard name (stable ring identity).
    pub name: String,
    /// `host:port` the child serves on.
    pub addr: String,
    /// Program + arguments to spawn, e.g. `["l2q-serve", "--port", ...]`.
    pub command: Vec<String>,
}

impl ShardSpec {
    /// Parse a `--supervise` spec: `NAME=HOST:PORT=CMD ARG...`. Only the
    /// first two `=` split; the command keeps any `=` of its own and is
    /// split on whitespace.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.splitn(3, '=');
        let (name, addr, cmd) = (parts.next(), parts.next(), parts.next());
        let (Some(name), Some(addr), Some(cmd)) = (name, addr, cmd) else {
            return Err(format!(
                "--supervise expects NAME=HOST:PORT=CMD ARG..., got '{spec}'"
            ));
        };
        let command: Vec<String> = cmd.split_whitespace().map(str::to_owned).collect();
        if name.is_empty() || addr.is_empty() || command.is_empty() {
            return Err(format!(
                "--supervise expects NAME=HOST:PORT=CMD ARG..., got '{spec}'"
            ));
        }
        Ok(Self {
            name: name.to_owned(),
            addr: addr.to_owned(),
            command,
        })
    }
}

/// Supervision policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// First respawn delay after a crash; doubles per rapid crash.
    pub backoff_base: Duration,
    /// Ceiling on the respawn delay.
    pub backoff_cap: Duration,
    /// Rapid crashes (child died before `min_uptime`) that trip the
    /// crash-loop breaker: the supervisor gives up on the child and
    /// removes the shard from the ring.
    pub breaker_threshold: u32,
    /// Uptime after which a child counts as stable and the crash streak
    /// resets.
    pub min_uptime: Duration,
    /// Monitor poll cadence.
    pub poll_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(8),
            breaker_threshold: 5,
            min_uptime: Duration::from_secs(5),
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// Capped exponential backoff before respawn attempt `streak` (1-based):
/// `base << (streak-1)`, saturating at `cap`. Pure so tests can assert
/// the exact schedule.
pub fn respawn_backoff(base: Duration, cap: Duration, streak: u32) -> Duration {
    let shift = streak.saturating_sub(1).min(32);
    base.checked_mul(1u32 << shift.min(31))
        .unwrap_or(cap)
        .min(cap)
}

struct ChildState {
    spec: ShardSpec,
    child: Option<Child>,
    started_at: Instant,
    /// Total respawns performed (intentional restarts included).
    restarts: u64,
    /// Consecutive rapid crashes; resets after `min_uptime` of stability.
    streak: u32,
    /// Backoff deadline for the next respawn, while the child is down.
    next_respawn: Option<Instant>,
    breaker_open: bool,
    last_exit: Option<String>,
    /// Respawned but not yet seen answering a ping.
    awaiting_recovery: bool,
}

fn restart_counter() -> &'static Arc<l2q_obs::Counter> {
    static M: OnceLock<Arc<l2q_obs::Counter>> = OnceLock::new();
    M.get_or_init(|| l2q_obs::global().counter("router_supervisor_restarts_total"))
}

/// The shard supervisor: one child process per spec, plus the monitor
/// thread that keeps them alive.
pub struct Supervisor {
    core: Arc<RouterCore>,
    cfg: SupervisorConfig,
    children: Mutex<Vec<ChildState>>,
    stop: Arc<AtomicBool>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawn every spec's child, register the shards with the router
    /// core (ignoring ones already registered via `--shard`), and start
    /// the monitor thread. The returned handle must be [`Supervisor::shutdown`]
    /// by its owner — children are killed on shutdown, never orphaned.
    pub fn start(
        core: Arc<RouterCore>,
        specs: Vec<ShardSpec>,
        cfg: SupervisorConfig,
    ) -> Result<Arc<Self>, String> {
        let mut children = Vec::with_capacity(specs.len());
        for spec in specs {
            let child = spawn_child(&spec)?;
            // Registration may race a prior `--shard` flag for the same
            // name; the spec's addr wins only for fresh names.
            let _ = core.add_shard(&spec.name, &spec.addr);
            children.push(ChildState {
                spec,
                child: Some(child),
                started_at: Instant::now(),
                restarts: 0,
                streak: 0,
                next_respawn: None,
                breaker_open: false,
                last_exit: None,
                awaiting_recovery: true,
            });
        }
        let sup = Arc::new(Self {
            core,
            cfg,
            children: Mutex::new(children),
            stop: Arc::new(AtomicBool::new(false)),
            monitor: Mutex::new(None),
        });
        let monitor_sup = sup.clone();
        let handle = std::thread::Builder::new()
            .name("l2q-router-supervisor".into())
            .spawn(move || monitor_sup.monitor_loop())
            .map_err(|e| format!("supervisor thread spawn failed: {e}"))?;
        *lock_recover(&sup.monitor) = Some(handle);
        Ok(sup)
    }

    /// Whether `name` is one of the supervised shards.
    pub fn supervises(&self, name: &str) -> bool {
        lock_recover(&self.children)
            .iter()
            .any(|c| c.spec.name == name)
    }

    /// One status row per supervised child.
    pub fn status(&self) -> Vec<SupervisedShardBody> {
        let now = Instant::now();
        lock_recover(&self.children)
            .iter()
            .map(|c| SupervisedShardBody {
                name: c.spec.name.clone(),
                addr: c.spec.addr.clone(),
                pid: c.child.as_ref().map(|ch| u64::from(ch.id())),
                restarts: c.restarts,
                crash_streak: u64::from(c.streak),
                breaker_open: c.breaker_open,
                health: self
                    .core
                    .shard(&c.spec.name)
                    .map(|s| s.health().as_str().to_owned())
                    .unwrap_or_else(|| "unregistered".to_owned()),
                last_exit: c.last_exit.clone(),
                next_respawn_ms: c
                    .next_respawn
                    .map(|due| due.saturating_duration_since(now).as_millis() as u64),
            })
            .collect()
    }

    /// Intentional restart (rolling restarts): kill the child, wait for
    /// it to exit, and respawn immediately — no backoff, no breaker
    /// accounting. The caller is responsible for having drained the
    /// shard first and for waiting until it answers again.
    pub fn restart(&self, name: &str) -> Result<(), String> {
        let mut children = lock_recover(&self.children);
        let state = children
            .iter_mut()
            .find(|c| c.spec.name == name)
            .ok_or_else(|| format!("shard '{name}' is not supervised"))?;
        if state.breaker_open {
            return Err(format!("shard '{name}' breaker is open; not restarting"));
        }
        if let Some(mut child) = state.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let child = spawn_child(&state.spec)?;
        state.child = Some(child);
        state.started_at = Instant::now();
        state.restarts += 1;
        state.next_respawn = None;
        state.awaiting_recovery = true;
        state.last_exit = Some("restarted (rolling)".into());
        restart_counter().inc();
        Ok(())
    }

    /// Stop the monitor and kill every child; idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = lock_recover(&self.monitor).take() {
            let _ = handle.join();
        }
        for state in lock_recover(&self.children).iter_mut() {
            if let Some(mut child) = state.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    fn monitor_loop(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            self.tick(Instant::now());
            std::thread::sleep(self.cfg.poll_interval);
        }
    }

    /// One monitor pass over every child.
    fn tick(&self, now: Instant) {
        let mut children = lock_recover(&self.children);
        for state in children.iter_mut() {
            if state.breaker_open {
                continue;
            }
            match &mut state.child {
                Some(child) => match child.try_wait() {
                    Ok(Some(status)) => self.on_exit(state, status, now),
                    Ok(None) if state.awaiting_recovery => {
                        // Child alive but not yet confirmed serving: ping
                        // it; success flips the shard healthy, rejoining
                        // it to routing.
                        if let Some(shard) = self.core.shard(&state.spec.name) {
                            if shard.probe(&self.core.config().client) {
                                state.awaiting_recovery = false;
                                if now.duration_since(state.started_at) >= self.cfg.min_uptime {
                                    state.streak = 0;
                                }
                            }
                        }
                    }
                    Ok(None) => {
                        // Stable uptime clears the rapid-crash streak.
                        if state.streak > 0
                            && now.duration_since(state.started_at) >= self.cfg.min_uptime
                        {
                            state.streak = 0;
                        }
                    }
                    Err(_) => {}
                },
                None => {
                    let due = state.next_respawn.is_none_or(|due| now >= due);
                    if due {
                        match spawn_child(&state.spec) {
                            Ok(child) => {
                                state.child = Some(child);
                                state.started_at = now;
                                state.restarts += 1;
                                state.next_respawn = None;
                                state.awaiting_recovery = true;
                                restart_counter().inc();
                            }
                            Err(e) => {
                                // Spawn failure counts like a rapid crash:
                                // back off and eventually trip the breaker.
                                state.last_exit = Some(e);
                                self.note_crash(state, now);
                            }
                        }
                    }
                }
            }
        }
    }

    fn on_exit(&self, state: &mut ChildState, status: std::process::ExitStatus, now: Instant) {
        state.child = None;
        state.last_exit = Some(exit_label(status));
        // The child is gone for sure — no need to wait out the probe
        // threshold before routing around it.
        if let Some(shard) = self.core.shard(&state.spec.name) {
            if shard.health() != Health::Draining {
                shard.set_health(Health::Dead);
            }
        }
        if now.duration_since(state.started_at) >= self.cfg.min_uptime {
            state.streak = 0;
        }
        self.note_crash(state, now);
    }

    fn note_crash(&self, state: &mut ChildState, now: Instant) {
        state.streak = state.streak.saturating_add(1);
        if state.streak > self.cfg.breaker_threshold {
            state.breaker_open = true;
            state.next_respawn = None;
            // The shard has left the fleet: drop it from ring + registry
            // so routing, placements, and fleet_status all forget it.
            // Supervisor status keeps the row for diagnosis.
            self.core.remove_shard(&state.spec.name);
        } else {
            state.next_respawn = Some(
                now + respawn_backoff(self.cfg.backoff_base, self.cfg.backoff_cap, state.streak),
            );
        }
    }
}

fn spawn_child(spec: &ShardSpec) -> Result<Child, String> {
    Command::new(&spec.command[0])
        .args(&spec.command[1..])
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| {
            format!(
                "spawn '{}' for shard '{}' failed: {e}",
                spec.command[0], spec.name
            )
        })
}

fn exit_label(status: std::process::ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => "killed by signal".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_name_addr_and_command_with_embedded_equals() {
        let spec = ShardSpec::parse("alpha=127.0.0.1:4401=l2q-serve --port 4401 --mode x=y")
            .expect("valid spec");
        assert_eq!(spec.name, "alpha");
        assert_eq!(spec.addr, "127.0.0.1:4401");
        assert_eq!(
            spec.command,
            vec!["l2q-serve", "--port", "4401", "--mode", "x=y"]
        );
    }

    #[test]
    fn spec_rejects_missing_parts() {
        assert!(ShardSpec::parse("alpha=127.0.0.1:4401").is_err());
        assert!(ShardSpec::parse("=addr=cmd").is_err());
        assert!(ShardSpec::parse("alpha=addr=").is_err());
    }

    #[test]
    fn respawn_backoff_doubles_to_the_cap() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(1500);
        let schedule: Vec<u64> = (1..=6)
            .map(|s| respawn_backoff(base, cap, s).as_millis() as u64)
            .collect();
        assert_eq!(schedule, vec![100, 200, 400, 800, 1500, 1500]);
        // Huge streaks saturate instead of overflowing.
        assert_eq!(respawn_backoff(base, cap, 64), cap);
    }
}
