//! The router's front door: accept loop + health prober.
//!
//! Speaks the same line-delimited JSON protocol as `l2q-serve`, so any
//! existing client points at the router unchanged. Each accepted
//! connection gets a thread that reads request lines and dispatches them
//! through [`RouterCore`]; a background prober pings every registered
//! shard on a jittered schedule so the whole fleet never probes in
//! lockstep and a dead shard is noticed within a couple of intervals.

use crate::router::RouterCore;
use crate::shard::Shard;
use l2q_service::framing::{LineReader, ReadOutcome};
use l2q_service::reactor::{
    spawn_engine, EngineConfig, EngineHandle, Injector, ReplyHandle, TaskPool, WireHandler,
};
use l2q_service::{Request, Response, ServeMode};
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running router; dropping the handle shuts it down.
pub struct RouterHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    drain_timeout: Duration,
    accept_thread: Option<JoinHandle<()>>,
    prober_thread: Option<JoinHandle<()>>,
    rebalancer_thread: Option<JoinHandle<()>>,
    engine: Option<EngineHandle>,
}

impl RouterHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (e.g. by a client's
    /// `shutdown` op).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain in-flight connections (bounded), join the
    /// prober; idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(engine) = &self.engine {
            engine.wake(); // start the reactor's bounded drain promptly
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        while self.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(mut engine) = self.engine.take() {
            engine.join();
        }
        if let Some(h) = self.prober_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.rebalancer_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The router server: binds, spawns the accept loop and the prober.
pub struct RouterServer;

impl RouterServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and route against `core` until
    /// the returned handle shuts down.
    pub fn spawn(core: Arc<RouterCore>, addr: impl ToSocketAddrs) -> std::io::Result<RouterHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let cfg = core.config().clone();

        let engine = match cfg.serve_mode {
            ServeMode::Reactor => Some(spawn_engine(
                Arc::new(RouterWire {
                    core: core.clone(),
                    pool: TaskPool::new(
                        cfg.forward_workers,
                        cfg.forward_queue_cap,
                        "l2q-router-fwd",
                    ),
                }),
                EngineConfig {
                    name: "l2q-router-reactor".into(),
                    max_line_bytes: cfg.max_line_bytes.max(1),
                    drain_timeout: cfg.drain_timeout,
                    stop: stop.clone(),
                },
            )?),
            ServeMode::Threads => None,
        };
        let injector = engine.as_ref().map(EngineHandle::injector);

        let accept_core = core.clone();
        let accept_stop = stop.clone();
        let accept_conns = connections.clone();
        let accept_thread = std::thread::Builder::new()
            .name("l2q-router-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_core, accept_stop, accept_conns, injector)
            })?;

        let probe_core = core.clone();
        let probe_stop = stop.clone();
        let prober_thread = std::thread::Builder::new()
            .name("l2q-router-prober".into())
            .spawn(move || prober_loop(probe_core, probe_stop))?;

        // The load rebalancer is opt-in: a zero interval keeps the fleet
        // placement purely ring + explicit migrations.
        let rebalancer_thread = if cfg.rebalance_interval > Duration::ZERO {
            let rebalance_core = core;
            let rebalance_stop = stop.clone();
            Some(
                std::thread::Builder::new()
                    .name("l2q-router-rebalancer".into())
                    .spawn(move || rebalancer_loop(rebalance_core, rebalance_stop))?,
            )
        } else {
            None
        };

        Ok(RouterHandle {
            addr: local,
            stop,
            connections,
            drain_timeout: cfg.drain_timeout,
            accept_thread: Some(accept_thread),
            prober_thread: Some(prober_thread),
            rebalancer_thread,
            engine,
        })
    }
}

/// The router's [`WireHandler`]. Only purely local ops run inline on the
/// reactor thread; every shard-touching op blocks on shard sockets, so
/// it is forwarded from a dedicated bounded pool.
struct RouterWire {
    core: Arc<RouterCore>,
    pool: TaskPool,
}

impl WireHandler for RouterWire {
    fn run_inline(&self, req: &Request) -> Option<Response> {
        match req.op.as_str() {
            "ping" | "shutdown" => Some(self.core.dispatch(req)),
            _ => None,
        }
    }

    fn deadline_ms(&self, _req: &Request) -> u64 {
        // Deadlines are enforced end-to-end by the shard that executes
        // the step; the router does not double-time its forwards.
        0
    }

    fn dispatch(&self, req: Request, reply: ReplyHandle) {
        // Reply stays outside the closure until the pool accepts the
        // task, so a full forward queue answers `Overloaded`.
        let slot = Arc::new(Mutex::new(Some(reply)));
        let task_slot = slot.clone();
        let core = self.core.clone();
        let task: Box<dyn FnOnce() + Send> = Box::new(move || {
            let reply = task_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(reply) = reply {
                reply.complete(core.dispatch(&req));
            }
        });
        if let Err(e) = self.pool.submit(task) {
            if let Some(reply) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                reply.complete(Response::err(&e));
            }
        }
    }
}

/// Releases one front-door admission count however the reactor closes
/// the connection.
struct RouterConnGuard {
    connections: Arc<AtomicUsize>,
}

impl Drop for RouterConnGuard {
    fn drop(&mut self) {
        self.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    core: Arc<RouterCore>,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    injector: Option<Injector>,
) {
    let max_connections = core.config().max_connections.max(1);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if connections.load(Ordering::SeqCst) >= max_connections {
                    match &injector {
                        Some(injector) => injector.hand_off(stream, None, Some(capacity_refusal())),
                        None => refuse_at_capacity(stream),
                    }
                    continue;
                }
                connections.fetch_add(1, Ordering::SeqCst);
                match &injector {
                    Some(injector) => {
                        let guard = RouterConnGuard {
                            connections: connections.clone(),
                        };
                        injector.hand_off(stream, Some(Box::new(guard)), None);
                    }
                    None => {
                        let core = core.clone();
                        let stop = stop.clone();
                        let conn_count = connections.clone();
                        let spawned = std::thread::Builder::new()
                            .name("l2q-router-conn".into())
                            .spawn(move || {
                                serve_connection(stream, core, stop);
                                conn_count.fetch_sub(1, Ordering::SeqCst);
                            });
                        if spawned.is_err() {
                            connections.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn capacity_refusal() -> Response {
    Response {
        ok: false,
        error: Some("router at capacity".into()),
        retry_after_ms: Some(100),
        ..Response::default()
    }
}

fn refuse_at_capacity(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut out =
        serde_json::to_string(&capacity_refusal()).unwrap_or_else(|_| "{\"ok\":false}".into());
    out.push('\n');
    let _ = stream.write_all(out.as_bytes());
}

fn serve_connection(stream: TcpStream, core: Arc<RouterCore>, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let max_line_bytes = core.config().max_line_bytes.max(1);
    let mut reader = LineReader::new(stream, max_line_bytes);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match reader.read_line() {
            Ok(ReadOutcome::Line(line)) => line,
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Overflow { buffered }) => {
                let resp = Response {
                    ok: false,
                    error: Some(format!(
                        "request line exceeds {max_line_bytes} bytes ({buffered} read); closing connection"
                    )),
                    ..Response::default()
                };
                let _ = write_response(&mut writer, &resp);
                reader.discard_current_line(Duration::from_secs(2));
                return;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(req) => {
                let mut resp = core.dispatch(&req);
                resp.request_id = req.request_id;
                resp
            }
            Err(e) => Response {
                ok: false,
                error: Some(format!("bad request: {e}")),
                ..Response::default()
            },
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if response.state.as_deref() == Some("shutting_down") {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut out = serde_json::to_string(response).unwrap_or_else(|_| "{\"ok\":false}".into());
    out.push('\n');
    writer.write_all(out.as_bytes())
}

/// Deterministic per-shard probe jitter: a splitmix of the shard name and
/// the probe round spreads deadlines over ±interval/4 so probes never
/// synchronize, without pulling in an RNG.
fn probe_jitter(name: &str, round: u64, interval: Duration) -> Duration {
    let quarter = (interval.as_millis() as u64 / 4).max(1);
    let mut z = round.wrapping_mul(0x9e3779b97f4a7c15);
    for b in name.as_bytes() {
        z = (z ^ u64::from(*b)).wrapping_mul(0xbf58476d1ce4e5b9);
    }
    z ^= z >> 31;
    Duration::from_millis(z % quarter)
}

fn prober_loop(core: Arc<RouterCore>, stop: Arc<AtomicBool>) {
    let interval = core.config().probe_interval;
    let client_cfg = core.config().client;
    // Per-shard next-probe deadline; new shards (join_shard) get probed
    // within one interval of appearing.
    let mut schedule: HashMap<String, (Instant, u64)> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in core.all_shards() {
            let (due, round) = *schedule
                .entry(shard.name().to_owned())
                .or_insert_with(|| (now + probe_jitter(shard.name(), 0, interval), 0));
            if now < due {
                continue;
            }
            probe_one(&core, &shard, &client_cfg);
            let next_round = round + 1;
            schedule.insert(
                shard.name().to_owned(),
                (
                    now + interval + probe_jitter(shard.name(), next_round, interval),
                    next_round,
                ),
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn probe_one(core: &Arc<RouterCore>, shard: &Arc<Shard>, cfg: &l2q_service::ClientConfig) {
    if shard.probe(cfg) {
        shard.note_ok();
    } else {
        core.note_probe_failure(shard);
    }
}

/// Background load rebalancer: one [`RouterCore::rebalance_once`] pass
/// per interval. Hysteresis and the per-pass budget live in the core;
/// this loop only paces it (and sleeps in short slices so shutdown never
/// waits out a long interval).
fn rebalancer_loop(core: Arc<RouterCore>, stop: Arc<AtomicBool>) {
    let interval = core.config().rebalance_interval;
    let mut next = Instant::now() + interval;
    while !stop.load(Ordering::SeqCst) {
        if Instant::now() >= next {
            core.rebalance_once();
            next = Instant::now() + interval;
        }
        std::thread::sleep(Duration::from_millis(50).min(interval));
    }
}
