//! Fleet-wide metrics merging for the `fleet_metrics` router op.
//!
//! Each shard renders its registry as JSON (`metrics` op); the router
//! parses those renderings and merges them into one fleet view:
//!
//! * **Counters and gauges** become per-shard labeled series — a
//!   `shard="name"` label is added and the values are **never summed**.
//!   Summing would silently conflate restarts, uneven shard ages, and
//!   double-count a router that also serves; labeling keeps every
//!   shard's value inspectable and lets a scraper sum when it wants to.
//! * **Histograms** are merged bucket-wise under the original series
//!   name: per-`le` counts, overflow, total count, and sum add across
//!   shards, and fleet percentiles are recomputed from the merged
//!   buckets with [`l2q_obs::quantile_from_buckets`] — the same kernel a
//!   single shard uses, so a one-shard fleet reports identical
//!   quantiles. Tail exemplars are unioned per bucket (any shard's
//!   trace id wins; exemplars are samples, not statistics).
//!
//! The merged view renders back out as the same JSON shape the shards
//! produce, or as Prometheus text.

use serde_json::Value;
use std::collections::BTreeMap;

/// A histogram being merged across shards.
///
/// Bucket keys are the `f64` bit patterns of the upper bounds; bounds
/// are positive finite, for which bit order equals numeric order, so a
/// `BTreeMap` keeps buckets sorted without an `Ord` wrapper.
#[derive(Default, Debug)]
struct MergedHistogram {
    count: u64,
    sum: f64,
    buckets: BTreeMap<u64, u64>,
    overflow: u64,
    exemplars: BTreeMap<u64, u64>,
    overflow_exemplar: Option<u64>,
}

impl MergedHistogram {
    /// Fold one shard's rendering of this histogram into the merge.
    /// Bucket arrays are sparse `[le, n]` pairs with the overflow bucket
    /// as `[null, n]`, exactly as the obs registry renders them.
    fn absorb(&mut self, body: &Value) {
        self.count += body.get("count").and_then(Value::as_u64).unwrap_or(0);
        self.sum += body.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
        for pair in body.get("buckets").and_then(Value::as_array).unwrap_or(&[]) {
            let Some([le, n]) = pair.as_array().and_then(|a| a.first_chunk()) else {
                continue;
            };
            let Some(n) = n.as_u64() else { continue };
            match le.as_f64() {
                Some(bound) => *self.buckets.entry(bound.to_bits()).or_insert(0) += n,
                None => self.overflow += n,
            }
        }
        for pair in body
            .get("exemplars")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let Some([le, tid]) = pair.as_array().and_then(|a| a.first_chunk()) else {
                continue;
            };
            let Some(tid) = tid.as_u64() else { continue };
            match le.as_f64() {
                Some(bound) => {
                    self.exemplars.insert(bound.to_bits(), tid);
                }
                None => self.overflow_exemplar = Some(tid),
            }
        }
    }

    /// `(le, count)` pairs sorted ascending — the shape
    /// [`l2q_obs::quantile_from_buckets`] consumes.
    fn sorted_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .map(|(&bits, &n)| (f64::from_bits(bits), n))
            .collect()
    }

    fn quantile(&self, q: f64) -> f64 {
        l2q_obs::quantile_from_buckets(q, &self.sorted_buckets(), self.overflow)
    }

    fn render_json(&self) -> Value {
        let mut buckets: Vec<Value> = self
            .sorted_buckets()
            .iter()
            .map(|&(le, n)| Value::Array(vec![Value::Num(le), Value::Num(n as f64)]))
            .collect();
        buckets.push(Value::Array(vec![
            Value::Null,
            Value::Num(self.overflow as f64),
        ]));
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        };
        let mut body = vec![
            ("count".to_owned(), Value::Num(self.count as f64)),
            ("sum".to_owned(), Value::Num(self.sum)),
            ("mean".to_owned(), Value::Num(mean)),
            ("p50".to_owned(), Value::Num(self.quantile(0.50))),
            ("p95".to_owned(), Value::Num(self.quantile(0.95))),
            ("p99".to_owned(), Value::Num(self.quantile(0.99))),
            ("buckets".to_owned(), Value::Array(buckets)),
        ];
        if !self.exemplars.is_empty() || self.overflow_exemplar.is_some() {
            let mut ex: Vec<Value> = self
                .exemplars
                .iter()
                .map(|(&bits, &tid)| {
                    Value::Array(vec![
                        Value::Num(f64::from_bits(bits)),
                        Value::Num(tid as f64),
                    ])
                })
                .collect();
            if let Some(tid) = self.overflow_exemplar {
                ex.push(Value::Array(vec![Value::Null, Value::Num(tid as f64)]));
            }
            body.push(("exemplars".to_owned(), Value::Array(ex)));
        }
        Value::Object(body)
    }
}

/// The fleet-wide merged view; feed it one shard rendering at a time
/// with [`FleetMetrics::merge_shard`], then render.
#[derive(Default, Debug)]
pub struct FleetMetrics {
    counters: BTreeMap<String, Value>,
    gauges: BTreeMap<String, Value>,
    histograms: BTreeMap<String, MergedHistogram>,
}

/// Split a rendered series (`name` or `name{k="v",...}`) into its name
/// and label pairs.
fn parse_series(series: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = series.find('{') else {
        return (series.to_owned(), Vec::new());
    };
    let name = series[..brace].to_owned();
    let inner = series[brace + 1..].trim_end_matches('}');
    let mut labels = Vec::new();
    for part in inner.split(',') {
        let Some((k, v)) = part.split_once('=') else {
            continue;
        };
        labels.push((k.to_owned(), v.trim_matches('"').to_owned()));
    }
    (name, labels)
}

/// Render a series with sorted labels, matching the obs registry's
/// `name{k="v",...}` shape.
fn render_series(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted = labels.to_vec();
    sorted.sort();
    let inner: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{}{{{}}}", name, inner.join(","))
}

/// A scalar metric value as Prometheus text (integral floats render
/// without a trailing `.0`, matching the obs registry).
fn render_scalar(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "0".into())
}

impl FleetMetrics {
    /// Fold one shard's `metrics` JSON rendering into the fleet view.
    pub fn merge_shard(&mut self, shard: &str, metrics: &Value) {
        for (section, out) in [
            ("counters", &mut self.counters),
            ("gauges", &mut self.gauges),
        ] {
            for (series, value) in metrics
                .get(section)
                .and_then(Value::as_object)
                .unwrap_or(&[])
            {
                let (name, mut labels) = parse_series(series);
                labels.retain(|(k, _)| k != "shard");
                labels.push(("shard".to_owned(), shard.to_owned()));
                out.insert(render_series(&name, &labels), value.clone());
            }
        }
        for (series, body) in metrics
            .get("histograms")
            .and_then(Value::as_object)
            .unwrap_or(&[])
        {
            self.histograms
                .entry(series.clone())
                .or_default()
                .absorb(body);
        }
    }

    /// The merged view in the same JSON shape a single shard renders.
    pub fn render_json(&self) -> Value {
        let section = |map: &BTreeMap<String, Value>| {
            Value::Object(map.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
        };
        Value::Object(vec![
            ("counters".to_owned(), section(&self.counters)),
            ("gauges".to_owned(), section(&self.gauges)),
            (
                "histograms".to_owned(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(series, h)| (series.clone(), h.render_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The merged view as Prometheus text exposition.
    pub fn render_text(&self) -> String {
        fn le_label(le: f64) -> String {
            if le == (le as u64) as f64 {
                format!("{}", le as u64)
            } else {
                format!("{le}")
            }
        }
        let mut out = String::with_capacity(1024);
        let mut last_name = String::new();
        for (kind, map) in [("counter", &self.counters), ("gauge", &self.gauges)] {
            last_name.clear();
            for (series, value) in map {
                let (name, _) = parse_series(series);
                if name != last_name {
                    out.push_str(&format!("# TYPE {name} {kind}\n"));
                    last_name = name;
                }
                out.push_str(&format!("{series} {}\n", render_scalar(value)));
            }
        }
        last_name.clear();
        for (series, h) in &self.histograms {
            let (name, labels) = parse_series(series);
            if name != last_name {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_name = name.clone();
            }
            let mut cum = 0u64;
            for (le, n) in h.sorted_buckets() {
                cum += n;
                let mut with_le = labels.clone();
                with_le.push(("le".to_owned(), le_label(le)));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(&format!("{name}_bucket"), &with_le),
                    cum
                ));
            }
            cum += h.overflow;
            let mut with_le = labels.clone();
            with_le.push(("le".to_owned(), "+Inf".to_owned()));
            out.push_str(&format!(
                "{} {}\n",
                render_series(&format!("{name}_bucket"), &with_le),
                cum
            ));
            out.push_str(&format!(
                "{} {}\n",
                render_series(&format!("{name}_sum"), &labels),
                render_scalar(&Value::Num(h.sum))
            ));
            out.push_str(&format!(
                "{} {}\n",
                render_series(&format!("{name}_count"), &labels),
                h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shard rendering with every quantity scaled by `scale`, in the
    /// exact JSON shape `MetricsRegistry::render_json` produces.
    fn shard_json(scale: u64) -> Value {
        serde_json::parse_value(&format!(
            r#"{{
                "counters": {{
                    "steps_total": {steps},
                    "wire_requests_total{{op=\"step\"}}": {wire}
                }},
                "gauges": {{ "sessions_active": {gauge} }},
                "histograms": {{
                    "harvest_step_seconds": {{
                        "count": {count}, "sum": {sum}, "mean": 0.1,
                        "p50": 0.1, "p95": 0.1, "p99": 0.1,
                        "buckets": [[0.064, {b0}], [0.256, {b1}], [null, 0]],
                        "exemplars": [[0.064, {tid}]]
                    }}
                }}
            }}"#,
            steps = 10 * scale,
            wire = 7 * scale,
            gauge = 3 * scale,
            count = 6 * scale,
            sum = 0.6 * scale as f64,
            b0 = 4 * scale,
            b1 = 2 * scale,
            tid = 42 * scale,
        ))
        .expect("fixture JSON")
    }

    fn num(v: &Value, path: &[&str]) -> f64 {
        let mut cur = v;
        for key in path {
            cur = cur.get(key).unwrap_or_else(|| panic!("missing {key}"));
        }
        cur.as_f64().expect("number")
    }

    #[test]
    fn counters_become_shard_labeled_series_never_summed() {
        let mut fleet = FleetMetrics::default();
        fleet.merge_shard("a", &shard_json(1));
        fleet.merge_shard("b", &shard_json(2));
        let json = fleet.render_json();
        let counters = json.get("counters").unwrap();
        assert_eq!(num(counters, &["steps_total{shard=\"a\"}"]), 10.0);
        assert_eq!(num(counters, &["steps_total{shard=\"b\"}"]), 20.0);
        assert!(
            counters.get("steps_total").is_none(),
            "unlabeled sum must not exist"
        );
        // Existing labels survive, sorted together with the shard label.
        assert_eq!(
            num(counters, &["wire_requests_total{op=\"step\",shard=\"a\"}"]),
            7.0
        );
        assert_eq!(num(&json, &["gauges", "sessions_active{shard=\"b\"}"]), 6.0);
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let mut fleet = FleetMetrics::default();
        fleet.merge_shard("a", &shard_json(1));
        fleet.merge_shard("b", &shard_json(2));
        let json = fleet.render_json();
        let h = json
            .get("histograms")
            .and_then(|v| v.get("harvest_step_seconds"))
            .unwrap();
        assert_eq!(num(h, &["count"]), 18.0);
        assert!((num(h, &["sum"]) - 1.8).abs() < 1e-9);
        let buckets = h.get("buckets").and_then(Value::as_array).unwrap();
        let pair = |v: &Value| {
            let a = v.as_array().unwrap();
            (a[0].as_f64(), a[1].as_u64().unwrap())
        };
        assert_eq!(pair(&buckets[0]), (Some(0.064), 12));
        assert_eq!(pair(&buckets[1]), (Some(0.256), 6));
        assert_eq!(pair(&buckets[2]), (None, 0));
        // Exemplar unioned (last shard wins per bucket).
        let ex = h.get("exemplars").and_then(Value::as_array).unwrap();
        assert_eq!(pair(&ex[0]), (Some(0.064), 84));
    }

    #[test]
    fn fleet_percentiles_match_hand_merged_buckets() {
        let mut fleet = FleetMetrics::default();
        fleet.merge_shard("a", &shard_json(1));
        fleet.merge_shard("b", &shard_json(2));
        let json = fleet.render_json();
        let h = json
            .get("histograms")
            .and_then(|v| v.get("harvest_step_seconds"))
            .unwrap();
        // Hand-merge: 12 samples ≤ 0.064, 6 more ≤ 0.256, 18 total.
        let hand = [(0.064, 12u64), (0.256, 6u64)];
        for (q, key) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let expect = l2q_obs::quantile_from_buckets(q, &hand, 0);
            assert_eq!(num(h, &[key]), expect, "{key} mismatch");
        }
        // p50 target rank 9 lies inside the first bucket (lower edge 0).
        let p50 = num(h, &["p50"]);
        assert!(p50 > 0.0 && p50 <= 0.064, "p50 {p50} out of bucket");
        // p99 target rank 18 lands in the second bucket.
        let p99 = num(h, &["p99"]);
        assert!(p99 > 0.064 && p99 <= 0.256, "p99 {p99} out of bucket");
    }

    #[test]
    fn one_shard_fleet_quantiles_match_the_live_histogram() {
        // A single-shard fleet must reproduce the shard's own quantiles:
        // same kernel, same buckets.
        let reg = l2q_obs::MetricsRegistry::new();
        let h = reg.histogram("solo_seconds");
        for i in 1..=100u64 {
            h.record(i as f64 / 1000.0);
        }
        let own: Value = serde_json::parse_value(&reg.render_json()).unwrap();
        let mut fleet = FleetMetrics::default();
        fleet.merge_shard("only", &own);
        let merged = fleet.render_json();
        let live = h.snapshot("solo_seconds", &[]);
        let got = merged
            .get("histograms")
            .and_then(|v| v.get("solo_seconds"))
            .unwrap();
        assert_eq!(num(got, &["p50"]), live.p50);
        assert_eq!(num(got, &["p95"]), live.p95);
        assert_eq!(num(got, &["p99"]), live.p99);
        assert_eq!(num(got, &["count"]), live.count as f64);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let mut fleet = FleetMetrics::default();
        fleet.merge_shard("a", &shard_json(1));
        let text = fleet.render_text();
        assert!(text.contains("# TYPE steps_total counter"));
        assert!(text.contains("steps_total{shard=\"a\"} 10"));
        assert!(text.contains("# TYPE harvest_step_seconds histogram"));
        assert!(text.contains("harvest_step_seconds_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("harvest_step_seconds_count 6"));
    }
}
