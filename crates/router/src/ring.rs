//! Consistent-hash ring with virtual nodes.
//!
//! Session ids hash onto a ring of `vnodes` points per shard; a session
//! routes to the first shard point at or clockwise past its hash. With
//! enough virtual nodes the load spreads near-uniformly, and adding or
//! removing one shard remaps only ~1/N of the keyspace — resident
//! sessions elsewhere keep their owner, which is the whole reason to
//! prefer a ring over `hash % N`.

/// Default virtual nodes per shard.
pub const DEFAULT_VNODES: usize = 64;

/// splitmix64 finalizer — cheap, well-mixed 64-bit hashing with no
/// external dependency.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over a name, then splitmix64 to spread the low bits.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    mix64(h)
}

/// Where a session id lands on the ring.
pub fn hash_key(id: u64) -> u64 {
    mix64(id)
}

/// The ring: sorted (point, shard-index) pairs over the registered shard
/// names. Mutations rebuild the point list — shards join and leave
/// rarely; lookups are the hot path.
#[derive(Clone, Debug)]
pub struct HashRing {
    vnodes: usize,
    names: Vec<String>,
    /// Sorted by point; ties broken by shard index (deterministic).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per shard.
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            names: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Registered shard names, in join order.
    pub fn shards(&self) -> &[String] {
        &self.names
    }

    /// Whether the shard is on the ring.
    pub fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    /// Add a shard; `false` if the name is already registered.
    pub fn add(&mut self, name: &str) -> bool {
        if self.contains(name) {
            return false;
        }
        self.names.push(name.to_owned());
        self.rebuild();
        true
    }

    /// Remove a shard; `false` if it was not registered.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(pos) = self.names.iter().position(|n| n == name) else {
            return false;
        };
        self.names.remove(pos);
        self.rebuild();
        true
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (idx, name) in self.names.iter().enumerate() {
            let base = hash_name(name);
            for v in 0..self.vnodes {
                self.points.push((mix64(base ^ (v as u64)), idx as u32));
            }
        }
        self.points.sort_unstable();
    }

    /// Every shard in ring preference order for `key`: walk clockwise
    /// from the key's point, yielding each distinct shard once. The first
    /// entry is the session's home; the rest are its failover order.
    pub fn ranked(&self, key: u64) -> Vec<&str> {
        if self.names.is_empty() {
            return Vec::new();
        }
        let h = hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out: Vec<&str> = Vec::with_capacity(self.names.len());
        let mut seen = vec![false; self.names.len()];
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !seen[idx as usize] {
                seen[idx as usize] = true;
                out.push(&self.names[idx as usize]);
                if out.len() == self.names.len() {
                    break;
                }
            }
        }
        out
    }

    /// The session's home shard (`ranked`'s first entry).
    pub fn route(&self, key: u64) -> Option<&str> {
        if self.names.is_empty() {
            return None;
        }
        let h = hash_key(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[start % self.points.len()];
        Some(&self.names[idx as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring(names: &[&str]) -> HashRing {
        let mut r = HashRing::new(DEFAULT_VNODES);
        for n in names {
            assert!(r.add(n));
        }
        r
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let r = ring(&["a", "b", "c"]);
        let mut per_shard: HashMap<String, usize> = HashMap::new();
        for id in 0..3000u64 {
            let owner = r.route(id).unwrap().to_owned();
            assert_eq!(r.route(id), Some(owner.as_str()), "stable per key");
            *per_shard.entry(owner).or_default() += 1;
        }
        assert_eq!(per_shard.len(), 3, "every shard owns some keys");
        for (shard, n) in &per_shard {
            // 3000 keys over 3 shards: expect ~1000 each; virtual nodes
            // keep the skew well inside ±50%.
            assert!((500..=1500).contains(n), "{shard} owns {n} of 3000");
        }
    }

    #[test]
    fn ranked_lists_every_shard_once_starting_with_the_owner() {
        let r = ring(&["a", "b", "c", "d"]);
        for id in 0..100u64 {
            let ranked = r.ranked(id);
            assert_eq!(ranked.len(), 4);
            assert_eq!(ranked[0], r.route(id).unwrap());
            let mut sorted: Vec<&str> = ranked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "no duplicates in {ranked:?}");
        }
    }

    /// The consistent-hashing property: adding one shard to N remaps only
    /// ~1/(N+1) of the keys, and removing it restores the old owners
    /// exactly.
    #[test]
    fn join_remaps_about_one_nth_and_leave_restores_owners() {
        let mut r = ring(&["a", "b", "c", "d"]);
        let keys: Vec<u64> = (0..4000).collect();
        let before: Vec<String> = keys
            .iter()
            .map(|&k| r.route(k).unwrap().to_owned())
            .collect();

        assert!(r.add("e"));
        let after: Vec<String> = keys
            .iter()
            .map(|&k| r.route(k).unwrap().to_owned())
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = moved as f64 / keys.len() as f64;
        // Ideal is 1/5 = 0.20; allow generous vnode variance.
        assert!((0.10..=0.35).contains(&frac), "moved fraction {frac}");
        // Every moved key moved TO the new shard, never between old ones.
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(a, "e", "key moved between old shards: {b} -> {a}");
            }
        }

        assert!(r.remove("e"));
        let restored: Vec<String> = keys
            .iter()
            .map(|&k| r.route(k).unwrap().to_owned())
            .collect();
        assert_eq!(before, restored, "leave restores the exact old owners");
    }

    #[test]
    fn empty_and_duplicate_edges() {
        let mut r = HashRing::new(8);
        assert_eq!(r.route(1), None);
        assert!(r.ranked(1).is_empty());
        assert!(r.add("a"));
        assert!(!r.add("a"), "duplicate join refused");
        assert_eq!(r.route(1), Some("a"));
        assert!(r.remove("a"));
        assert!(!r.remove("a"), "double leave refused");
        assert_eq!(r.route(1), None);
    }
}
