//! `l2q-router` — fleet front door for `l2q-serve` shards.
//!
//! ```text
//! l2q-router [--port P] --shard NAME=HOST:PORT [--shard NAME=HOST:PORT ...]
//!            [--supervise NAME=HOST:PORT=CMD ARG...]
//!            [--vnodes N] [--probe-interval-ms MS] [--fail-threshold N]
//!            [--max-connections N] [--trace-buffer N]
//!            [--serve-mode threads|reactor] [--forward-workers N]
//!            [--rebalance-interval-ms MS] [--rebalance-min-gap N]
//!            [--rebalance-budget N]
//!            [--supervise-backoff-ms MS] [--supervise-breaker N]
//!            [--supervise-min-uptime-ms MS]
//! ```
//!
//! Accepts the same JSON-over-TCP protocol as `l2q-serve` and routes
//! session ops onto the registered shards by consistent hash of the
//! session id. Prints `listening on <addr>` once ready (`--port 0` picks
//! an ephemeral port), then routes until a client sends
//! `{"op":"shutdown"}`. Shards can also join at runtime via the
//! `join_shard` op; `fleet_status` shows topology and health.
//!
//! `--supervise` makes the router **own** a shard's process: it spawns
//! the command, auto-restarts it on crash (capped exponential backoff,
//! crash-loop circuit breaker), and rejoins it to the ring once it
//! answers again. Supervised shards also get real process restarts from
//! the `rolling_restart` op. `--rebalance-interval-ms` enables the
//! background load rebalancer.
//!
//! For failover and migration to preserve sessions, every shard must run
//! with the same `--data-dir` (a shared durable store).

use l2q_router::{RouterConfig, RouterCore, RouterServer, ShardSpec, Supervisor, SupervisorConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
l2q-router — sharded harvest fleet front door (Learning to Query)

USAGE:
  l2q-router [--port P] --shard NAME=HOST:PORT [--shard NAME=HOST:PORT ...]
             [--supervise NAME=HOST:PORT=CMD ARG...]
             [--vnodes N] [--probe-interval-ms MS] [--fail-threshold N]
             [--max-connections N] [--trace-buffer N]
             [--serve-mode threads|reactor] [--forward-workers N]
             [--rebalance-interval-ms MS] [--rebalance-min-gap N]
             [--rebalance-budget N]
             [--supervise-backoff-ms MS] [--supervise-breaker N]
             [--supervise-min-uptime-ms MS]

  --shard registers an externally managed shard; --supervise additionally
  spawns and supervises the shard's process (auto-restart with capped
  exponential backoff; a crash-loop circuit breaker gives up after
  --supervise-breaker rapid crashes). At least one of the two is required.

  --rebalance-interval-ms enables the background load rebalancer: each
  interval it migrates up to --rebalance-budget sessions off the hottest
  shard while the hot/cold resident-count gap exceeds
  --rebalance-min-gap.

  --serve-mode picks the front-door engine: 'reactor' (default) serves
  every client connection from one epoll readiness loop and forwards to
  shards from a bounded pool of --forward-workers threads; 'threads'
  keeps the thread-per-connection path for A/B comparison.
";

fn parse_num<T: std::str::FromStr>(key: &str, args: &[String], default: T) -> Result<T, String> {
    match args
        .iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
    {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

/// Every `--shard NAME=HOST:PORT` occurrence, in order.
fn parse_shards(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut shards = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--shard" {
            let spec = args
                .get(i + 1)
                .ok_or_else(|| "--shard expects NAME=HOST:PORT".to_string())?;
            let (name, addr) = spec
                .split_once('=')
                .ok_or_else(|| format!("--shard expects NAME=HOST:PORT, got '{spec}'"))?;
            if name.is_empty() || addr.is_empty() {
                return Err(format!("--shard expects NAME=HOST:PORT, got '{spec}'"));
            }
            shards.push((name.to_owned(), addr.to_owned()));
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(shards)
}

/// Every `--supervise NAME=HOST:PORT=CMD ARG...` occurrence, in order.
fn parse_supervised(args: &[String]) -> Result<Vec<ShardSpec>, String> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--supervise" {
            let spec = args
                .get(i + 1)
                .ok_or_else(|| "--supervise expects NAME=HOST:PORT=CMD ARG...".to_string())?;
            specs.push(ShardSpec::parse(spec)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(specs)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }

    let shards = parse_shards(&args)?;
    let supervised = parse_supervised(&args)?;
    if shards.is_empty() && supervised.is_empty() {
        return Err("at least one --shard NAME=HOST:PORT or --supervise spec is required".into());
    }
    let port: u16 = parse_num("--port", &args, 4418)?;
    let defaults = RouterConfig::default();
    let cfg = RouterConfig {
        vnodes: parse_num("--vnodes", &args, defaults.vnodes)?.max(1),
        probe_interval: Duration::from_millis(
            parse_num(
                "--probe-interval-ms",
                &args,
                defaults.probe_interval.as_millis() as u64,
            )?
            .max(50),
        ),
        fail_threshold: parse_num("--fail-threshold", &args, defaults.fail_threshold)?.max(1),
        max_connections: parse_num("--max-connections", &args, defaults.max_connections)?.max(1),
        serve_mode: match args
            .iter()
            .position(|a| a == "--serve-mode")
            .and_then(|i| args.get(i + 1))
        {
            None => defaults.serve_mode,
            Some(v) => l2q_service::ServeMode::parse(v)
                .ok_or_else(|| format!("--serve-mode expects threads|reactor, got '{v}'"))?,
        },
        forward_workers: parse_num("--forward-workers", &args, defaults.forward_workers)?.max(1),
        rebalance_interval: Duration::from_millis(parse_num(
            "--rebalance-interval-ms",
            &args,
            0u64,
        )?),
        rebalance_min_gap: parse_num("--rebalance-min-gap", &args, defaults.rebalance_min_gap)?
            .max(1),
        rebalance_budget: parse_num("--rebalance-budget", &args, defaults.rebalance_budget)?.max(1),
        ..defaults
    };

    // Size the trace ring buffer before the first traced request touches
    // it (the capacity freezes on first use; 0 keeps the default).
    let trace_buffer: usize = parse_num("--trace-buffer", &args, 0usize)?;
    if trace_buffer > 0 {
        l2q_obs::trace::configure_capacity(trace_buffer);
    }

    let core = Arc::new(RouterCore::new(cfg));
    for (name, addr) in &shards {
        core.add_shard(name, addr)?;
        eprintln!("registered shard {name} at {addr}");
    }

    let supervisor = if supervised.is_empty() {
        None
    } else {
        let sup_defaults = SupervisorConfig::default();
        let sup_cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(
                parse_num(
                    "--supervise-backoff-ms",
                    &args,
                    sup_defaults.backoff_base.as_millis() as u64,
                )?
                .max(10),
            ),
            breaker_threshold: parse_num(
                "--supervise-breaker",
                &args,
                sup_defaults.breaker_threshold,
            )?
            .max(1),
            min_uptime: Duration::from_millis(parse_num(
                "--supervise-min-uptime-ms",
                &args,
                sup_defaults.min_uptime.as_millis() as u64,
            )?),
            ..sup_defaults
        };
        for spec in &supervised {
            eprintln!("supervising shard {} at {}", spec.name, spec.addr);
        }
        let sup = Supervisor::start(core.clone(), supervised, sup_cfg)?;
        core.set_supervisor(sup.clone());
        Some(sup)
    };

    let mut handle =
        RouterServer::spawn(core, ("127.0.0.1", port)).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", handle.addr());

    while !handle.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.shutdown();
    if let Some(sup) = supervisor {
        sup.shutdown();
    }
    eprintln!("router stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
