//! # l2q-router — sharded session fleet front door
//!
//! One `l2q-serve` process caps out at one machine's cores and memory.
//! This crate scales the serving layer horizontally without changing the
//! protocol: a router accepts the same line-delimited JSON requests,
//! consistent-hashes each session id onto a fleet of registered shards,
//! and proxies over pooled connections. Clients keep speaking to one
//! address; the fleet behind it grows, shrinks, and restarts underneath
//! them.
//!
//! Layers:
//!
//! * [`ring`] — consistent-hash ring with virtual nodes. Adding or
//!   removing a shard remaps only ~1/N of the keyspace, so resident
//!   sessions mostly stay put across topology changes.
//! * [`shard`] — a registered shard: address, health state machine
//!   (healthy → suspect → dead, plus administrative draining), and a
//!   small pool of reusable client connections.
//! * [`router`] — the dispatch core: session ops proxied with failover
//!   down the ring's preference order, fleet admin ops (`fleet_status`,
//!   `join_shard`, `drain_shard`, `migrate`), aggregated `stats`,
//!   merged `list_sessions`, stitched `trace`, and the merged
//!   `fleet_metrics` plane.
//! * [`metrics`] — the `fleet_metrics` merge: counters/gauges become
//!   `shard`-labeled series (never silently summed), histograms merge
//!   bucket-wise so fleet percentiles come from the same quantile
//!   kernel a single shard uses.
//! * [`server`] — the TCP front door, the jittered health prober, and
//!   the background load rebalancer (opt-in via
//!   `RouterConfig::rebalance_interval`).
//! * [`supervise`] — the shard supervisor: spawns `l2q-serve` children
//!   from `--supervise` specs, auto-restarts crashes with capped
//!   exponential backoff, trips a crash-loop circuit breaker after
//!   repeated rapid crashes, and rejoins recovered shards to routing.
//!
//! ## Why failover needs no handoff protocol
//!
//! Every shard opens the same durable store directory (`--data-dir`).
//! When a shard dies, the ring's next-best shard restores the session
//! from its last committed step on first touch and **fences** the store
//! generation, so a zombie of the old owner can no longer commit behind
//! the new owner's back. A step that was in flight on the dead shard
//! either committed (the new owner resumes after it) or did not (the new
//! owner re-executes it); harvesting is deterministic given the committed
//! prefix, so the fired-query trajectory is bit-identical either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lock;
pub mod metrics;
pub mod ring;
pub mod router;
pub mod server;
pub mod shard;
pub mod supervise;

pub use ring::HashRing;
pub use router::{RouterConfig, RouterCore};
pub use server::{RouterHandle, RouterServer};
pub use shard::{Health, Shard};
pub use supervise::{ShardSpec, Supervisor, SupervisorConfig};
