//! Fleet integration: a real router in front of real `l2q-serve` shards
//! (in-process, ephemeral ports, one shared store directory).
//!
//! The acceptance-critical properties live here:
//!
//! * killing a shard mid-harvest fails its sessions over to a survivor
//!   with a **bit-identical** fired-query trajectory vs an uninterrupted
//!   single-server run;
//! * live migration loses zero steps and lands the session on the
//!   requested shard;
//! * draining a shard empties it while its sessions keep stepping.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig};
use l2q_router::{
    HashRing, Health, RouterConfig, RouterCore, RouterHandle, RouterServer, ShardSpec, Supervisor,
    SupervisorConfig,
};
use l2q_service::{
    BundleConfig, Client, ClientConfig, HarvestServer, Request, Response, ServerConfig,
    ServerHandle, ServingBundle,
};
use l2q_store::{SessionStore, StoreConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-fleet-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bundle() -> Arc<ServingBundle> {
    let corpus: Arc<Corpus> = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 8,
                pages_per_entity: 10,
                seed: 11,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ))
}

/// One in-process shard over the shared fleet store directory. Each shard
/// opens its **own** `SessionStore` handle, exactly like separate
/// processes sharing a directory would.
fn start_shard(b: &Arc<ServingBundle>, dir: &Path, shard_id: &str) -> ServerHandle {
    let store = Arc::new(SessionStore::open(dir, StoreConfig::default()).unwrap());
    HarvestServer::spawn_with_store(
        b.clone(),
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            shard_id: Some(shard_id.to_owned()),
            ..ServerConfig::default()
        },
        Some(store),
        "127.0.0.1:0",
    )
    .expect("bind shard")
}

fn start_router(shards: &[(&str, std::net::SocketAddr)]) -> (Arc<RouterCore>, RouterHandle) {
    let core = Arc::new(RouterCore::new(RouterConfig {
        probe_interval: Duration::from_millis(200),
        fail_threshold: 2,
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    }));
    for (name, addr) in shards {
        core.add_shard(name, &addr.to_string()).unwrap();
    }
    let handle = RouterServer::spawn(core.clone(), "127.0.0.1:0").expect("bind router");
    (core, handle)
}

/// Step one-at-a-time until the session finishes; returns the last
/// response. Small batches keep interleaving interesting and give
/// failover/migration a live, mid-harvest session to work with.
fn step_to_completion(client: &mut Client, session: u64) -> Response {
    for _ in 0..64 {
        let resp = client.step(session, 1, 40).expect("step");
        if resp.state.as_deref() != Some("running") {
            return resp;
        }
    }
    panic!("session {session} did not finish within 64 steps");
}

fn counter(name: &str) -> u64 {
    l2q_obs::global().counter(name).get()
}

/// The uninterrupted reference: one plain server, no router, no store.
/// Determinism means every fleet scenario must reproduce these exact
/// fired queries and pages for the same session spec.
fn reference_trajectory(b: &Arc<ServingBundle>) -> (Vec<u32>, Vec<String>) {
    let mut server = HarvestServer::spawn(
        b.clone(),
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let id = client.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    step_to_completion(&mut client, id);
    let snap = client.snapshot(id).unwrap();
    server.shutdown();
    (snap.pages.unwrap(), snap.queries.unwrap())
}

/// Routed basics: sessions land on the ring-predicted shard, both shards
/// serve traffic, every session finishes, and fleet admin ops answer.
#[test]
fn routed_sessions_land_on_ring_owners_and_finish() {
    let dir = test_dir("routed-basic");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    // The ring the router built is reproducible from the same names.
    let mut ring = HashRing::new(l2q_router::ring::DEFAULT_VNODES);
    ring.add("alpha");
    ring.add("beta");

    let mut served: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut sessions = Vec::new();
    for i in 0..8u32 {
        let mut req = l2q_service::Request::op("create");
        req.entity = Some(i % 8);
        req.aspect = Some("RESEARCH".into());
        req.selector = Some("l2qbal".into());
        req.n_queries = Some(4);
        req.domain_size = Some(0);
        let resp = client.request(&req).unwrap();
        let id = resp.session.unwrap();
        let shard = resp.shard.clone().unwrap();
        assert_eq!(
            shard,
            ring.route(id).unwrap(),
            "create routed to the ring owner"
        );
        served.insert(shard);
        sessions.push(id);
    }
    assert_eq!(served.len(), 2, "8 sessions spread across both shards");

    for &id in &sessions {
        let last = step_to_completion(&mut client, id);
        assert_eq!(
            last.shard.as_deref(),
            ring.route(id),
            "steps stay on the owner"
        );
    }

    // Aggregated stats see the whole fleet's work.
    let stats = client.stats().unwrap().stats.unwrap();
    assert_eq!(stats.sessions_created, 8);
    assert!(stats.steps_executed > 0);
    assert_eq!(stats.workers, 4, "2 workers per shard, summed");

    // fleet_status: both shards healthy, resident counts add up.
    let fleet = client.fleet_status().unwrap().fleet.unwrap();
    assert_eq!(fleet.shards.len(), 2);
    assert!(fleet.shards.iter().all(|s| s.health == "healthy"));
    assert_eq!(
        fleet
            .shards
            .iter()
            .map(|s| s.active_sessions.unwrap())
            .sum::<u64>(),
        8
    );

    // Merged list_sessions: every session exactly once, resident.
    let listed = client.list_sessions().unwrap().sessions.unwrap();
    assert_eq!(listed.len(), 8);
    assert!(listed
        .iter()
        .all(|e| e.health.as_deref() == Some("resident")));

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The headline guarantee: kill the owning shard mid-harvest; the session
/// resumes on the survivor from its last committed step and finishes with
/// a fired-query trajectory **bit-identical** to an uninterrupted run.
#[test]
fn shard_death_fails_over_with_bit_identical_trajectory() {
    let dir = test_dir("failover");
    let b = bundle();
    let (ref_pages, ref_queries) = reference_trajectory(&b);

    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let mut handles = std::collections::HashMap::from([("alpha", shard_a), ("beta", shard_b)]);
    let (_core, mut router) = start_router(&[
        ("alpha", handles["alpha"].addr()),
        ("beta", handles["beta"].addr()),
    ]);
    let mut client = Client::connect(router.addr()).unwrap();

    let id = client.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    let owner = client.status(id).unwrap().shard.unwrap();
    let survivor = if owner == "alpha" { "beta" } else { "alpha" };

    // A couple of committed steps, then the owner dies mid-harvest.
    client.step(id, 1, 40).unwrap();
    client.step(id, 1, 40).unwrap();
    let failovers_before = counter("router_failovers_total");
    handles.remove(owner.as_str()).unwrap().shutdown();

    // The very next step fails over transparently within one request.
    let resp = client.step(id, 1, 40).expect("failover step");
    assert_eq!(
        resp.shard.as_deref(),
        Some(survivor),
        "session restored on the survivor"
    );
    assert!(resp.steps_taken.unwrap() >= 3, "no committed step was lost");
    assert!(
        counter("router_failovers_total") > failovers_before,
        "failover was counted"
    );

    let last = step_to_completion(&mut client, id);
    assert_eq!(last.shard.as_deref(), Some(survivor));

    let snap = client.snapshot(id).unwrap();
    assert_eq!(snap.pages.unwrap(), ref_pages, "pages bit-identical");
    assert_eq!(snap.queries.unwrap(), ref_queries, "queries bit-identical");

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Live migration: drain on the source, restore on the explicit target,
/// zero lost steps, and the trajectory still matches the reference.
#[test]
fn live_migration_loses_no_steps_and_sticks_to_target() {
    let dir = test_dir("migrate");
    let b = bundle();
    let (ref_pages, ref_queries) = reference_trajectory(&b);

    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    let id = client.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    client.step(id, 1, 40).unwrap();
    let before = client.status(id).unwrap();
    let owner = before.shard.unwrap();
    let target = if owner == "alpha" { "beta" } else { "alpha" };

    let migrations_before = counter("router_migrations_total");
    let moved = client.migrate(id, Some(target)).unwrap();
    assert_eq!(moved.shard.as_deref(), Some(target), "landed on the target");
    assert_eq!(moved.migrated, Some(1));
    assert!(
        moved.steps_taken.unwrap() >= before.steps_taken.unwrap(),
        "migration lost a step: {:?} -> {:?}",
        before.steps_taken,
        moved.steps_taken
    );
    assert!(counter("router_migrations_total") > migrations_before);

    // Routing now sticks to the target (placement override beats ring).
    let resp = client.step(id, 1, 40).unwrap();
    assert_eq!(resp.shard.as_deref(), Some(target));

    let last = step_to_completion(&mut client, id);
    assert_eq!(last.shard.as_deref(), Some(target));
    let snap = client.snapshot(id).unwrap();
    assert_eq!(snap.pages.unwrap(), ref_pages, "pages bit-identical");
    assert_eq!(snap.queries.unwrap(), ref_queries, "queries bit-identical");

    // Close clears durable state fleet-wide and the placement override.
    client.close(id).unwrap();
    let listed = client.list_sessions().unwrap().sessions.unwrap();
    assert!(listed.iter().all(|e| e.session != id));

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `drain_shard` moves every resident session off the shard, marks it
/// draining (unroutable), and the moved sessions keep stepping elsewhere.
#[test]
fn drain_shard_empties_it_and_sessions_keep_stepping() {
    let dir = test_dir("drain");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    // Enough sessions that both shards certainly hold a few.
    let mut sessions = Vec::new();
    for i in 0..6u32 {
        let id = client
            .create(i % 8, "RESEARCH", "l2qbal", Some(6), 0)
            .unwrap();
        client.step(id, 1, 40).unwrap();
        sessions.push(id);
    }
    let drained = "alpha";
    let on_drained = sessions
        .iter()
        .filter(|&&id| client.status(id).unwrap().shard.as_deref() == Some(drained))
        .count() as u64;
    assert!(on_drained > 0, "test needs residents on the drained shard");

    let resp = client.drain_shard(drained).unwrap();
    assert_eq!(resp.migrated, Some(on_drained), "every resident moved");

    let fleet = client.fleet_status().unwrap().fleet.unwrap();
    let row = |name: &str| fleet.shards.iter().find(|s| s.name == name).unwrap();
    assert_eq!(row("alpha").health, "draining");
    assert_eq!(row("alpha").active_sessions, Some(0), "shard emptied");
    assert_eq!(row("beta").health, "healthy");
    assert_eq!(row("beta").active_sessions, Some(6));

    // Draining shards take no new traffic; everything still finishes.
    for &id in &sessions {
        let last = step_to_completion(&mut client, id);
        assert_eq!(last.shard.as_deref(), Some("beta"));
    }

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole acceptance: one traced step through router → shard comes
/// back as a **single tree** — one trace id, every non-root span's
/// parent resolves within the set — covering router dispatch, scheduler
/// queue wait, the harvest step, graph solve, and retrieval search.
#[test]
fn traced_step_through_router_stitches_one_tree() {
    let dir = test_dir("traced-step");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    // A fresh session on an entity nobody else queried in this process:
    // its seed query cannot be in the retrieval cache, so the traced
    // step is guaranteed to reach the search engine (retrieval_search).
    let id = client.create(7, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    let resp = client.step_traced(id, 1, 40).expect("traced step");
    let trace_id = resp.trace_id.expect("traced step echoes a trace id");

    let fetched = client.trace_by_id(trace_id).expect("fetch trace");
    assert_eq!(fetched.trace_id, Some(trace_id));
    let spans = fetched.spans.expect("stitched spans");
    assert!(
        spans.len() >= 5,
        "expected at least 5 spans, got {}: {:?}",
        spans.len(),
        spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );

    // One trace: every span carries the requested id.
    assert!(
        spans.iter().all(|s| s.trace_id == trace_id),
        "span from a foreign trace leaked into the stitch"
    );
    // One tree: exactly one root, and every non-root parent resolves.
    let roots: Vec<_> = spans
        .iter()
        .filter(|s| s.parent_span_id.is_none())
        .collect();
    assert_eq!(
        roots.len(),
        1,
        "expected a single root span, got {:?}",
        roots.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    assert_eq!(roots[0].name, "router_dispatch", "the router is the edge");
    for s in &spans {
        if let Some(parent) = s.parent_span_id {
            assert!(
                spans.iter().any(|p| p.span_id == parent),
                "span '{}' has an unresolved parent {parent:#x}",
                s.name
            );
        }
    }
    // Span ids are unique after the router's dedup (the in-process
    // fleet shares one ring buffer between router and shards).
    let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len(), "duplicate span ids in the stitch");

    // The tree covers every layer the issue names.
    for required in [
        "router_dispatch",
        "router_forward",
        "wire_request",
        "scheduler_queue_wait",
        "scheduler_batch",
        "harvest_step",
        "graph_solve",
        "retrieval_search",
    ] {
        assert!(
            spans.iter().any(|s| s.name == required),
            "missing span '{required}' in {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
    // The forward span names the shard it went to.
    let forward = spans.iter().find(|s| s.name == "router_forward").unwrap();
    let labels = forward.labels.as_deref().unwrap_or("");
    assert!(
        labels.contains("shard=alpha") || labels.contains("shard=beta"),
        "router_forward labels: {labels:?}"
    );

    // An untraced step stays untraced: no trace id comes back.
    let plain = client.step(id, 1, 40).unwrap();
    assert_eq!(plain.trace_id, None, "untraced step must not allocate");

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The fleet metrics plane: `fleet_metrics` merges every shard's
/// registry with the router's — counters become `shard`-labeled series,
/// histograms merge bucket-wise with finite, ordered percentiles.
#[test]
fn fleet_metrics_merges_shards_under_labels() {
    let dir = test_dir("fleet-metrics");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    // Put some work through the fleet so histograms have samples.
    for i in 0..4u32 {
        let id = client
            .create(i % 8, "RESEARCH", "l2qbal", Some(4), 0)
            .unwrap();
        client.step(id, 1, 40).unwrap();
    }

    let resp = client.fleet_metrics("json").expect("fleet_metrics");
    let body = resp.metrics.expect("merged metrics body");
    let counters = body
        .get("counters")
        .and_then(|v| v.as_object())
        .expect("counters section");
    // Every counter series is shard-labeled; both shards and the router
    // itself appear, and no unlabeled (silently summed) series exists.
    assert!(
        counters.iter().all(|(k, _)| k.contains("shard=\"")),
        "unlabeled counter series in the fleet view"
    );
    for source in ["alpha", "beta", "router"] {
        assert!(
            counters
                .iter()
                .any(|(k, _)| k.contains(&format!("shard=\"{source}\""))),
            "no counter series labeled shard={source}"
        );
    }

    // Histograms merged under their original series names, with sane
    // ordered percentiles from the shared quantile kernel.
    let hist = body
        .get("histograms")
        .and_then(|v| v.get("wire_request_seconds{op=\"step\"}"))
        .expect("merged step-latency histogram");
    let q = |key: &str| hist.get(key).and_then(|v| v.as_f64()).unwrap();
    assert!(hist.get("count").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(q("p50") > 0.0 && q("p50") <= q("p95") && q("p95") <= q("p99"));

    // The text rendering is Prometheus-shaped for scrapers.
    let text = client
        .fleet_metrics("text")
        .unwrap()
        .metrics_text
        .expect("text body");
    assert!(text.contains("# TYPE"));
    assert!(text.contains("shard=\"alpha\""));

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `join_shard` grows the ring at runtime: the new shard immediately
/// shows in `fleet_status` and starts owning a share of new sessions.
#[test]
fn join_shard_expands_the_fleet_at_runtime() {
    let dir = test_dir("join");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let (_core, mut router) = start_router(&[("alpha", shard_a.addr())]);
    let mut client = Client::connect(router.addr()).unwrap();

    let _shard_b = start_shard(&b, &dir, "beta");
    client
        .join_shard("beta", &_shard_b.addr().to_string())
        .unwrap();
    let fleet = client.fleet_status().unwrap().fleet.unwrap();
    assert_eq!(fleet.shards.len(), 2);

    // Duplicate joins are refused.
    let err = client
        .join_shard("beta", &_shard_b.addr().to_string())
        .unwrap_err();
    assert!(err.to_string().contains("already registered"), "got: {err}");

    // With both shards on the ring, a batch of creates reaches beta too.
    let mut served = std::collections::HashSet::new();
    for i in 0..8u32 {
        let mut req = l2q_service::Request::op("create");
        req.entity = Some(i % 8);
        req.aspect = Some("RESEARCH".into());
        req.selector = Some("l2qbal".into());
        req.n_queries = Some(3);
        req.domain_size = Some(0);
        served.insert(client.request(&req).unwrap().shard.unwrap());
    }
    assert!(served.contains("beta"), "joined shard serves new sessions");

    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Split-brain failover: **two** routers independently walk their rings
/// for the same dead session and restore it on *different* survivors.
/// Store fencing must pick exactly one owner — the survivor fenced last
/// wins, the deposed one answers a clean `ok:false` wire error naming
/// the fence (never a panic, never a silent `ok:true` whose step the
/// real owner will not see) — and the winner still finishes with the
/// bit-identical reference trajectory.
#[test]
fn concurrent_failover_fences_exactly_one_owner() {
    let dir = test_dir("fence-race");
    let b = bundle();
    let (ref_pages, ref_queries) = reference_trajectory(&b);

    let mut shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let shard_c = start_shard(&b, &dir, "gamma");
    // Two routers with overlapping-but-different fleet views: both know
    // the eventual victim, each knows a different survivor. Their rings
    // therefore walk the same dead session onto different shards.
    let (_c1, mut router1) = start_router(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);
    let (_c2, mut router2) = start_router(&[("alpha", shard_a.addr()), ("gamma", shard_c.addr())]);
    let mut client1 = Client::connect(router1.addr()).unwrap();
    let mut client2 = Client::connect(router2.addr()).unwrap();

    // A session that lives on alpha (router1's ring decides; retry until
    // the hash lands there), stepped twice so durable state exists.
    let mut session = None;
    for _ in 0..32 {
        let id = client1.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
        if client1.status(id).unwrap().shard.as_deref() == Some("alpha") {
            session = Some(id);
            break;
        }
        client1.close(id).unwrap();
    }
    let id = session.expect("a session landing on alpha within 32 tries");
    client1.step(id, 1, 40).unwrap();
    client1.step(id, 1, 40).unwrap();

    // The owner dies mid-harvest; both routers fail over independently
    // before either learns of the other: beta restores (fences the old
    // generation), then gamma restores (fencing beta's in turn).
    shard_a.shutdown();
    let resp1 = client1.step(id, 1, 40).expect("failover step via router1");
    assert_eq!(
        resp1.shard.as_deref(),
        Some("beta"),
        "router1 lands on beta"
    );
    assert!(resp1.steps_taken.unwrap() >= 3, "no committed step lost");
    let resp2 = client2.step(id, 1, 40).expect("failover step via router2");
    assert_eq!(
        resp2.shard.as_deref(),
        Some("gamma"),
        "router2 lands on gamma"
    );
    assert!(
        resp2.steps_taken.unwrap() > resp1.steps_taken.unwrap(),
        "gamma restored beta's committed step before advancing"
    );

    // Beta is now the deposed half of the split brain: its next commit
    // hits the bumped fence generation and the step comes back as a
    // clean structured error naming the fence — the connection stays
    // usable and nothing panics.
    let fenced_before = counter("service_sessions_fenced_total");
    let err = client1
        .step(id, 1, 40)
        .expect_err("deposed survivor must refuse");
    assert!(
        err.to_string().contains("fenced"),
        "error names the fence: {err}"
    );
    assert!(counter("service_sessions_fenced_total") > fenced_before);
    let err = client1
        .step(id, 1, 40)
        .expect_err("still fenced, still clean");
    assert!(err.to_string().contains("fenced"), "got: {err}");

    // Exactly one owner: the winner finishes on gamma with the exact
    // reference trajectory (two failovers lost and duplicated nothing).
    let last = step_to_completion(&mut client2, id);
    assert_eq!(last.shard.as_deref(), Some("gamma"));
    let snap = client2.snapshot(id).unwrap();
    assert_eq!(snap.pages.unwrap(), ref_pages, "pages bit-identical");
    assert_eq!(snap.queries.unwrap(), ref_queries, "queries bit-identical");

    router1.shutdown();
    router2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A router core without a served front door (and crucially without the
/// prober, so tests fully control health transitions).
fn bare_core(shards: &[(&str, std::net::SocketAddr)]) -> Arc<RouterCore> {
    let core = Arc::new(RouterCore::new(RouterConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(300),
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    }));
    for (name, addr) in shards {
        core.add_shard(name, &addr.to_string()).unwrap();
    }
    core
}

fn create_via(core: &RouterCore, entity: u32) -> (u64, String) {
    let mut req = Request::op("create");
    req.entity = Some(entity);
    req.aspect = Some("RESEARCH".into());
    req.selector = Some("l2qbal".into());
    req.n_queries = Some(6);
    req.domain_size = Some(3);
    let resp = core.dispatch(&req);
    assert!(resp.ok, "create failed: {:?}", resp.error);
    (resp.session.unwrap(), resp.shard.unwrap())
}

fn step_via(core: &RouterCore, session: u64) -> Response {
    let mut req = Request::for_session("step", session);
    req.steps = Some(1);
    core.dispatch(&req)
}

fn resident_count(addr: std::net::SocketAddr) -> usize {
    let mut client = Client::connect(addr).unwrap();
    client
        .list_sessions()
        .unwrap()
        .sessions
        .unwrap_or_default()
        .iter()
        .filter(|r| r.health.as_deref() == Some("resident"))
        .count()
}

/// Regression for the stale-placement bug: a `migrate` override whose
/// target shard dies must be dropped, not honored — and in particular a
/// later **revival** of that shard (a supervisor restart) must not
/// resurrect the stale route and fence the session's current owner. The
/// seed router kept overrides until `close`, so the revived target
/// would be preferred again.
#[test]
fn stale_placement_to_a_dead_shard_is_dropped_and_never_resurrects() {
    let dir = test_dir("stale-placement");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let core = bare_core(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);

    // A session whose natural ring owner is alpha (try a few entities).
    let (session, _) = (0..8)
        .map(|e| create_via(&core, e))
        .find(|(_, shard)| shard == "alpha")
        .expect("some session lands on alpha");

    // Pin it to beta with an explicit migration.
    let mut migrate = Request::for_session("migrate", session);
    migrate.shard = Some("beta".into());
    let resp = core.dispatch(&migrate);
    assert!(resp.ok, "migrate failed: {:?}", resp.error);
    assert_eq!(step_via(&core, session).shard.as_deref(), Some("beta"));

    // Beta dies (no prober on a bare core: the state is ours to set).
    core.shard("beta").unwrap().set_health(Health::Dead);
    let stale_before = counter("router_stale_placements_cleared_total");
    let resp = step_via(&core, session);
    assert!(resp.ok, "step after target death failed: {:?}", resp.error);
    assert_eq!(
        resp.shard.as_deref(),
        Some("alpha"),
        "session must fall back to the ring walk"
    );
    assert!(
        counter("router_stale_placements_cleared_total") > stale_before,
        "stale override was not cleared"
    );

    // Beta comes back: the cleared override must NOT resurrect — the
    // session stays with its current owner instead of bouncing back and
    // fencing alpha.
    core.shard("beta").unwrap().set_health(Health::Healthy);
    for _ in 0..3 {
        let resp = step_via(&core, session);
        assert!(resp.ok, "step after revival failed: {:?}", resp.error);
        assert_eq!(
            resp.shard.as_deref(),
            Some("alpha"),
            "stale placement resurrected after target revival"
        );
    }
}

/// Supervisor crash loop: a child that dies instantly is restarted on
/// the capped exponential backoff schedule until the circuit breaker
/// trips, at which point the supervisor gives up and removes the shard
/// from the ring. The restart counter records every respawn.
#[test]
fn supervisor_crash_loop_trips_the_breaker_after_the_backoff_schedule() {
    let core = bare_core(&[]);
    let restarts_before = counter("router_supervisor_restarts_total");

    // The schedule the supervisor must follow (pure, asserted exactly).
    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(40);
    let schedule: Vec<u64> = (1..=4)
        .map(|streak| l2q_router::supervise::respawn_backoff(base, cap, streak).as_millis() as u64)
        .collect();
    assert_eq!(schedule, vec![10, 20, 40, 40]);

    let spec = ShardSpec::parse("crashy=127.0.0.1:1=/bin/false").unwrap();
    let sup = Supervisor::start(
        core.clone(),
        vec![spec],
        SupervisorConfig {
            backoff_base: base,
            backoff_cap: cap,
            breaker_threshold: 3,
            min_uptime: Duration::from_secs(10),
            poll_interval: Duration::from_millis(10),
        },
    )
    .expect("start supervisor");
    assert!(core.shard("crashy").is_some(), "spec registered as a shard");

    // Crash 1 (initial spawn) + 3 respawns within the threshold, then
    // crash 4 trips the breaker. Total wait is bounded by the schedule
    // (~70ms of backoff) plus poll slop.
    let mut row = None;
    for _ in 0..300 {
        std::thread::sleep(Duration::from_millis(10));
        let status = sup.status();
        if status[0].breaker_open {
            row = Some(status[0].clone());
            break;
        }
    }
    let row = row.expect("breaker never opened");
    assert_eq!(row.restarts, 3, "respawns must stop at the threshold");
    assert!(row.pid.is_none(), "no child may survive an open breaker");
    assert_eq!(row.last_exit.as_deref(), Some("exit code 1"));
    assert_eq!(
        counter("router_supervisor_restarts_total") - restarts_before,
        3,
        "restart counter must record each respawn"
    );
    // Giving up removes the shard from the fleet entirely.
    assert!(
        core.shard("crashy").is_none(),
        "breaker must remove the shard from the ring"
    );
    sup.shutdown();
}

/// Supervisor recovery path: killing a long-lived child makes the
/// supervisor respawn it (one restart, breaker closed, fresh pid).
#[test]
fn supervisor_respawns_a_killed_child() {
    let core = bare_core(&[]);
    let spec = ShardSpec::parse("sleeper=127.0.0.1:1=/bin/sleep 600").unwrap();
    let sup = Supervisor::start(
        core.clone(),
        vec![spec],
        SupervisorConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            breaker_threshold: 5,
            min_uptime: Duration::from_millis(50),
            poll_interval: Duration::from_millis(10),
        },
    )
    .expect("start supervisor");

    let first_pid = sup.status()[0].pid.expect("child running");
    assert!(std::process::Command::new("kill")
        .args(["-9", &first_pid.to_string()])
        .status()
        .expect("kill")
        .success());

    let mut respawned = None;
    for _ in 0..300 {
        std::thread::sleep(Duration::from_millis(10));
        let row = sup.status()[0].clone();
        if row.restarts == 1 {
            if let Some(pid) = row.pid {
                respawned = Some((pid, row));
                break;
            }
        }
    }
    let (new_pid, row) = respawned.expect("child never respawned");
    assert_ne!(new_pid, first_pid, "respawn must be a fresh process");
    assert!(!row.breaker_open, "one kill must not trip the breaker");
    assert_eq!(row.last_exit.as_deref(), Some("killed by signal"));
    sup.shutdown();
}

/// Rebalancer convergence: a fleet skewed entirely onto one shard
/// reaches balance within the per-pass migration budget and then stops
/// — repeated passes on a balanced fleet migrate nothing (no
/// ping-pong), because hysteresis only acts while the hot/cold gap
/// exceeds `rebalance_min_gap`.
#[test]
fn rebalancer_converges_a_skewed_fleet_without_ping_pong() {
    let dir = test_dir("rebalance");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let core = bare_core(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);

    // Eight live mid-harvest sessions, all pinned onto alpha.
    let migrated_before = counter("router_rebalancer_migrations_total");
    for entity in 0..8u32 {
        let (session, _) = create_via(&core, entity);
        assert!(step_via(&core, session).ok);
        let mut migrate = Request::for_session("migrate", session);
        migrate.shard = Some("alpha".into());
        assert!(core.dispatch(&migrate).ok);
    }
    assert_eq!(resident_count(shard_a.addr()), 8);
    assert_eq!(resident_count(shard_b.addr()), 0);

    // One pass converges: gap 8 → moves until the hot/cold gap is at
    // most min_gap (2), within the budget of 4.
    let moved = core.rebalance_once();
    assert_eq!(moved, 3, "8/0 converges to 5/3 in one pass");
    assert_eq!(resident_count(shard_a.addr()), 5);
    assert_eq!(resident_count(shard_b.addr()), 3);
    assert_eq!(
        counter("router_rebalancer_migrations_total") - migrated_before,
        3
    );

    // A balanced fleet stays put: no ping-pong on further passes.
    for _ in 0..3 {
        assert_eq!(core.rebalance_once(), 0, "balanced fleet must not churn");
    }
    assert_eq!(resident_count(shard_a.addr()), 5);
    assert_eq!(resident_count(shard_b.addr()), 3);

    // Moved sessions keep stepping where they landed.
    let listed = {
        let mut client = Client::connect(shard_b.addr()).unwrap();
        client.list_sessions().unwrap().sessions.unwrap()
    };
    let on_beta: Vec<u64> = listed
        .iter()
        .filter(|r| r.health.as_deref() == Some("resident"))
        .map(|r| r.session)
        .collect();
    for session in on_beta {
        let resp = step_via(&core, session);
        assert!(resp.ok, "rebalanced session step failed: {:?}", resp.error);
        assert_eq!(resp.shard.as_deref(), Some("beta"), "override must stick");
    }
}

/// Rolling restart on an unsupervised in-process fleet: every shard is
/// drained, waited healthy, and undrained in turn; sessions keep
/// stepping afterwards and the drain-duration histogram fills.
#[test]
fn rolling_restart_cycles_every_shard_and_keeps_sessions_stepping() {
    let dir = test_dir("rolling");
    let b = bundle();
    let shard_a = start_shard(&b, &dir, "alpha");
    let shard_b = start_shard(&b, &dir, "beta");
    let core = bare_core(&[("alpha", shard_a.addr()), ("beta", shard_b.addr())]);

    let mut sessions = Vec::new();
    for entity in 0..4u32 {
        let (session, _) = create_via(&core, entity);
        assert!(step_via(&core, session).ok);
        sessions.push(session);
    }

    let restarts_before = counter("router_rolling_restarts_total");
    let resp = core.rolling_restart();
    assert!(resp.ok, "rolling restart failed: {:?}", resp.error);
    assert_eq!(resp.state.as_deref(), Some("completed"));
    assert_eq!(resp.restarted, Some(2));
    assert_eq!(
        counter("router_rolling_restarts_total") - restarts_before,
        2
    );

    // The whole fleet is routable again and sessions still step.
    for shard in core.all_shards() {
        assert_eq!(
            shard.health(),
            Health::Healthy,
            "{} not rejoined",
            shard.name()
        );
    }
    for session in sessions {
        assert!(
            step_via(&core, session).ok,
            "session {session} lost after restart"
        );
    }

    // Quorum guard: with beta forced dead, taking alpha down would drop
    // the fleet below majority — the restart must refuse to start.
    core.shard("beta").unwrap().set_health(Health::Dead);
    let resp = core.rolling_restart();
    assert!(!resp.ok, "restart below quorum must abort");
    assert_eq!(resp.state.as_deref(), Some("aborted"));
    assert_eq!(resp.restarted, Some(0));
}
