//! Page-set quality metrics.
//!
//! "We evaluate the retrieved pages in terms of their actual precision and
//! recall (and eventually F-score) for every target entity and aspect"
//! (paper Sect. VI-A). The relevance universe of an (entity, aspect) pair
//! is the oracle-materialized Y over the entity's corpus slice.

use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use serde::Serialize;
use std::collections::HashSet;

/// Precision / recall / F1 of a gathered page set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Metrics {
    /// Fraction of gathered pages that are relevant.
    pub precision: f64,
    /// Fraction of the entity's relevant pages that were gathered.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl Metrics {
    /// Compose from precision and recall.
    pub fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Metrics of `gathered` w.r.t. the oracle's relevant set for
/// (entity, aspect). Returns `None` when the entity has no relevant pages
/// at all (recall undefined — the pair is skipped in averaging, which is
/// what per-entity normalization requires anyway).
pub fn page_metrics(
    corpus: &Corpus,
    oracle: &RelevanceOracle,
    entity: EntityId,
    aspect: AspectId,
    gathered: &[PageId],
) -> Option<Metrics> {
    let relevant: HashSet<PageId> = oracle
        .relevant_pages(corpus, entity, aspect)
        .into_iter()
        .collect();
    if relevant.is_empty() {
        return None;
    }
    if gathered.is_empty() {
        return Some(Metrics::new(0.0, 0.0));
    }
    let distinct: HashSet<PageId> = gathered.iter().copied().collect();
    let hit = distinct.iter().filter(|p| relevant.contains(p)).count();
    let precision = hit as f64 / distinct.len() as f64;
    let recall = hit as f64 / relevant.len() as f64;
    Some(Metrics::new(precision, recall))
}

/// A running average over optional metric observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsAccumulator {
    sum_p: f64,
    sum_r: f64,
    sum_f: f64,
    n: usize,
}

impl MetricsAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, m: Metrics) {
        self.sum_p += m.precision;
        self.sum_r += m.recall;
        self.sum_f += m.f1;
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// The mean metrics (zeros if empty).
    pub fn mean(&self) -> Metrics {
        if self.n == 0 {
            return Metrics::default();
        }
        let n = self.n as f64;
        Metrics {
            precision: self.sum_p / n,
            recall: self.sum_r / n,
            f1: self.sum_f / n,
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        self.sum_p += other.sum_p;
        self.sum_r += other.sum_r;
        self.sum_f += other.sum_f;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    #[test]
    fn f1_is_harmonic_mean() {
        let m = Metrics::new(0.5, 1.0);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Metrics::new(0.0, 0.0).f1, 0.0);
    }

    #[test]
    fn metrics_against_truth_oracle() {
        let c = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let o = RelevanceOracle::from_truth(&c);
        let e = EntityId(0);
        let a = c.aspect_by_name("RESEARCH").unwrap();
        let relevant = o.relevant_pages(&c, e, a);
        assert!(!relevant.is_empty());

        // Gathering exactly the relevant set gives perfect metrics.
        let m = page_metrics(&c, &o, e, a, &relevant).unwrap();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);

        // Gathering everything: recall 1, precision = share of relevant.
        let all: Vec<PageId> = c.pages_of(e).iter().map(|p| p.id).collect();
        let m = page_metrics(&c, &o, e, a, &all).unwrap();
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - relevant.len() as f64 / all.len() as f64).abs() < 1e-12);

        // Empty gathering.
        let m = page_metrics(&c, &o, e, a, &[]).unwrap();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn duplicates_in_gathered_do_not_inflate() {
        let c = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let o = RelevanceOracle::from_truth(&c);
        let e = EntityId(1);
        let a = c.aspect_by_name("CONTACT").unwrap();
        let relevant = o.relevant_pages(&c, e, a);
        let doubled: Vec<PageId> = relevant.iter().chain(relevant.iter()).copied().collect();
        let m = page_metrics(&c, &o, e, a, &doubled).unwrap();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn accumulator_averages_and_merges() {
        let mut a = MetricsAccumulator::new();
        a.push(Metrics::new(1.0, 0.0));
        a.push(Metrics::new(0.0, 1.0));
        let m = a.mean();
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(a.count(), 2);

        let mut b = MetricsAccumulator::new();
        b.push(Metrics::new(1.0, 1.0));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.mean().precision > 0.5);

        assert_eq!(MetricsAccumulator::new().mean(), Metrics::default());
    }
}
