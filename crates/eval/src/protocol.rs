//! The split protocol (paper Sect. VI-A, "Evaluation methodology").
//!
//! "In each domain, we randomly reserved half of the entities as domain
//! entities, and the remaining as target entities. … Target entities were
//! further divided into two equal splits, such that one of the split is
//! reserved for parameter validation, and the other for testing. We
//! repeated the split randomly for 10 times."

use l2q_corpus::EntityId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One random split of the entity population.
#[derive(Clone, Debug)]
pub struct Split {
    /// Peer entities whose pages feed the domain phase.
    pub domain: Vec<EntityId>,
    /// Target entities for parameter validation (r0 cross-validation).
    pub validation: Vec<EntityId>,
    /// Target entities for testing.
    pub test: Vec<EntityId>,
}

/// Generate `n_repeats` random splits of `n_entities` entities
/// (half domain, quarter validation, quarter test), deterministically from
/// `seed`.
pub fn make_splits(n_entities: usize, n_repeats: usize, seed: u64) -> Vec<Split> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_repeats)
        .map(|_| {
            let mut ids: Vec<EntityId> = (0..n_entities as u32).map(EntityId).collect();
            ids.shuffle(&mut rng);
            let half = n_entities / 2;
            let quarter = half + (n_entities - half) / 2;
            Split {
                domain: ids[..half].to_vec(),
                validation: ids[half..quarter].to_vec(),
                test: ids[quarter..].to_vec(),
            }
        })
        .collect()
}

impl Split {
    /// A variant of this split that uses only a fraction of the domain
    /// entities (for the Fig. 11 domain-size experiment). The prefix is
    /// taken, so fractions nest: 5% ⊂ 10% ⊂ 25% ⊂ 100%.
    pub fn with_domain_fraction(&self, fraction: f64) -> Split {
        let k = ((self.domain.len() as f64) * fraction).round() as usize;
        Split {
            domain: self.domain[..k.min(self.domain.len())].to_vec(),
            validation: self.validation.clone(),
            test: self.test.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splits_partition_entities() {
        let splits = make_splits(100, 10, 7);
        assert_eq!(splits.len(), 10);
        for s in &splits {
            assert_eq!(s.domain.len(), 50);
            assert_eq!(s.validation.len(), 25);
            assert_eq!(s.test.len(), 25);
            let all: HashSet<_> = s
                .domain
                .iter()
                .chain(&s.validation)
                .chain(&s.test)
                .collect();
            assert_eq!(all.len(), 100, "overlap between split parts");
        }
    }

    #[test]
    fn splits_differ_but_are_seed_deterministic() {
        let a = make_splits(40, 3, 1);
        let b = make_splits(40, 3, 1);
        assert_eq!(a[0].domain, b[0].domain);
        assert_ne!(a[0].domain, a[1].domain, "repeats must differ");
        let c = make_splits(40, 3, 2);
        assert_ne!(a[0].domain, c[0].domain, "seeds must differ");
    }

    #[test]
    fn odd_sizes_are_handled() {
        let s = &make_splits(7, 1, 0)[0];
        assert_eq!(s.domain.len() + s.validation.len() + s.test.len(), 7);
        assert!(!s.test.is_empty());
    }

    #[test]
    fn domain_fractions_nest() {
        let s = &make_splits(40, 1, 3)[0];
        let f5 = s.with_domain_fraction(0.05);
        let f25 = s.with_domain_fraction(0.25);
        let f100 = s.with_domain_fraction(1.0);
        assert!(f5.domain.len() <= f25.domain.len());
        assert_eq!(f100.domain.len(), s.domain.len());
        assert!(f25.domain.starts_with(&f5.domain));
        assert_eq!(s.with_domain_fraction(0.0).domain.len(), 0);
    }
}
