//! The ideal-solution upper bound (paper Sect. VI-A, "Evaluation
//! methodology").
//!
//! "We then select queries to maximize the product of their actual
//! coverage and precision, which can be obtained by feeding each candidate
//! query to the search engine. Thus, it is clearly infeasible in real
//! applications, and only acts as a performance upper bound for
//! normalization."
//!
//! [`IdealSelector`] implements exactly that: each iteration it *fires
//! every candidate* (through the per-run [`l2q_retrieval::SearchEngine`]),
//! measures the true coverage × precision of the would-be cumulative page
//! set against the oracle, and picks the best. It plugs into the ordinary
//! harvest loop, so its per-iteration snapshots provide the normalization
//! denominators for every method.

use l2q_core::{Query, QuerySelector, SelectionInput};
use l2q_corpus::PageId;
use std::collections::HashSet;

/// The cheating upper-bound selector.
#[derive(Default)]
pub struct IdealSelector;

impl IdealSelector {
    /// Create the selector.
    pub fn new() -> Self {
        Self
    }
}

impl QuerySelector for IdealSelector {
    fn name(&self) -> String {
        "IDEAL".into()
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        // Full candidate pool: page candidates plus frequent domain
        // queries — the bound should dominate every method's pool.
        let fired: HashSet<&Query> = input.fired.iter().collect();
        let mut pool: Vec<&Query> = input.page_candidates.iter().collect();
        if let Some(dm) = input.domain {
            let seen: HashSet<&Query> = pool.iter().copied().collect();
            pool.extend(
                dm.frequent_queries()
                    .filter(|q| !fired.contains(q) && !seen.contains(q)),
            );
        }
        pool.retain(|q| !fired.contains(q));
        if pool.is_empty() {
            return None;
        }

        let relevant_universe: HashSet<PageId> = input
            .oracle
            .relevant_pages(input.corpus, input.entity, input.aspect)
            .into_iter()
            .collect();
        if relevant_universe.is_empty() {
            return None;
        }
        let gathered: HashSet<PageId> = input.gathered.iter().copied().collect();

        let mut best: Option<(f64, &Query)> = None;
        for q in pool {
            let results = input.engine.search(input.entity, q.words());
            // Cumulative set if q were fired.
            let mut set = gathered.clone();
            set.extend(results);
            if set.is_empty() {
                continue;
            }
            let hit = set.iter().filter(|p| relevant_universe.contains(p)).count();
            let precision = hit as f64 / set.len() as f64;
            let coverage = hit as f64 / relevant_universe.len() as f64;
            let score = precision * coverage;
            match best {
                Some((s, b)) if score < s || (score == s && *b < *q) => {}
                _ => best = Some((score, q)),
            }
        }
        best.map(|(_, q)| q.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::page_metrics;
    use l2q_aspect::RelevanceOracle;
    use l2q_baselines::RndSelector;
    use l2q_core::{Harvester, L2qConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn ideal_dominates_random_on_f_score() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let cfg = L2qConfig::default();
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg,
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();

        let mut sum_ideal = 0.0;
        let mut sum_rnd = 0.0;
        let mut n = 0;
        for e in corpus.entity_ids().take(4) {
            let mut ideal = IdealSelector::new();
            let rec_i = harvester.run(e, aspect, &mut ideal);
            let mut rnd = RndSelector::new(3);
            let rec_r = harvester.run(e, aspect, &mut rnd);
            let mi = page_metrics(&corpus, &oracle, e, aspect, &rec_i.gathered).unwrap();
            let mr = page_metrics(&corpus, &oracle, e, aspect, &rec_r.gathered).unwrap();
            sum_ideal += mi.f1;
            sum_rnd += mr.f1;
            n += 1;
        }
        assert!(n > 0);
        assert!(
            sum_ideal >= sum_rnd,
            "ideal ({sum_ideal:.3}) must dominate random ({sum_rnd:.3}) on average"
        );
    }

    #[test]
    fn ideal_is_deterministic() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("AWARD").unwrap();
        let mut s1 = IdealSelector::new();
        let mut s2 = IdealSelector::new();
        let a = harvester.run(EntityId(2), aspect, &mut s1);
        let b = harvester.run(EntityId(2), aspect, &mut s2);
        assert_eq!(a.gathered, b.gathered);
    }
}
