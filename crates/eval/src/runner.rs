//! The experiment runner: harvests every (test entity, aspect) pair with a
//! selector, measures cumulative quality after each query, and normalizes
//! against the ideal-solution upper bound — the paper's evaluation loop.

use crate::ideal::IdealSelector;
use crate::metrics::{page_metrics, Metrics, MetricsAccumulator};
use l2q_aspect::RelevanceOracle;
use l2q_core::{DomainModel, Harvester, L2qConfig, QuerySelector};
use l2q_corpus::{AspectId, Corpus, EntityId};
use l2q_retrieval::SearchEngine;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Duration;

/// Shared evaluation context for one corpus.
pub struct EvalContext<'a> {
    /// The frozen corpus.
    pub corpus: &'a Corpus,
    /// Search engine over the corpus.
    pub engine: &'a SearchEngine,
    /// Materialized Y.
    pub oracle: &'a RelevanceOracle,
}

/// Ideal-solution metrics per (entity, aspect) and iteration count
/// (index 0 = seed only, index i = after i queries).
pub struct IdealBounds {
    map: HashMap<(EntityId, AspectId), Vec<Metrics>>,
}

impl IdealBounds {
    /// Upper-bound metrics for a pair at an iteration count, if the pair
    /// was evaluated.
    pub fn get(&self, e: EntityId, a: AspectId, iters: usize) -> Option<Metrics> {
        self.map.get(&(e, a)).and_then(|v| v.get(iters)).copied()
    }

    /// Number of evaluated pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pairs were evaluated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Compute the ideal bounds for all (entity, aspect) pairs.
pub fn ideal_bounds(
    ctx: &EvalContext<'_>,
    domain: Option<&DomainModel>,
    entities: &[EntityId],
    cfg: &L2qConfig,
) -> IdealBounds {
    let harvester = Harvester {
        corpus: ctx.corpus,
        engine: ctx.engine,
        oracle: ctx.oracle,
        domain,
        cfg: *cfg,
    };
    let mut map = HashMap::new();
    for &e in entities {
        for a in ctx.corpus.aspects() {
            let mut sel = IdealSelector::new();
            let rec = harvester.run(e, a, &mut sel);
            let mut per_iter = Vec::with_capacity(cfg.n_queries + 1);
            let mut skip = false;
            for i in 0..=cfg.n_queries {
                match page_metrics(ctx.corpus, ctx.oracle, e, a, &rec.cumulative(i)) {
                    Some(m) => per_iter.push(m),
                    None => {
                        skip = true;
                        break;
                    }
                }
            }
            if !skip {
                map.insert((e, a), per_iter);
            }
        }
    }
    IdealBounds { map }
}

/// Parallel variant of [`ideal_bounds`]: entities split across worker
/// threads (the ideal selector is stateless per run, so results are
/// identical).
pub fn ideal_bounds_parallel(
    ctx: &EvalContext<'_>,
    domain: Option<&DomainModel>,
    entities: &[EntityId],
    cfg: &L2qConfig,
    threads: usize,
) -> IdealBounds {
    let threads = threads.max(1).min(entities.len().max(1));
    let chunk = entities.len().div_ceil(threads);
    let chunks: Vec<&[EntityId]> = entities.chunks(chunk.max(1)).collect();
    let partials: Vec<IdealBounds> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|slice| scope.spawn(move |_| ideal_bounds(ctx, domain, slice, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");

    let mut map = HashMap::new();
    for p in partials {
        map.extend(p.map);
    }
    IdealBounds { map }
}

/// Aggregated per-iteration statistics of one method.
#[derive(Clone, Debug, Serialize)]
pub struct IterStats {
    /// Number of queries fired (excluding the seed).
    pub n_queries: usize,
    /// Mean raw metrics across pairs.
    pub raw: Metrics,
    /// Mean normalized metrics (method / ideal, component-wise).
    pub normalized: Metrics,
    /// Number of (entity, aspect) pairs contributing.
    pub pairs: usize,
}

/// Full evaluation result of one method.
#[derive(Clone, Debug, Serialize)]
pub struct MethodEval {
    /// Selector display name.
    pub name: String,
    /// Stats for 1..=n_queries fired queries (index 0 ↦ 1 query).
    pub per_iter: Vec<IterStats>,
    /// Total selection wall-clock across all runs.
    #[serde(skip)]
    pub selection_time: Duration,
    /// Number of harvest runs executed.
    pub runs: usize,
}

impl MethodEval {
    /// Stats after `n` queries (1-based).
    pub fn at(&self, n_queries: usize) -> Option<&IterStats> {
        self.per_iter.get(n_queries.checked_sub(1)?)
    }

    /// Mean selection time per query selection.
    pub fn selection_time_per_query(&self) -> Duration {
        let total_selections: u32 = (self.runs * self.per_iter.len()).max(1) as u32;
        self.selection_time / total_selections
    }
}

/// Evaluate a selector over all (entity, aspect) pairs of `entities`,
/// restricted to `aspects` if given. Normalization uses `bounds` (pairs
/// without a bound are skipped entirely, matching the paper's
/// per-entity normalization).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_selector(
    ctx: &EvalContext<'_>,
    domain: Option<&DomainModel>,
    entities: &[EntityId],
    aspects: Option<&[AspectId]>,
    selector: &mut dyn QuerySelector,
    cfg: &L2qConfig,
    bounds: &IdealBounds,
) -> MethodEval {
    let harvester = Harvester {
        corpus: ctx.corpus,
        engine: ctx.engine,
        oracle: ctx.oracle,
        domain,
        cfg: *cfg,
    };
    let aspect_list: Vec<AspectId> = match aspects {
        Some(list) => list.to_vec(),
        None => ctx.corpus.aspects().collect(),
    };

    let mut raw_acc: Vec<MetricsAccumulator> = vec![MetricsAccumulator::new(); cfg.n_queries];
    let mut norm_acc: Vec<MetricsAccumulator> = vec![MetricsAccumulator::new(); cfg.n_queries];
    let mut selection_time = Duration::ZERO;
    let mut runs = 0usize;

    for &e in entities {
        for &a in &aspect_list {
            // Skip pairs without an ideal bound (no relevant pages).
            if bounds.get(e, a, 0).is_none() {
                continue;
            }
            let rec = harvester.run(e, a, selector);
            selection_time += rec.selection_time;
            runs += 1;
            for i in 1..=cfg.n_queries {
                let Some(m) = page_metrics(ctx.corpus, ctx.oracle, e, a, &rec.cumulative(i)) else {
                    continue;
                };
                raw_acc[i - 1].push(m);
                if let Some(ideal) = bounds.get(e, a, i) {
                    norm_acc[i - 1].push(normalize(m, ideal));
                }
            }
        }
    }

    let per_iter = (1..=cfg.n_queries)
        .map(|i| IterStats {
            n_queries: i,
            raw: raw_acc[i - 1].mean(),
            normalized: norm_acc[i - 1].mean(),
            pairs: norm_acc[i - 1].count(),
        })
        .collect();

    MethodEval {
        name: selector.name(),
        per_iter,
        selection_time,
        runs,
    }
}

/// Component-wise normalization against the ideal. A zero ideal component
/// means the pair is degenerate at this budget (even the cheating bound
/// achieved nothing) — every method is credited 1.0 there rather than
/// dividing by zero.
fn normalize(m: Metrics, ideal: Metrics) -> Metrics {
    let div = |x: f64, d: f64| if d > 1e-12 { x / d } else { 1.0 };
    Metrics {
        precision: div(m.precision, ideal.precision),
        recall: div(m.recall, ideal.recall),
        f1: div(m.f1, ideal.f1),
    }
}

/// Parallel variant of [`evaluate_selector`]: splits the entities across
/// worker threads, each with its own selector from `factory`, and merges
/// the per-chunk statistics. Results are identical to the sequential
/// version (selectors are reset per harvest run; entity runs are
/// independent), modulo the aggregation being order-insensitive.
///
/// This is the paper's own efficiency note made concrete: "they can be
/// further improved by various techniques, such as parallelizing over
/// entities".
#[allow(clippy::too_many_arguments)]
pub fn evaluate_selector_parallel(
    ctx: &EvalContext<'_>,
    domain: Option<&DomainModel>,
    entities: &[EntityId],
    aspects: Option<&[AspectId]>,
    factory: &(dyn Fn() -> Box<dyn QuerySelector> + Sync),
    cfg: &L2qConfig,
    bounds: &IdealBounds,
    threads: usize,
) -> MethodEval {
    let threads = threads.max(1).min(entities.len().max(1));
    let chunk = entities.len().div_ceil(threads);
    let chunks: Vec<&[EntityId]> = entities.chunks(chunk.max(1)).collect();

    let partials: Vec<MethodEval> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|slice| {
                scope.spawn(move |_| {
                    let mut selector = factory();
                    evaluate_selector(ctx, domain, slice, aspects, selector.as_mut(), cfg, bounds)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");

    merge_method_evals(&partials)
}

/// Merge per-chunk [`MethodEval`]s (pair-count weighted).
pub fn merge_method_evals(parts: &[MethodEval]) -> MethodEval {
    assert!(!parts.is_empty(), "nothing to merge");
    let n_iters = parts.iter().map(|e| e.per_iter.len()).max().unwrap_or(0);
    let mut per_iter = Vec::with_capacity(n_iters);
    for i in 0..n_iters {
        let mut raw = MetricsAccumulator::new();
        let mut norm = MetricsAccumulator::new();
        let mut pairs = 0usize;
        for e in parts {
            if let Some(it) = e.per_iter.get(i) {
                for _ in 0..it.pairs {
                    raw.push(it.raw);
                    norm.push(it.normalized);
                }
                pairs += it.pairs;
            }
        }
        per_iter.push(IterStats {
            n_queries: i + 1,
            raw: raw.mean(),
            normalized: norm.mean(),
            pairs,
        });
    }
    MethodEval {
        name: parts[0].name.clone(),
        per_iter,
        selection_time: parts.iter().map(|e| e.selection_time).sum(),
        runs: parts.iter().map(|e| e.runs).sum(),
    }
}

/// Cross-validate the seed recall parameter r0 on the validation entities:
/// pick, from `grid`, the value maximizing the mean raw metric selected by
/// `score` (paper: "We selected the seed query parameter r0 … by cross
/// validating on the validation set").
#[allow(clippy::too_many_arguments)]
pub fn validate_r0(
    ctx: &EvalContext<'_>,
    domain: Option<&DomainModel>,
    validation: &[EntityId],
    make_selector: &mut dyn FnMut() -> Box<dyn QuerySelector>,
    cfg: &L2qConfig,
    grid: &[f64],
    score: fn(&Metrics) -> f64,
) -> f64 {
    let mut best = (f64::MIN, cfg.r0);
    for &r0 in grid {
        let trial_cfg = cfg.with_r0(r0);
        let harvester = Harvester {
            corpus: ctx.corpus,
            engine: ctx.engine,
            oracle: ctx.oracle,
            domain,
            cfg: trial_cfg,
        };
        let mut acc = MetricsAccumulator::new();
        let mut selector = make_selector();
        for &e in validation {
            for a in ctx.corpus.aspects() {
                let rec = harvester.run(e, a, selector.as_mut());
                if let Some(m) = page_metrics(ctx.corpus, ctx.oracle, e, a, &rec.gathered) {
                    acc.push(m);
                }
            }
        }
        let s = score(&acc.mean());
        if s > best.0 {
            best = (s, r0);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_baselines::RndSelector;
    use l2q_core::{learn_domain, L2qSelector};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    struct Fixture {
        corpus: std::sync::Arc<Corpus>,
        oracle: RelevanceOracle,
    }

    fn fixture() -> Fixture {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        Fixture { corpus, oracle }
    }

    #[test]
    fn bounds_and_evaluation_have_consistent_shapes() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let ctx = EvalContext {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
        };
        let cfg = L2qConfig::default();
        let entities: Vec<EntityId> = f.corpus.entity_ids().take(3).collect();
        let bounds = ideal_bounds(&ctx, None, &entities, &cfg);
        assert!(!bounds.is_empty());

        let mut sel = RndSelector::new(1);
        let eval = evaluate_selector(&ctx, None, &entities, None, &mut sel, &cfg, &bounds);
        assert_eq!(eval.name, "RND");
        assert_eq!(eval.per_iter.len(), cfg.n_queries);
        for (i, it) in eval.per_iter.iter().enumerate() {
            assert_eq!(it.n_queries, i + 1);
            assert!(it.pairs > 0);
            assert!(it.raw.precision >= 0.0 && it.raw.precision <= 1.0);
            assert!(it.normalized.recall >= 0.0);
        }
        assert!(eval.at(1).is_some());
        assert!(eval.at(99).is_none());
    }

    #[test]
    fn ideal_normalizes_to_one_against_itself() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let ctx = EvalContext {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
        };
        let cfg = L2qConfig::default();
        let entities: Vec<EntityId> = f.corpus.entity_ids().take(2).collect();
        let bounds = ideal_bounds(&ctx, None, &entities, &cfg);
        let mut sel = IdealSelector::new();
        let eval = evaluate_selector(&ctx, None, &entities, None, &mut sel, &cfg, &bounds);
        for it in &eval.per_iter {
            assert!(
                (it.normalized.f1 - 1.0).abs() < 1e-9,
                "ideal vs ideal must be 1.0, got {}",
                it.normalized.f1
            );
        }
    }

    #[test]
    fn normalized_scores_do_not_exceed_one_for_f_product_bound() {
        // Not a theorem (the ideal greedily optimizes precision×coverage,
        // not F), but on tiny corpora methods should stay at or below ~1.
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let ctx = EvalContext {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
        };
        let cfg = L2qConfig::default();
        let entities: Vec<EntityId> = f.corpus.entity_ids().take(3).collect();
        let bounds = ideal_bounds(&ctx, None, &entities, &cfg);
        let mut sel = RndSelector::new(2);
        let eval = evaluate_selector(&ctx, None, &entities, None, &mut sel, &cfg, &bounds);
        for it in &eval.per_iter {
            assert!(it.normalized.f1 <= 1.5, "suspicious normalization");
        }
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let ctx = EvalContext {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
        };
        let cfg = L2qConfig::default();
        let entities: Vec<EntityId> = f.corpus.entity_ids().take(4).collect();
        let bounds = ideal_bounds(&ctx, None, &entities, &cfg);

        let mut sequential_sel = L2qSelector::precision_templates();
        let seq = evaluate_selector(
            &ctx,
            None,
            &entities,
            None,
            &mut sequential_sel,
            &cfg,
            &bounds,
        );
        let par = evaluate_selector_parallel(
            &ctx,
            None,
            &entities,
            None,
            &|| Box::new(L2qSelector::precision_templates()),
            &cfg,
            &bounds,
            3,
        );
        assert_eq!(seq.runs, par.runs);
        for (a, b) in seq.per_iter.iter().zip(&par.per_iter) {
            assert_eq!(a.pairs, b.pairs);
            assert!((a.normalized.f1 - b.normalized.f1).abs() < 1e-12);
            assert!((a.raw.precision - b.raw.precision).abs() < 1e-12);
        }
    }

    #[test]
    fn r0_validation_returns_grid_value() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let ctx = EvalContext {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
        };
        let cfg = L2qConfig::default();
        let domain_entities: Vec<EntityId> = f.corpus.entity_ids().take(3).collect();
        let dm = learn_domain(&f.corpus, &domain_entities, &f.oracle, &cfg);
        let validation: Vec<EntityId> = f.corpus.entity_ids().skip(4).take(1).collect();
        let grid = [0.2, 0.6];
        let r0 = validate_r0(
            &ctx,
            Some(&dm),
            &validation,
            &mut || Box::new(L2qSelector::l2qr()),
            &cfg,
            &grid,
            |m| m.recall,
        );
        assert!(grid.contains(&r0));
    }
}
