//! Plain-text table/series rendering for the figure binaries, plus JSON
//! export so EXPERIMENTS.md can embed machine-readable results.

use crate::runner::MethodEval;
use serde::Serialize;

/// A rendered experiment: a title and rows of `(label, series)` values.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Row label (method name, aspect name, …).
    pub label: String,
    /// One value per x-axis point.
    pub values: Vec<f64>,
}

/// Render a fixed-width table: header of x-labels, one row per series.
pub fn render_table(title: &str, x_labels: &[String], rows: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap_or(8);
    out.push_str(&format!("{:label_w$}", ""));
    for x in x_labels {
        out.push_str(&format!(" {x:>9}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:label_w$}", row.label));
        for v in &row.values {
            out.push_str(&format!(" {v:>9.4}"));
        }
        out.push('\n');
    }
    out
}

/// Extract a per-iteration normalized metric series from a method eval.
pub fn metric_series(eval: &MethodEval, metric: MetricKind) -> Series {
    Series {
        label: eval.name.clone(),
        values: eval
            .per_iter
            .iter()
            .map(|it| match metric {
                MetricKind::Precision => it.normalized.precision,
                MetricKind::Recall => it.normalized.recall,
                MetricKind::F1 => it.normalized.f1,
            })
            .collect(),
    }
}

/// Which metric to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Normalized precision.
    Precision,
    /// Normalized recall.
    Recall,
    /// Normalized F-score.
    F1,
}

/// Serialize any result to pretty JSON (for EXPERIMENTS.md appendices).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serializable result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows_and_columns() {
        let rows = vec![
            Series {
                label: "L2QP".into(),
                values: vec![0.5, 0.6],
            },
            Series {
                label: "LM".into(),
                values: vec![0.4, 0.45],
            },
        ];
        let t = render_table("Fig X", &["2".into(), "3".into()], &rows);
        assert!(t.contains("Fig X"));
        assert!(t.contains("L2QP"));
        assert!(t.contains("0.6000"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn json_round_trips() {
        let s = Series {
            label: "x".into(),
            values: vec![1.0],
        };
        let j = to_json(&s);
        assert!(j.contains("\"label\""));
    }
}
