//! # l2q-eval — the paper's evaluation methodology
//!
//! * [`metrics`] — actual precision/recall/F of gathered pages per
//!   (entity, aspect).
//! * [`ideal`] — the infeasible ideal-solution selector used as the
//!   normalization upper bound.
//! * [`protocol`] — the split protocol: half the entities become domain
//!   entities, the rest split into validation/test, repeated randomly.
//! * [`runner`] — harvest every test pair with a method, normalize
//!   against the ideal, cross-validate r0 on the validation split.
//! * [`report`] — table rendering and JSON export for the figure
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ideal;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod runner;

pub use ideal::IdealSelector;
pub use metrics::{page_metrics, Metrics, MetricsAccumulator};
pub use protocol::{make_splits, Split};
pub use report::{metric_series, render_table, to_json, MetricKind, Series};
pub use runner::{
    evaluate_selector, evaluate_selector_parallel, ideal_bounds, ideal_bounds_parallel,
    merge_method_evals, validate_r0, EvalContext, IdealBounds, IterStats, MethodEval,
};
