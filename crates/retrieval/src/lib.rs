//! # l2q-retrieval — the search-engine substrate
//!
//! An inverted index plus a query-likelihood language model with Dirichlet
//! smoothing — the same retrieval model the paper's own experiments use
//! ("we used a language model with Dirichlet smoothing as the search
//! engine", Sect. VI-A) — and a [`SearchEngine`] facade that applies the
//! paper's seed-query entity focusing and returns the top-5 pages.
//!
//! ```
//! use std::sync::Arc;
//! use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
//! use l2q_retrieval::SearchEngine;
//! let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
//! let engine = SearchEngine::with_defaults(corpus.clone());
//! let e = EntityId(0);
//! let seed = corpus.seed_query(e).to_vec();
//! let pages = engine.search(e, &seed);
//! assert!(!pages.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod index;
pub mod lm;

pub use cache::{CachedSearch, SearchBackend, ShardedQueryCache};
pub use engine::{EngineConfig, QueryCache, SearchEngine, SeedMode};
pub use index::{DocId, InvertedIndex, Posting};
pub use lm::{doc_prob, score_doc, top_k, DirichletParams};
