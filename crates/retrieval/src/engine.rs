//! The search engine facade over a frozen corpus.
//!
//! "For each query, pages in the corpus are ranked and the top 5 are
//! returned" (paper Sect. VI-A). The engine supports the paper's entity
//! focusing: the seed query "uniquely identifies" the target entity and "is
//! appended to subsequent queries when submitting them to the search
//! engine, in order to focus on the target entity". Two modes implement
//! this:
//!
//! * [`SeedMode::HardFilter`] (default) — retrieval is scoped to the target
//!   entity's corpus slice, the idealization the paper's evaluation uses
//!   (its corpus is organized per entity).
//! * [`SeedMode::SoftAppend`] — seed words are merged into the query and
//!   retrieval runs over the whole corpus; other entities' pages can leak
//!   into results, as on a real search engine.

use crate::index::{DocId, InvertedIndex};
use crate::lm::{top_k, DirichletParams};
use l2q_corpus::{Corpus, EntityId, PageId};
use l2q_text::{Bow, Sym};
use std::collections::HashMap;
use std::sync::Arc;

/// How the seed query focuses retrieval on the target entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Retrieve only from the target entity's pages.
    #[default]
    HardFilter,
    /// Append seed words to the query and search the whole corpus.
    SoftAppend,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Results per query (paper: 5).
    pub top_k: usize,
    /// Dirichlet smoothing parameters.
    pub dirichlet: DirichletParams,
    /// Entity-focusing mode.
    pub seed_mode: SeedMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            top_k: 5,
            dirichlet: DirichletParams::default(),
            seed_mode: SeedMode::default(),
        }
    }
}

/// A search engine over one corpus: global index plus one per entity.
///
/// The engine holds its corpus behind an [`Arc`], so a built engine is a
/// self-contained, immutable, `Send + Sync` value: the serving layer wraps
/// one engine in an `Arc` and shares it across every session worker.
pub struct SearchEngine {
    corpus: Arc<Corpus>,
    cfg: EngineConfig,
    global: InvertedIndex,
    per_entity: Vec<InvertedIndex>,
    /// First PageId of each entity slice (to map local DocIds back).
    entity_base: Vec<u32>,
}

impl SearchEngine {
    /// Build the engine (indexes every page once). Accepts anything that
    /// converts into a shared corpus handle: an owned [`Corpus`] or an
    /// existing `Arc<Corpus>` (pass `corpus.clone()` to keep your handle).
    pub fn new(corpus: impl Into<Arc<Corpus>>, cfg: EngineConfig) -> Self {
        let corpus = corpus.into();
        let global = InvertedIndex::build(corpus.pages.iter().map(|p| p.bow()));
        let mut per_entity = Vec::with_capacity(corpus.entities.len());
        let mut entity_base = Vec::with_capacity(corpus.entities.len());
        for e in corpus.entity_ids() {
            let pages = corpus.pages_of(e);
            entity_base.push(pages.first().map(|p| p.id.0).unwrap_or(0));
            per_entity.push(InvertedIndex::build(pages.iter().map(|p| p.bow())));
        }
        Self {
            corpus,
            cfg,
            global,
            per_entity,
            entity_base,
        }
    }

    /// Build with default configuration.
    pub fn with_defaults(corpus: impl Into<Arc<Corpus>>) -> Self {
        Self::new(corpus, EngineConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The corpus this engine serves.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// A shared handle to the corpus (cheap to clone).
    pub fn corpus_arc(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// Fire `query` for `entity`, returning up to `top_k` page ids, best
    /// first. The seed query is applied per the configured [`SeedMode`].
    pub fn search(&self, entity: EntityId, query: &[Sym]) -> Vec<PageId> {
        fn queries_total() -> &'static std::sync::Arc<l2q_obs::Counter> {
            static C: std::sync::OnceLock<std::sync::Arc<l2q_obs::Counter>> =
                std::sync::OnceLock::new();
            C.get_or_init(|| l2q_obs::global().counter("retrieval_queries_total"))
        }
        queries_total().inc();
        let mut span = l2q_obs::span!("retrieval_search");
        let results = match self.cfg.seed_mode {
            SeedMode::HardFilter => {
                let idx = &self.per_entity[entity.index()];
                let bow = Bow::from_words(query);
                let base = self.entity_base[entity.index()];
                top_k(idx, self.cfg.dirichlet, &bow, self.cfg.top_k)
                    .into_iter()
                    .map(|(d, _)| PageId(base + d.0))
                    .collect::<Vec<PageId>>()
            }
            SeedMode::SoftAppend => {
                let mut words: Vec<Sym> = query.to_vec();
                words.extend_from_slice(self.corpus.seed_query(entity));
                let bow = Bow::from_words(&words);
                top_k(&self.global, self.cfg.dirichlet, &bow, self.cfg.top_k)
                    .into_iter()
                    .map(|(d, _)| PageId(d.0))
                    .collect::<Vec<PageId>>()
            }
        };
        if results.is_empty() {
            // Surfaces in the traced span: a fired query that matched
            // nothing is the usual culprit behind a stalling harvest.
            span.set_status("empty");
        }
        results
    }

    /// The entity-local index (used by utilities that need statistics over
    /// the entity's slice, e.g. the AQ baseline).
    pub fn entity_index(&self, entity: EntityId) -> &InvertedIndex {
        &self.per_entity[entity.index()]
    }

    /// The global index.
    pub fn global_index(&self) -> &InvertedIndex {
        &self.global
    }

    /// Map an entity-local [`DocId`] to its corpus [`PageId`].
    pub fn to_page_id(&self, entity: EntityId, d: DocId) -> PageId {
        PageId(self.entity_base[entity.index()] + d.0)
    }
}

/// A memoizing cache for fired queries, keyed by `(entity, query words)`.
///
/// The harvest loop and the ideal-solution oracle both fire many queries;
/// the cache also counts fires, which the timing experiment (Fig. 14) uses
/// to model fetch cost.
#[derive(Default, Debug)]
pub struct QueryCache {
    map: HashMap<(EntityId, Box<[Sym]>), Vec<PageId>>,
    fires: u64,
    hits: u64,
}

impl QueryCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Search through the cache.
    pub fn search(
        &mut self,
        engine: &SearchEngine,
        entity: EntityId,
        query: &[Sym],
    ) -> Vec<PageId> {
        let key = (entity, query.to_vec().into_boxed_slice());
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return hit.clone();
        }
        self.fires += 1;
        let res = engine.search(entity, query);
        self.map.insert(key, res.clone());
        res
    }

    /// Number of engine fires (cache misses).
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Number of cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn corpus() -> Arc<Corpus> {
        Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap())
    }

    #[test]
    fn hard_filter_returns_only_target_entity_pages() {
        let c = corpus();
        let engine = SearchEngine::with_defaults(c.clone());
        for e in c.entity_ids() {
            let seed = c.seed_query(e).to_vec();
            let res = engine.search(e, &seed);
            assert!(!res.is_empty(), "seed query must retrieve pages");
            for p in res {
                assert_eq!(c.page(p).entity, e);
            }
        }
    }

    #[test]
    fn results_respect_top_k() {
        let c = corpus();
        let engine = SearchEngine::with_defaults(c.clone());
        let e = EntityId(0);
        let seed = c.seed_query(e).to_vec();
        let res = engine.search(e, &seed);
        assert!(res.len() <= engine.config().top_k);
    }

    #[test]
    fn soft_append_searches_globally() {
        let c = corpus();
        let engine = SearchEngine::new(
            c.clone(),
            EngineConfig {
                seed_mode: SeedMode::SoftAppend,
                ..Default::default()
            },
        );
        let e = EntityId(0);
        let seed = c.seed_query(e).to_vec();
        let res = engine.search(e, &seed);
        assert!(!res.is_empty());
        // Seed contains the unique entity name, so the top result should
        // still be the target entity's page.
        assert_eq!(c.page(res[0]).entity, e);
    }

    #[test]
    fn nonsense_query_retrieves_nothing() {
        let c = corpus();
        let engine = SearchEngine::with_defaults(c);
        // A symbol id beyond anything interned.
        let res = engine.search(EntityId(0), &[Sym(10_000_000)]);
        assert!(res.is_empty());
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let c = corpus();
        let engine = SearchEngine::with_defaults(c.clone());
        let mut cache = QueryCache::new();
        let e = EntityId(0);
        let seed = c.seed_query(e).to_vec();
        let a = cache.search(&engine, e, &seed);
        let b = cache.search(&engine, e, &seed);
        assert_eq!(a, b);
        assert_eq!(cache.fires(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn doc_id_mapping_round_trips() {
        let c = corpus();
        let engine = SearchEngine::with_defaults(c.clone());
        let e = EntityId(1);
        let first = c.pages_of(e)[0].id;
        assert_eq!(engine.to_page_id(e, DocId(0)), first);
    }
}
