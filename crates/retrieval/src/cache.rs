//! Concurrent retrieval caching for the serving layer.
//!
//! A harvest service runs many sessions against one shared, immutable
//! [`SearchEngine`]. Distinct sessions over the same entity re-fire many of
//! the same queries (seed queries, high-utility templates), so retrieval
//! results are memoized in a sharded LRU map: the key hash picks a shard,
//! each shard is an independently locked LRU, and hit/miss counters are
//! lock-free atomics surfaced by the server's `stats` endpoint.

use crate::engine::SearchEngine;
use l2q_corpus::{EntityId, PageId};
use l2q_text::Sym;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Anything that can answer a query for an entity with top-k pages.
///
/// The harvest loop only needs this one operation when it fires the
/// selected query, so the serving layer can interpose a cache (or, in a
/// real deployment, a remote search API) without the core crate knowing.
pub trait SearchBackend: Send + Sync {
    /// Fire `query` for `entity`, returning up to top-k page ids, best
    /// first.
    fn search(&self, entity: EntityId, query: &[Sym]) -> Vec<PageId>;
}

impl SearchBackend for SearchEngine {
    fn search(&self, entity: EntityId, query: &[Sym]) -> Vec<PageId> {
        SearchEngine::search(self, entity, query)
    }
}

type Key = (EntityId, Box<[Sym]>);

/// One independently locked LRU shard: value map plus a recency index
/// (logical tick → key) for O(log n) eviction.
#[derive(Default)]
struct Shard {
    map: HashMap<Key, (Vec<PageId>, u64)>,
    recency: BTreeMap<u64, Key>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &Key) -> Option<Vec<PageId>> {
        self.tick += 1;
        let tick = self.tick;
        let (value, old_tick) = self.map.get_mut(key)?;
        let value = value.clone();
        self.recency.remove(old_tick);
        *old_tick = tick;
        self.recency.insert(tick, key.clone());
        Some(value)
    }

    fn insert(&mut self, key: Key, value: Vec<PageId>, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick)) = self.map.get(&key) {
            self.recency.remove(old_tick);
        }
        self.map.insert(key.clone(), (value, tick));
        self.recency.insert(tick, key);
        while self.map.len() > capacity {
            let (_, oldest) = self.recency.pop_first().expect("recency tracks map");
            self.map.remove(&oldest);
        }
    }
}

/// A sharded LRU cache of retrieval results, shared by all sessions.
///
/// `&self` throughout: safe to call concurrently from any number of worker
/// threads. Lock scope is a single shard, so sessions querying different
/// entities rarely contend.
pub struct ShardedQueryCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    // Process-global mirrors: the per-instance atomics above stay the
    // exact source for this cache's own stats; these feed the shared
    // metrics registry (`retrieval_cache_{hits,misses}_total`).
    global_hits: std::sync::Arc<l2q_obs::Counter>,
    global_misses: std::sync::Arc<l2q_obs::Counter>,
}

impl ShardedQueryCache {
    /// Create a cache with `shards` locks and `capacity` total entries
    /// (split evenly across shards; both are clamped to at least 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: (capacity.max(1)).div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            global_hits: l2q_obs::global().counter("retrieval_cache_hits_total"),
            global_misses: l2q_obs::global().counter("retrieval_cache_misses_total"),
        }
    }

    fn shard_for(&self, key: &Key) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `(entity, query)`; on a miss, compute via `engine.search`
    /// and remember the result.
    pub fn search(&self, engine: &SearchEngine, entity: EntityId, query: &[Sym]) -> Vec<PageId> {
        self.get_or_compute(entity, query, || engine.search(entity, query))
    }

    /// Generic form of [`ShardedQueryCache::search`]: `compute` runs only
    /// on a miss, outside any shard lock (concurrent misses on one key may
    /// compute twice; last write wins, which is harmless because retrieval
    /// is deterministic).
    pub fn get_or_compute(
        &self,
        entity: EntityId,
        query: &[Sym],
        compute: impl FnOnce() -> Vec<PageId>,
    ) -> Vec<PageId> {
        let key: Key = (entity, query.to_vec().into_boxed_slice());
        if let Some(hit) = self
            .shard_for(&key)
            .lock()
            .expect("cache poisoned")
            .touch(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.global_hits.inc();
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.global_misses.inc();
        let value = compute();
        self.shard_for(&key).lock().expect("cache poisoned").insert(
            key,
            value.clone(),
            self.per_shard_capacity,
        );
        value
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (engine fires) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Entries currently cached (sums shard sizes; a point-in-time value).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`SearchBackend`] that routes an engine through a shared cache — the
/// composition the service's session workers use.
pub struct CachedSearch<'a> {
    engine: &'a SearchEngine,
    cache: &'a ShardedQueryCache,
}

impl<'a> CachedSearch<'a> {
    /// Pair an engine with a cache.
    pub fn new(engine: &'a SearchEngine, cache: &'a ShardedQueryCache) -> Self {
        Self { engine, cache }
    }
}

impl SearchBackend for CachedSearch<'_> {
    fn search(&self, entity: EntityId, query: &[Sym]) -> Vec<PageId> {
        self.cache.search(self.engine, entity, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig};
    use std::sync::Arc;

    fn engine() -> SearchEngine {
        let c: Corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        SearchEngine::with_defaults(c)
    }

    #[test]
    fn cache_hits_after_first_fire_and_matches_engine() {
        let engine = engine();
        let cache = ShardedQueryCache::new(4, 64);
        let e = EntityId(0);
        let seed = engine.corpus().seed_query(e).to_vec();
        let direct = engine.search(e, &seed);
        let first = cache.search(&engine, e, &seed);
        let second = cache.search(&engine, e, &seed);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(cache.hit_rate() > 0.49 && cache.hit_rate() < 0.51);
    }

    #[test]
    fn lru_evicts_oldest_within_capacity() {
        let engine = engine();
        // Single shard, capacity 2: third distinct key evicts the first.
        let cache = ShardedQueryCache::new(1, 2);
        let e = EntityId(0);
        let queries: Vec<Vec<Sym>> = (0..3).map(|i| vec![Sym(i)]).collect();
        for q in &queries {
            cache.search(&engine, e, q);
        }
        assert_eq!(cache.len(), 2);
        cache.search(&engine, e, &queries[0]); // evicted: miss again
        assert_eq!(cache.misses(), 4);
        cache.search(&engine, e, &queries[2]); // still resident: hit
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn touch_refreshes_recency() {
        let engine = engine();
        let cache = ShardedQueryCache::new(1, 2);
        let e = EntityId(0);
        let (a, b, c) = (vec![Sym(1)], vec![Sym(2)], vec![Sym(3)]);
        cache.search(&engine, e, &a);
        cache.search(&engine, e, &b);
        cache.search(&engine, e, &a); // refresh a; b is now LRU
        cache.search(&engine, e, &c); // evicts b
        assert_eq!(cache.misses(), 3);
        cache.search(&engine, e, &a);
        assert_eq!(cache.hits(), 2, "a must survive the eviction");
        cache.search(&engine, e, &b);
        assert_eq!(cache.misses(), 4, "b must have been evicted");
    }

    #[test]
    fn concurrent_lookups_count_consistently() {
        let engine = Arc::new(engine());
        let cache = Arc::new(ShardedQueryCache::new(8, 256));
        let threads = 4;
        let per_thread = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = engine.clone();
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let q = vec![Sym(((t + i) % 7) as u32)];
                        cache.search(&engine, EntityId(0), &q);
                    }
                });
            }
        });
        let total = cache.hits() + cache.misses();
        assert_eq!(total, (threads * per_thread) as u64);
        // 7 distinct keys, 200 lookups: overwhelmingly hits.
        assert!(cache.hits() >= total - 7 * threads as u64);
    }

    #[test]
    fn cached_search_backend_matches_engine() {
        let engine = engine();
        let cache = ShardedQueryCache::new(2, 32);
        let backend = CachedSearch::new(&engine, &cache);
        let e = EntityId(1);
        let seed = engine.corpus().seed_query(e).to_vec();
        assert_eq!(
            SearchBackend::search(&backend, e, &seed),
            engine.search(e, &seed)
        );
        assert_eq!(cache.misses(), 1);
    }
}
