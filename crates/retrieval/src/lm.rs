//! Query-likelihood language model with Dirichlet smoothing.
//!
//! The paper's experimental search engine is exactly this: "we used a
//! language model with Dirichlet smoothing \[29\] as the search engine"
//! (Sect. VI-A, citing Zhai & Lafferty). For a query q and document d,
//!
//! ```text
//! score(q, d) = Σ_{w ∈ q} c(w, q) · log( (tf(w,d) + μ·p(w|C)) / (|d| + μ) )
//! ```
//!
//! where `p(w|C)` is the collection language model and μ the Dirichlet
//! prior mass.

use crate::index::{DocId, InvertedIndex};
use l2q_text::{Bow, Sym};

/// Dirichlet-smoothing parameters.
#[derive(Clone, Copy, Debug)]
pub struct DirichletParams {
    /// Dirichlet prior mass μ. The classic ad-hoc default is 2000 for
    /// full-length web documents; our synthetic pages are short (tens of
    /// tokens), so the crate default is smaller.
    pub mu: f64,
}

impl Default for DirichletParams {
    fn default() -> Self {
        Self { mu: 100.0 }
    }
}

/// Score one document for a query under the Dirichlet-smoothed QL model.
///
/// Unseen query terms (zero collection frequency) are skipped: with a
/// maximum-likelihood collection model their smoothed probability is zero
/// for *every* document, so they cannot affect ranking.
pub fn score_doc(index: &InvertedIndex, params: DirichletParams, query: &Bow, d: DocId) -> f64 {
    let dl = index.doc_len(d) as f64;
    let mut score = 0.0;
    for (w, qtf) in query.iter() {
        let pc = index.collection_prob(w);
        if pc == 0.0 {
            continue;
        }
        let tf = index.tf(w, d) as f64;
        let p = (tf + params.mu * pc) / (dl + params.mu);
        score += f64::from(qtf) * p.ln();
    }
    score
}

/// Rank documents matching at least one query term and return the top-k
/// `(doc, score)` pairs, best first. Ties break by `DocId` (deterministic).
///
/// OR semantics with a match requirement mirror a real keyword engine: a
/// query whose terms appear nowhere retrieves nothing, rather than an
/// arbitrary k documents ranked purely by the background model.
pub fn top_k(
    index: &InvertedIndex,
    params: DirichletParams,
    query: &Bow,
    k: usize,
) -> Vec<(DocId, f64)> {
    if k == 0 || query.is_empty() {
        return Vec::new();
    }
    // Gather candidate docs containing ≥1 query term.
    let mut candidates: Vec<DocId> = Vec::new();
    for (w, _) in query.iter() {
        candidates.extend(index.postings(w).iter().map(|p| p.doc));
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut scored: Vec<(DocId, f64)> = candidates
        .into_iter()
        .map(|d| (d, score_doc(index, params, query, d)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

/// Maximum-likelihood probability of word `w` in a document bag (used by
/// the LM feedback baseline).
pub fn doc_prob(bow: &Bow, w: Sym) -> f64 {
    if bow.is_empty() {
        0.0
    } else {
        f64::from(bow.tf(w)) / bow.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bow(ids: &[u32]) -> Bow {
        let words: Vec<Sym> = ids.iter().copied().map(Sym).collect();
        Bow::from_words(&words)
    }

    fn index() -> InvertedIndex {
        // doc0: heavy in 1; doc1: has 1 once among others; doc2: no 1.
        let docs = [bow(&[1, 1, 1, 2]), bow(&[1, 2, 3, 4]), bow(&[2, 3, 4, 4])];
        InvertedIndex::build(docs.iter())
    }

    #[test]
    fn higher_tf_scores_higher() {
        let idx = index();
        let q = bow(&[1]);
        let p = DirichletParams::default();
        let s0 = score_doc(&idx, p, &q, DocId(0));
        let s1 = score_doc(&idx, p, &q, DocId(1));
        assert!(s0 > s1, "tf=3 doc must beat tf=1 doc: {s0} vs {s1}");
    }

    #[test]
    fn top_k_excludes_docs_without_any_query_term() {
        let idx = index();
        let res = top_k(&idx, DirichletParams::default(), &bow(&[1]), 10);
        let docs: Vec<u32> = res.iter().map(|(d, _)| d.0).collect();
        assert_eq!(docs, [0, 1]);
    }

    #[test]
    fn top_k_truncates_and_orders() {
        let idx = index();
        let res = top_k(&idx, DirichletParams::default(), &bow(&[2]), 2);
        assert_eq!(res.len(), 2);
        assert!(res[0].1 >= res[1].1);
    }

    #[test]
    fn unseen_query_terms_are_ignored() {
        let idx = index();
        let p = DirichletParams::default();
        let with_unseen = score_doc(&idx, p, &bow(&[1, 99]), DocId(0));
        let without = score_doc(&idx, p, &bow(&[1]), DocId(0));
        assert_eq!(with_unseen, without);
    }

    #[test]
    fn fully_unseen_query_retrieves_nothing() {
        let idx = index();
        assert!(top_k(&idx, DirichletParams::default(), &bow(&[99]), 5).is_empty());
        assert!(top_k(&idx, DirichletParams::default(), &Bow::new(), 5).is_empty());
    }

    #[test]
    fn multiword_query_prefers_doc_with_both_terms() {
        let idx = index();
        // Query {1,3}: doc1 has both; doc0 has only 1 (heavily); doc2 only 3.
        let res = top_k(&idx, DirichletParams { mu: 10.0 }, &bow(&[1, 3]), 3);
        assert_eq!(res[0].0, DocId(1), "doc with both terms should rank first");
    }

    #[test]
    fn doc_prob_is_mle() {
        let b = bow(&[1, 1, 2, 3]);
        assert!((doc_prob(&b, Sym(1)) - 0.5).abs() < 1e-12);
        assert_eq!(doc_prob(&Bow::new(), Sym(1)), 0.0);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let docs = [bow(&[5, 6]), bow(&[5, 6])];
        let idx = InvertedIndex::build(docs.iter());
        let res = top_k(&idx, DirichletParams::default(), &bow(&[5]), 2);
        assert_eq!(res[0].0, DocId(0));
        assert_eq!(res[1].0, DocId(1));
    }
}
