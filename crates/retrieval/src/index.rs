//! Inverted index over a set of documents.
//!
//! Documents are word sequences identified by a dense local `DocId`; the
//! engine layers one index over the whole corpus and one per entity slice
//! (the seed query "uniquely identifies" the target entity, so entity-
//! focused retrieval is a hard scope, see `l2q_retrieval::engine`).

use l2q_text::{Bow, Sym};
use std::collections::HashMap;

/// Dense document id local to one index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A posting: document + term frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Term frequency in that document.
    pub tf: u32,
}

/// An immutable inverted index with collection statistics.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<Sym, Vec<Posting>>,
    doc_len: Vec<u64>,
    collection_freq: HashMap<Sym, u64>,
    total_tokens: u64,
}

impl InvertedIndex {
    /// Build an index from documents given as bags-of-words, in `DocId`
    /// order.
    pub fn build<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a Bow>,
    {
        let mut idx = InvertedIndex::default();
        for (i, bow) in docs.into_iter().enumerate() {
            let doc = DocId(i as u32);
            idx.doc_len.push(bow.len());
            idx.total_tokens += bow.len();
            for (w, tf) in bow.iter() {
                idx.postings.entry(w).or_default().push(Posting { doc, tf });
                *idx.collection_freq.entry(w).or_insert(0) += u64::from(tf);
            }
        }
        idx
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Length (token count) of a document.
    pub fn doc_len(&self, d: DocId) -> u64 {
        self.doc_len[d.index()]
    }

    /// Total tokens across the collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Collection frequency of a term.
    pub fn collection_freq(&self, w: Sym) -> u64 {
        self.collection_freq.get(&w).copied().unwrap_or(0)
    }

    /// Document frequency of a term (number of docs containing it).
    pub fn doc_freq(&self, w: Sym) -> usize {
        self.postings.get(&w).map(Vec::len).unwrap_or(0)
    }

    /// The postings list of a term (empty slice if unseen).
    pub fn postings(&self, w: Sym) -> &[Posting] {
        self.postings.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Background (collection) probability of a term with add-nothing
    /// maximum likelihood; 0 for unseen terms.
    pub fn collection_prob(&self, w: Sym) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.collection_freq(w) as f64 / self.total_tokens as f64
        }
    }

    /// Term frequency of `w` in doc `d` (scans the postings list; postings
    /// are in `DocId` order so this is a binary search).
    pub fn tf(&self, w: Sym, d: DocId) -> u32 {
        let list = self.postings(w);
        match list.binary_search_by_key(&d, |p| p.doc) {
            Ok(i) => list[i].tf,
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_text::Bow;

    fn bow(ids: &[u32]) -> Bow {
        let words: Vec<Sym> = ids.iter().copied().map(Sym).collect();
        Bow::from_words(&words)
    }

    fn sample_index() -> InvertedIndex {
        // doc0: {1,1,2}; doc1: {2,3}; doc2: {3,3,3}
        let docs = [bow(&[1, 1, 2]), bow(&[2, 3]), bow(&[3, 3, 3])];
        InvertedIndex::build(docs.iter())
    }

    #[test]
    fn statistics_are_correct() {
        let idx = sample_index();
        assert_eq!(idx.doc_count(), 3);
        assert_eq!(idx.total_tokens(), 8);
        assert_eq!(idx.doc_len(DocId(0)), 3);
        assert_eq!(idx.collection_freq(Sym(1)), 2);
        assert_eq!(idx.collection_freq(Sym(3)), 4);
        assert_eq!(idx.collection_freq(Sym(9)), 0);
        assert_eq!(idx.doc_freq(Sym(2)), 2);
        assert_eq!(idx.doc_freq(Sym(9)), 0);
    }

    #[test]
    fn postings_are_in_doc_order() {
        let idx = sample_index();
        let p = idx.postings(Sym(2));
        assert_eq!(p.len(), 2);
        assert!(p[0].doc < p[1].doc);
        assert_eq!(
            p[0],
            Posting {
                doc: DocId(0),
                tf: 1
            }
        );
    }

    #[test]
    fn tf_lookup() {
        let idx = sample_index();
        assert_eq!(idx.tf(Sym(1), DocId(0)), 2);
        assert_eq!(idx.tf(Sym(1), DocId(1)), 0);
        assert_eq!(idx.tf(Sym(3), DocId(2)), 3);
    }

    #[test]
    fn collection_prob_sums_to_one() {
        let idx = sample_index();
        let total: f64 = [1, 2, 3]
            .into_iter()
            .map(|w| idx.collection_prob(Sym(w)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = InvertedIndex::build(std::iter::empty::<&Bow>());
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.collection_prob(Sym(0)), 0.0);
        assert!(idx.postings(Sym(0)).is_empty());
    }
}
