//! Property-based tests for the retrieval substrate.

use l2q_retrieval::{top_k, DirichletParams, DocId, InvertedIndex};
use l2q_text::{Bow, Sym};
use proptest::prelude::*;

fn arb_docs() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..24, 1..30), 1..12)
}

fn build(docs: &[Vec<u32>]) -> (InvertedIndex, Vec<Bow>) {
    let bows: Vec<Bow> = docs
        .iter()
        .map(|d| d.iter().map(|&i| Sym(i)).collect())
        .collect();
    (InvertedIndex::build(bows.iter()), bows)
}

proptest! {
    /// Index statistics agree with a naive recount.
    #[test]
    fn index_statistics_match_naive(docs in arb_docs()) {
        let (idx, bows) = build(&docs);
        prop_assert_eq!(idx.doc_count(), docs.len());
        let total: u64 = bows.iter().map(Bow::len).sum();
        prop_assert_eq!(idx.total_tokens(), total);
        for w in 0u32..24 {
            let cf: u64 = bows.iter().map(|b| u64::from(b.tf(Sym(w)))).sum();
            prop_assert_eq!(idx.collection_freq(Sym(w)), cf);
            let df = bows.iter().filter(|b| b.contains(Sym(w))).count();
            prop_assert_eq!(idx.doc_freq(Sym(w)), df);
            for (d, b) in bows.iter().enumerate() {
                prop_assert_eq!(idx.tf(Sym(w), DocId(d as u32)), b.tf(Sym(w)));
            }
        }
    }

    /// top_k returns documents in non-increasing score order, includes
    /// only documents containing ≥1 query term, and respects k.
    #[test]
    fn top_k_is_sound(docs in arb_docs(),
                      query in proptest::collection::vec(0u32..24, 1..4),
                      k in 1usize..8) {
        let (idx, bows) = build(&docs);
        let qbow: Bow = query.iter().map(|&i| Sym(i)).collect();
        let res = top_k(&idx, DirichletParams::default(), &qbow, k);
        prop_assert!(res.len() <= k);
        for w in res.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "scores out of order");
        }
        for (d, _) in &res {
            let has_term = query.iter().any(|&w| bows[d.index()].contains(Sym(w)));
            prop_assert!(has_term, "result without any query term");
        }
        // Completeness: if fewer than k results, every unreturned doc has
        // no query term.
        if res.len() < k {
            for (d, b) in bows.iter().enumerate() {
                let has_term = query.iter().any(|&w| b.contains(Sym(w)));
                let returned = res.iter().any(|(r, _)| r.index() == d);
                prop_assert!(!has_term || returned);
            }
        }
    }

    /// Adding an occurrence of a query term to a document never lowers its
    /// score (tf monotonicity of the Dirichlet QL model)... verified by
    /// comparing two single-doc indexes sharing the same collection stats
    /// shape.
    #[test]
    fn score_increases_with_tf(base in proptest::collection::vec(0u32..8, 1..20),
                               w in 0u32..8) {
        let mut more = base.clone();
        more.push(w);
        // Use a shared two-doc collection so the background model is the
        // same for both variants.
        let (idx, _) = build(&[base, more]);
        let qbow: Bow = [Sym(w)].into_iter().collect();
        let res = top_k(&idx, DirichletParams::default(), &qbow, 2);
        if res.len() == 2 {
            // doc1 (with the extra occurrence) must rank first or tie.
            prop_assert!(res[0].0 == DocId(1) || (res[0].1 - res[1].1).abs() < 1e-12);
        }
    }
}
