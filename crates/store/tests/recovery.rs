//! Crash-recovery guarantees, exercised through the public API:
//!
//! * truncating the WAL at **every byte offset** of the final record
//!   recovers exactly the last fully-committed step (torn-tail tolerance);
//! * a corrupt mid-log record (CRC failure) stops replay at the last good
//!   prefix instead of failing the boot;
//! * both paths increment their metrics counters, which the serving stack
//!   surfaces through the `metrics` wire op.

use l2q_core::{PortableCollective, PortableHarvestState};
use l2q_store::{
    apply_record, scan_wal, PortableSession, Replay, SessionStore, StoreConfig, WalRecord,
    SESSION_FORMAT_VERSION,
};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-store-recovery-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_session(id: u64) -> PortableSession {
    PortableSession {
        version: SESSION_FORMAT_VERSION,
        id,
        selector: "l2qbal".into(),
        domain_size: 4,
        n_queries: 16,
        state: PortableHarvestState {
            version: 1,
            entity: 1,
            aspect: "RESEARCH".into(),
            seed_query: vec!["alice".into()],
            seed_results: vec![0, 1],
            iterations: Vec::new(),
            selection_time_nanos: 0,
            finished: None,
            collective: None,
        },
    }
}

fn step(id: u64, i: u64) -> WalRecord {
    WalRecord {
        session: id,
        step_index: i,
        query: vec![format!("word{i}"), "shared".into()],
        new_pages: vec![10 + i as u32, 40 + i as u32],
        selection_time_nanos: 1_000 * (i + 1),
        collective: Some(PortableCollective {
            r_phi: format!("{:016x}", (0.25 + i as f64).to_bits()),
            rstar_phi: format!("{:016x}", (0.5 + i as f64).to_bits()),
        }),
        finished: None,
        genesis: None,
    }
}

/// Torn-tail tolerance: cut the WAL at every byte offset inside the final
/// record and assert recovery lands on the last *fully committed* step,
/// never errors, and never resurrects partial data.
#[test]
fn truncation_at_every_offset_of_final_record_recovers_committed_prefix() {
    let dir = test_dir("every-offset");
    let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();

    const STEPS: u64 = 4;
    let mut s = base_session(1);
    store.snapshot(1, &s).unwrap();
    let recs: Vec<WalRecord> = (0..STEPS).map(|i| step(1, i)).collect();
    store.append_steps(1, &recs).unwrap();
    for r in &recs {
        assert_eq!(apply_record(&mut s, r), Replay::Applied);
    }

    let wal_path = dir.join("sessions/1/wal.log");
    let full = std::fs::read(&wal_path).unwrap();
    let prefix_len = scan_wal(&wal_path).unwrap().valid_bytes as usize;
    assert_eq!(prefix_len, full.len(), "log is fully valid before surgery");
    let last_frame_start = {
        // Re-scan the first STEPS-1 records to find where the final frame begins.
        let mut off = 0usize;
        for _ in 0..STEPS - 1 {
            let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
        }
        off
    };

    for cut in last_frame_start..full.len() {
        // A fresh store per cut so no cached file handles mask the surgery.
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let got = store
            .load(1)
            .unwrap()
            .unwrap_or_else(|| panic!("cut at {cut} must still recover"));
        assert_eq!(
            got.replayed_steps,
            STEPS as usize - 1,
            "cut at {cut}: only fully-committed steps replay"
        );
        let mut expect = base_session(1);
        for r in &recs[..STEPS as usize - 1] {
            apply_record(&mut expect, r);
        }
        assert_eq!(got.session, expect, "cut at {cut}");
    }

    // And the uncut log recovers everything.
    std::fs::write(&wal_path, &full).unwrap();
    let got = SessionStore::open(&dir, StoreConfig::default())
        .unwrap()
        .load(1)
        .unwrap()
        .unwrap();
    assert_eq!(got.replayed_steps, STEPS as usize);
    assert_eq!(got.session, s);
    std::fs::remove_dir_all(&dir).ok();
}

/// CRC corruption mid-log: replay stops at the last good prefix; recovery
/// still succeeds; the failure is counted.
#[test]
fn corrupt_mid_log_record_is_rejected_and_counted() {
    let dir = test_dir("crc-reject");
    let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();

    let mut s = base_session(2);
    store.snapshot(2, &s).unwrap();
    let recs: Vec<WalRecord> = (0..3).map(|i| step(2, i)).collect();
    store.append_steps(2, &recs).unwrap();
    apply_record(&mut s, &recs[0]);

    let wal_path = dir.join("sessions/2/wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    // Flip a payload byte inside the second frame.
    let target = 8 + first_len + 8 + 4;
    bytes[target] ^= 0x20;
    std::fs::write(&wal_path, &bytes).unwrap();

    let crc_before = l2q_obs::global()
        .counter("store_wal_crc_failures_total")
        .get();
    let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
    let got = store.load(2).unwrap().unwrap();
    assert_eq!(got.replayed_steps, 1, "replay stops before the bad frame");
    assert_eq!(got.session, s);
    let crc_after = l2q_obs::global()
        .counter("store_wal_crc_failures_total")
        .get();
    assert_eq!(crc_after, crc_before + 1, "CRC failure counted");
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn-tail discards increment their counter, and recoveries are counted.
#[test]
fn torn_tail_and_recoveries_are_counted() {
    let dir = test_dir("torn-metrics");
    let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();

    let s = base_session(3);
    store.snapshot(3, &s).unwrap();
    store.append_steps(3, &[step(3, 0)]).unwrap();

    let wal_path = dir.join("sessions/3/wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();

    let reg = l2q_obs::global();
    let torn_before = reg.counter("store_torn_tail_discards_total").get();
    let rec_before = reg.counter("store_recoveries_total").get();
    let got = SessionStore::open(&dir, StoreConfig::default())
        .unwrap()
        .load(3)
        .unwrap()
        .unwrap();
    assert_eq!(got.replayed_steps, 0);
    assert_eq!(
        reg.counter("store_torn_tail_discards_total").get(),
        torn_before + 1
    );
    assert_eq!(reg.counter("store_recoveries_total").get(), rec_before + 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A damaged newest snapshot falls back to the previous generation and the
/// WAL tail still replays on top of it.
#[test]
fn damaged_newest_snapshot_falls_back_to_older_generation() {
    let dir = test_dir("snap-fallback");
    let store = SessionStore::open(
        &dir,
        StoreConfig {
            keep_snapshots: 2,
            ..StoreConfig::default()
        },
    )
    .unwrap();

    let mut s = base_session(4);
    store.snapshot(4, &s).unwrap(); // generation 0 (0 steps)
    let older = s.clone();
    store.append_steps(4, &[step(4, 0), step(4, 1)]).unwrap();
    apply_record(&mut s, &step(4, 0));
    apply_record(&mut s, &step(4, 1));
    store.snapshot(4, &s).unwrap(); // generation 1 (2 steps), truncates WAL
    store.append_steps(4, &[step(4, 2)]).unwrap();

    // Vandalize the newest snapshot.
    let newest = dir.join("sessions/4/snap-000000000002.snap");
    let mut bytes = std::fs::read(&newest).unwrap();
    let n = bytes.len();
    bytes[n - 7] ^= 0xff;
    std::fs::write(&newest, &bytes).unwrap();

    let reg = l2q_obs::global();
    let rejects_before = reg.counter("store_snapshot_rejects_total").get();
    let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
    let got = store.load(4).unwrap().unwrap();
    assert_eq!(
        reg.counter("store_snapshot_rejects_total").get(),
        rejects_before + 1
    );

    // Fallback base = older snapshot; WAL now only holds step 2, which is a
    // gap relative to 0 steps, so replay keeps the committed prefix it can
    // prove: the older snapshot itself.
    assert_eq!(got.session, older);
    std::fs::remove_dir_all(&dir).ok();
}
