//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
//! framing every WAL record and snapshot payload. Table-driven, built at
//! compile time; no external dependency.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (standard init/final XOR with `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
