//! The [`SessionStore`]: per-session directories of WAL + snapshots under
//! one data directory, with recovery = newest valid snapshot + WAL tail
//! replay.

use crate::snapshot::{read_snapshot, write_snapshot};
use crate::wal::{scan_wal, FsyncPolicy, Wal, WalRecord};
use crate::{apply_record, store_obs, PortableSession, Replay};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Durability knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// When WAL batches reach the platter.
    pub fsync: FsyncPolicy,
    /// Take a compacting snapshot after this many WAL-logged steps.
    pub snapshot_every: usize,
    /// Snapshot generations to keep (older ones are pruned).
    pub keep_snapshots: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::default(),
            snapshot_every: 8,
            keep_snapshots: 2,
        }
    }
}

/// Per-session open file state.
struct SessionFiles {
    wal: Wal,
    steps_since_snapshot: usize,
    /// Generation token this process owns for the session. Writes are
    /// rejected once the on-disk generation moves past it (another shard
    /// fenced the session away). `0` = the pre-fencing world: no `gen`
    /// file exists and every writer is accepted.
    owned_gen: u64,
}

/// Read the session's on-disk generation token (0 when none exists).
fn read_gen(dir: &Path) -> u64 {
    fs::read_to_string(dir.join("gen"))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist a generation token atomically (tmp + rename).
fn write_gen(dir: &Path, generation: u64, sync: bool) -> io::Result<()> {
    let tmp = dir.join("gen.tmp");
    fs::write(&tmp, generation.to_string())?;
    if sync {
        fs::File::open(&tmp)?.sync_all()?;
    }
    fs::rename(&tmp, dir.join("gen"))
}

/// A session recovered from disk.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The reassembled portable session.
    pub session: PortableSession,
    /// WAL records replayed on top of the snapshot.
    pub replayed_steps: usize,
}

/// The store: one directory per session under `<root>/sessions/`, each
/// holding a WAL and a bounded set of snapshots. All methods take `&self`;
/// per-session file handles live behind a mutex so the serving layer can
/// share one store across its worker threads.
pub struct SessionStore {
    root: PathBuf,
    cfg: StoreConfig,
    open: Mutex<HashMap<u64, SessionFiles>>,
}

impl SessionStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("sessions"))?;
        Ok(Self {
            root,
            cfg,
            open: Mutex::new(HashMap::new()),
        })
    }

    /// The store's data directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The durability knobs this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    fn session_dir(&self, id: u64) -> PathBuf {
        self.root.join("sessions").join(id.to_string())
    }

    /// Ids of every session with on-disk state, ascending.
    pub fn list_sessions(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = fs::read_dir(self.root.join("sessions"))
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().to_str().and_then(|s| s.parse().ok()))
                    .collect()
            })
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// The highest stored session id (so a restarted server can hand out
    /// fresh ids above every recovered one).
    pub fn max_session_id(&self) -> Option<u64> {
        self.list_sessions().into_iter().max()
    }

    /// Whether the session has any on-disk state.
    pub fn contains(&self, id: u64) -> bool {
        self.session_dir(id).is_dir()
    }

    fn with_files<T>(
        &self,
        id: u64,
        f: impl FnOnce(&mut SessionFiles) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut open = self.open.lock().expect("store lock");
        if let std::collections::hash_map::Entry::Vacant(slot) = open.entry(id) {
            let dir = self.session_dir(id);
            fs::create_dir_all(&dir)?;
            let wal = Wal::open(dir.join("wal.log"), self.cfg.fsync)?;
            // Inherit whatever generation is on disk at open time: a
            // single-store deployment never bumps it, and a fleet shard
            // acquires ownership explicitly through `fence` before writing.
            let owned_gen = read_gen(&dir);
            slot.insert(SessionFiles {
                wal,
                steps_since_snapshot: 0,
                owned_gen,
            });
        }
        f(open.get_mut(&id).expect("just inserted"))
    }

    /// Fail with `PermissionDenied` when another store instance has fenced
    /// the session away since this one acquired (or inherited) its token.
    fn check_fence(&self, id: u64, files: &SessionFiles) -> io::Result<()> {
        let disk = read_gen(&self.session_dir(id));
        if disk != files.owned_gen {
            store_obs().fence_rejections.inc();
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "session {id} fenced: on-disk generation {disk} != owned {}",
                    files.owned_gen
                ),
            ));
        }
        Ok(())
    }

    /// Acquire write ownership of the session by bumping its on-disk
    /// generation token. Any other store instance (e.g. a shard the
    /// session is migrating away from) that still holds the old token has
    /// its subsequent `append_steps`/`snapshot` calls rejected with
    /// `PermissionDenied`.
    ///
    /// Call this **before** [`SessionStore::load`]: appends committed by
    /// the old owner before the bump land in the WAL scan; appends
    /// attempted after it are fenced off. (Within one process the store's
    /// open-file mutex makes the bump atomic with respect to in-flight
    /// batches; across processes the check is advisory with a small
    /// window, which the router closes by draining the source shard —
    /// or by the source being dead — before restoring elsewhere.)
    pub fn fence(&self, id: u64) -> io::Result<u64> {
        self.with_files(id, |files| {
            let dir = self.session_dir(id);
            let next = read_gen(&dir) + 1;
            write_gen(&dir, next, self.cfg.fsync != FsyncPolicy::Never)?;
            files.owned_gen = next;
            store_obs().fences.inc();
            Ok(next)
        })
    }

    /// Group-commit a batch of step records to the session's WAL.
    pub fn append_steps(&self, id: u64, records: &[WalRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let obs = store_obs();
        self.with_files(id, |files| {
            self.check_fence(id, files)?;
            let bytes = files.wal.append_batch(records)?;
            files.steps_since_snapshot += records
                .iter()
                .filter(|r| r.finished.is_none() && r.genesis.is_none())
                .count();
            obs.wal_appends.add(records.len() as u64);
            obs.wal_batches.inc();
            obs.wal_bytes.add(bytes);
            Ok(())
        })
    }

    /// Whether enough steps accumulated since the last snapshot that the
    /// caller should take one ([`StoreConfig::snapshot_every`]).
    pub fn needs_snapshot(&self, id: u64) -> bool {
        let open = self.open.lock().expect("store lock");
        open.get(&id)
            .is_some_and(|f| f.steps_since_snapshot >= self.cfg.snapshot_every)
    }

    /// Write a compacting snapshot of `session`, prune old generations,
    /// and truncate the now-redundant WAL.
    pub fn snapshot(&self, id: u64, session: &PortableSession) -> io::Result<()> {
        let obs = store_obs();
        self.with_files(id, |files| {
            self.check_fence(id, files)?;
            let dir = self.session_dir(id);
            let steps = session.state.iterations.len();
            let path = dir.join(format!("snap-{steps:012}.snap"));
            let sync = self.cfg.fsync != FsyncPolicy::Never;
            let bytes = write_snapshot(&path, session, sync)?;
            obs.snapshots.inc();
            obs.snapshot_bytes.record(bytes as f64);

            // Snapshot names zero-pad the step count, so the lexicographic
            // order of `snaps` is also the generation order.
            let mut snaps: Vec<PathBuf> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.extension().is_some_and(|x| x == "snap")
                        && p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("snap-"))
                })
                .collect();
            snaps.sort();
            let keep = self.cfg.keep_snapshots.max(1);
            if snaps.len() > keep {
                for old in &snaps[..snaps.len() - keep] {
                    fs::remove_file(old).ok();
                }
            }

            // A fresh session's WAL is already empty — skip the
            // truncate-and-sync on the create path.
            if files.wal.len_bytes()? > 0 {
                files.wal.truncate()?;
            }
            files.steps_since_snapshot = 0;
            Ok(())
        })
    }

    /// Recover a session: newest valid snapshot (falling back to older
    /// generations when one is damaged) plus WAL tail replay. `Ok(None)`
    /// means no recoverable state exists. A torn final WAL record is
    /// discarded silently; a corrupt mid-log record stops replay at the
    /// last good prefix. Both are counted in the metrics registry.
    pub fn load(&self, id: u64) -> io::Result<Option<RecoveredSession>> {
        let dir = self.session_dir(id);
        if !dir.is_dir() {
            return Ok(None);
        }
        let obs = store_obs();

        let mut snaps: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .collect();
        snaps.sort();
        let mut session = None;
        for path in snaps.iter().rev() {
            match read_snapshot(path)? {
                Some(s) => {
                    session = Some(s);
                    break;
                }
                None => obs.snapshot_rejects.inc(),
            }
        }

        let scan = scan_wal(&dir.join("wal.log"))?;
        if scan.torn_tail {
            obs.torn_tails.inc();
        }
        if scan.corrupt {
            obs.crc_failures.inc();
        }
        if scan.torn_tail || scan.corrupt {
            // Cut the bad tail off now: the WAL is opened in append mode,
            // so without this, post-recovery batches would land after the
            // garbage and every later scan would stop short of them —
            // silently dropping acknowledged writes on the next recovery.
            self.with_files(id, |files| files.wal.truncate_to(scan.valid_bytes))?;
        }

        // No valid snapshot: bootstrap from the genesis record the
        // session's first batch carried.
        if session.is_none() {
            session = scan
                .records
                .iter()
                .find_map(|r| r.genesis.as_deref())
                .and_then(|json| serde_json::from_str::<PortableSession>(json).ok())
                .filter(|s| s.id == id);
        }
        let Some(mut session) = session else {
            return Ok(None);
        };
        let mut replayed = 0usize;
        for rec in &scan.records {
            match apply_record(&mut session, rec) {
                Replay::Applied => replayed += 1,
                Replay::Stale => {}
                Replay::Mismatch => {
                    obs.discarded_records.inc();
                    break;
                }
            }
        }
        obs.recoveries.inc();
        obs.replayed_steps.add(replayed as u64);

        // Remember how far past a snapshot the session is, so the caller's
        // snapshot cadence resumes correctly. with_files creates the
        // open-file entry — in a fresh process nothing has opened this
        // session yet, so updating an existing entry alone would leave the
        // cadence at zero and let the WAL grow an extra snapshot_every
        // steps past its compaction point.
        self.with_files(id, |files| {
            files.steps_since_snapshot = replayed;
            Ok(())
        })?;
        Ok(Some(RecoveredSession {
            session,
            replayed_steps: replayed,
        }))
    }

    /// Delete every trace of the session (closed and not worth keeping).
    pub fn remove(&self, id: u64) -> io::Result<()> {
        self.open.lock().expect("store lock").remove(&id);
        match fs::remove_dir_all(self.session_dir(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_core::PortableHarvestState;

    fn base_session(id: u64) -> PortableSession {
        PortableSession {
            version: crate::SESSION_FORMAT_VERSION,
            id,
            selector: "l2qbal".into(),
            domain_size: 4,
            n_queries: 10,
            state: PortableHarvestState {
                version: 1,
                entity: 2,
                aspect: "RESEARCH".into(),
                seed_query: vec!["alice".into(), "smith".into()],
                seed_results: vec![3, 4, 5],
                iterations: Vec::new(),
                selection_time_nanos: 0,
                finished: None,
                collective: None,
            },
        }
    }

    fn step(id: u64, i: u64) -> WalRecord {
        WalRecord {
            session: id,
            step_index: i,
            query: vec![format!("w{i}")],
            new_pages: vec![100 + i as u32],
            selection_time_nanos: 500 * (i + 1),
            collective: None,
            finished: None,
            genesis: None,
        }
    }

    fn genesis(base: &PortableSession) -> WalRecord {
        WalRecord {
            session: base.id,
            step_index: 0,
            query: Vec::new(),
            new_pages: Vec::new(),
            selection_time_nanos: 0,
            collective: None,
            finished: None,
            genesis: Some(serde_json::to_string(base).unwrap()),
        }
    }

    #[test]
    fn snapshot_plus_wal_tail_recovers() {
        let dir = crate::test_dir("store-recover");
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();

        let mut s = base_session(9);
        store.snapshot(9, &s).unwrap();
        let recs: Vec<WalRecord> = (0..3).map(|i| step(9, i)).collect();
        store.append_steps(9, &recs).unwrap();
        for r in &recs {
            assert_eq!(apply_record(&mut s, r), Replay::Applied);
        }

        let got = store.load(9).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 3);
        assert_eq!(got.session, s);
        assert_eq!(store.list_sessions(), vec![9]);
        assert_eq!(store.max_session_id(), Some(9));
        assert!(store.contains(9) && !store.contains(8));

        store.remove(9).unwrap();
        assert!(store.load(9).unwrap().is_none());
        assert!(store.list_sessions().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_compact_the_wal_and_prune_old_generations() {
        let dir = crate::test_dir("store-compact");
        let store = SessionStore::open(
            &dir,
            StoreConfig {
                snapshot_every: 2,
                keep_snapshots: 2,
                ..StoreConfig::default()
            },
        )
        .unwrap();

        let mut s = base_session(1);
        store.snapshot(1, &s).unwrap();
        for round in 0u64..3 {
            let recs: Vec<WalRecord> = (0..2).map(|i| step(1, round * 2 + i)).collect();
            store.append_steps(1, &recs).unwrap();
            for r in &recs {
                apply_record(&mut s, r);
            }
            assert!(store.needs_snapshot(1));
            store.snapshot(1, &s).unwrap();
            assert!(!store.needs_snapshot(1));
        }

        let snap_count = std::fs::read_dir(store.root().join("sessions/1"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .count();
        assert_eq!(snap_count, 2, "old generations pruned");

        // WAL was truncated by the last snapshot; recovery replays nothing.
        let got = store.load(1).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 0);
        assert_eq!(got.session.state.iterations.len(), 6);
        assert_eq!(got.session, s);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A session that never reached a snapshot — its base state rides the
    /// WAL head as a genesis record — recovers fully from the log alone.
    #[test]
    fn genesis_record_bootstraps_recovery_without_any_snapshot() {
        let dir = crate::test_dir("store-genesis");
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();

        let mut s = base_session(3);
        let mut batch = vec![genesis(&s)];
        batch.extend((0..2).map(|i| step(3, i)));
        store.append_steps(3, &batch).unwrap();
        for r in &batch[1..] {
            assert_eq!(apply_record(&mut s, r), Replay::Applied);
        }

        let got = store.load(3).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 2);
        assert_eq!(got.session, s);

        // A genesis replayed onto an existing base is stale, not an error.
        assert_eq!(
            apply_record(&mut s, &genesis(&base_session(3))),
            Replay::Stale
        );

        // Once a snapshot exists, it wins and the genesis is redundant.
        store.snapshot(3, &s).unwrap();
        let got = store.load(3).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 0);
        assert_eq!(got.session, s);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: after a torn-tail recovery the WAL must be truncated to
    /// its valid prefix — the file is opened in append mode, so otherwise
    /// the recovered session's new batches land after the garbage and the
    /// *next* recovery silently drops every one of them.
    #[test]
    fn recovery_truncates_torn_tail_so_later_appends_survive_next_recovery() {
        let dir = crate::test_dir("store-truncate-tail");
        {
            let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
            store.snapshot(7, &base_session(7)).unwrap();
            store.append_steps(7, &[step(7, 0), step(7, 1)]).unwrap();
        }
        // Tear the tail mid-way through the last frame.
        let wal = dir.join("sessions/7/wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

        // Crash-recover: the torn step 1 is discarded and the garbage cut
        // off, so the continued session appends onto the valid prefix.
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let got = store.load(7).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 1);
        store.append_steps(7, &[step(7, 1), step(7, 2)]).unwrap();

        // The next recovery must replay every post-recovery step.
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let got = store.load(7).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 3, "post-recovery appends survive");
        let mut expect = base_session(7);
        for i in 0..3 {
            assert_eq!(apply_record(&mut expect, &step(7, i)), Replay::Applied);
        }
        assert_eq!(got.session, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: recovery must seed the snapshot cadence with the
    /// replayed step count (creating the open-file entry — a fresh process
    /// has none), so a recovered session compacts on schedule instead of
    /// letting the WAL grow an extra `snapshot_every` steps.
    #[test]
    fn recovery_resumes_snapshot_cadence_from_replayed_steps() {
        let dir = crate::test_dir("store-cadence");
        let cfg = StoreConfig {
            snapshot_every: 2,
            ..StoreConfig::default()
        };
        {
            let store = SessionStore::open(&dir, cfg).unwrap();
            store.snapshot(11, &base_session(11)).unwrap();
            store.append_steps(11, &[step(11, 0), step(11, 1)]).unwrap();
        }
        // Fresh process: recovery replays 2 steps — already at the
        // threshold, so the very next commit must compact.
        let store = SessionStore::open(&dir, cfg).unwrap();
        let got = store.load(11).unwrap().unwrap();
        assert_eq!(got.replayed_steps, 2);
        assert!(
            store.needs_snapshot(11),
            "cadence resumes at the replayed count"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Shared-dir fencing: once another store instance fences a session,
    /// the old owner's appends and snapshots are rejected instead of
    /// silently interleaving two writers into one WAL.
    #[test]
    fn fence_rejects_stale_writer_appends_and_snapshots() {
        let dir = crate::test_dir("store-fence");
        let shard_a = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let shard_b = SessionStore::open(&dir, StoreConfig::default()).unwrap();

        // Shard A writes the session's first batch (genesis + 2 steps).
        let mut s = base_session(21);
        let mut batch = vec![genesis(&s)];
        batch.extend((0..2).map(|i| step(21, i)));
        shard_a.append_steps(21, &batch).unwrap();
        for r in &batch[1..] {
            assert_eq!(apply_record(&mut s, r), Replay::Applied);
        }

        // Shard B takes over: fence first, then load — committed appends
        // are in the scan, and A's future writes are rejected.
        let generation = shard_b.fence(21).unwrap();
        assert_eq!(generation, 1);
        let got = shard_b.load(21).unwrap().unwrap();
        assert_eq!(got.session, s);

        let err = shard_a.append_steps(21, &[step(21, 2)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        let err = shard_a.snapshot(21, &s).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);

        // The new owner writes freely; a second fence by A reclaims.
        shard_b.append_steps(21, &[step(21, 2)]).unwrap();
        assert_eq!(shard_a.fence(21).unwrap(), 2);
        shard_a.append_steps(21, &[step(21, 3)]).unwrap();
        let err = shard_b.append_steps(21, &[step(21, 4)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);

        // Everything committed before each handover survives recovery.
        let fresh = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let got = fresh.load(21).unwrap().unwrap();
        assert_eq!(got.session.state.iterations.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A store that never fences (the single-shard world) is unaffected:
    /// no `gen` file is created and writes always pass the check.
    #[test]
    fn unfenced_sessions_behave_as_before() {
        let dir = crate::test_dir("store-unfenced");
        let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        let s = base_session(4);
        store.snapshot(4, &s).unwrap();
        store.append_steps(4, &[step(4, 0)]).unwrap();
        assert!(!store.root().join("sessions/4/gen").exists());

        // A reopened store inherits the on-disk generation (fenced once,
        // then reopened by the same shard) and keeps writing.
        store.fence(4).unwrap();
        let reopened = SessionStore::open(&dir, StoreConfig::default()).unwrap();
        reopened.append_steps(4, &[step(4, 1)]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_and_mismatched_records_are_filtered_on_replay() {
        let mut s = base_session(5);
        // Stale: record 0 twice (as after a snapshot that already covers it).
        assert_eq!(apply_record(&mut s, &step(5, 0)), Replay::Applied);
        assert_eq!(apply_record(&mut s, &step(5, 0)), Replay::Stale);
        // Gap: step 3 when only 1 exists.
        assert_eq!(apply_record(&mut s, &step(5, 3)), Replay::Mismatch);
        // Wrong session.
        assert_eq!(apply_record(&mut s, &step(6, 1)), Replay::Mismatch);
        // Finish seals the session; steps after it mismatch.
        let finish = WalRecord {
            session: 5,
            step_index: 1,
            query: Vec::new(),
            new_pages: Vec::new(),
            selection_time_nanos: 0,
            collective: None,
            finished: Some("budget_exhausted".into()),
            genesis: None,
        };
        assert_eq!(apply_record(&mut s, &finish), Replay::Applied);
        assert_eq!(s.state.finished.as_deref(), Some("budget_exhausted"));
        assert_eq!(apply_record(&mut s, &finish), Replay::Stale);
        assert_eq!(apply_record(&mut s, &step(5, 1)), Replay::Mismatch);
    }
}
