//! Compacting snapshots: the full portable session state, written
//! atomically (tmp file + rename) with a magic/CRC header so recovery can
//! reject partial or damaged snapshot files and fall back to an older one.
//!
//! File layout (integers little-endian):
//!
//! ```text
//! [magic: 8 bytes "L2QSNAP1"][crc32(payload): u32][len: u32][payload JSON]
//! ```

use crate::crc::crc32;
use crate::PortableSession;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Snapshot file magic (version baked into the last byte).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"L2QSNAP1";

/// Write `session` to `path` atomically: serialize, write + fsync a
/// sibling tmp file, rename over `path`, fsync the directory. Returns the
/// snapshot's size in bytes.
///
/// With `sync` false both fsyncs are skipped (the [`FsyncPolicy::Never`]
/// contract: the OS page cache decides; an unflushed snapshot is rejected
/// by its CRC on recovery and the caller falls back to an older one).
///
/// [`FsyncPolicy::Never`]: crate::FsyncPolicy::Never
pub fn write_snapshot(path: &Path, session: &PortableSession, sync: bool) -> std::io::Result<u64> {
    let payload = serde_json::to_string(session).expect("serializable session");
    let bytes = payload.as_bytes();
    let mut buf = Vec::with_capacity(bytes.len() + 16);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&crc32(bytes).to_le_bytes());
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);

    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&buf)?;
        if sync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)?;
    if sync {
        if let Some(dir) = path.parent() {
            // Make the rename itself durable.
            File::open(dir)?.sync_all()?;
        }
    }
    Ok(buf.len() as u64)
}

/// Read and validate a snapshot. `Ok(None)` means the file exists but is
/// invalid (bad magic, short, CRC mismatch, malformed JSON) — the caller
/// falls back to an older snapshot. A missing file is also `Ok(None)`.
pub fn read_snapshot(path: &Path) -> std::io::Result<Option<PortableSession>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if buf.len() < 16 || &buf[0..8] != SNAPSHOT_MAGIC {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    if buf.len() - 16 < len {
        return Ok(None);
    }
    let payload = &buf[16..16 + len];
    if crc32(payload) != crc {
        return Ok(None);
    }
    let parsed = std::str::from_utf8(payload)
        .ok()
        .and_then(|s| serde_json::from_str::<PortableSession>(s).ok());
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_core::PortableHarvestState;

    fn session(id: u64, steps: usize) -> PortableSession {
        PortableSession {
            version: 1,
            id,
            selector: "l2qbal".into(),
            domain_size: 3,
            n_queries: 4,
            state: PortableHarvestState {
                version: 1,
                entity: 0,
                aspect: "RESEARCH".into(),
                seed_query: vec!["alice".into()],
                seed_results: vec![1, 2],
                iterations: (0..steps)
                    .map(|i| l2q_core::PortableIteration {
                        query: vec![format!("q{i}")],
                        new_pages: vec![10 + i as u32],
                    })
                    .collect(),
                selection_time_nanos: 42,
                finished: None,
                collective: None,
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = crate::test_dir("snap-roundtrip");
        let path = dir.join("snap-00000002.snap");
        let bytes = write_snapshot(&path, &session(7, 2), true).unwrap();
        assert!(bytes > 16);
        let back = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(back, session(7, 2));
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshots_are_rejected_not_errors() {
        let dir = crate::test_dir("snap-damage");
        let path = dir.join("s.snap");
        write_snapshot(&path, &session(1, 1), false).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated payload.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());

        // Flipped payload byte.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 5] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());

        // Wrong magic.
        let mut bad = good;
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(read_snapshot(&path).unwrap().is_none());

        // Missing file.
        assert!(read_snapshot(&dir.join("absent.snap")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
