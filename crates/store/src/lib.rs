//! # l2q-store — durable session checkpointing
//!
//! An embedded durability subsystem for harvest sessions: no external
//! database, no registry dependencies — just files under a data
//! directory, in two complementary forms per session:
//!
//! * a **write-ahead log** ([`wal`]) of per-step records (fired query,
//!   retrieved page ids, collective-utility state), length-prefixed and
//!   CRC-checksummed, appended in group-committed batches under a
//!   configurable [`FsyncPolicy`];
//! * periodic **compacting snapshots** ([`snapshot`]) of the full
//!   portable session state, written atomically; each snapshot makes the
//!   WAL prefix redundant, so the log is truncated after one.
//!
//! **Recovery** ([`SessionStore::load`]) = newest valid snapshot + WAL
//! tail replay. A brand-new session that has never been snapshotted is
//! bootstrapped from the *genesis* record its first batch carried
//! ([`WalRecord::genesis`]). A torn/truncated final record (the `kill -9`
//! shape) is discarded without failing boot; a complete record with a bad
//! CRC marks corruption and replay stops at the last good prefix. Both
//! paths are counted in the global metrics registry
//! (`store_torn_tail_discards_total`, `store_wal_crc_failures_total`).
//!
//! Layout under the data directory:
//!
//! ```text
//! <data-dir>/sessions/<id>/wal.log           the session's WAL
//! <data-dir>/sessions/<id>/snap-<steps>.snap snapshots (newest wins)
//! ```
//!
//! The unit of state is [`PortableSession`]: the serving-layer session
//! envelope (selector, budgets) around [`l2q_core::PortableHarvestState`]
//! — everything needed to rebuild a live session that continues
//! bit-identically (see `l2q_core::checkpoint`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use crc::crc32;
pub use snapshot::{read_snapshot, write_snapshot, SNAPSHOT_MAGIC};
pub use store::{RecoveredSession, SessionStore, StoreConfig};
pub use wal::{scan_bytes, scan_wal, FsyncPolicy, Wal, WalRecord, WalScan, MAX_FRAME_BYTES};

use l2q_core::{PortableHarvestState, PortableIteration};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Current session-envelope format version.
pub const SESSION_FORMAT_VERSION: u32 = 1;

/// The durable unit: one serving-layer session. Wraps the core harvest
/// checkpoint with the serving parameters needed to rebuild the selector
/// and domain model on restore.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
pub struct PortableSession {
    /// Envelope format version ([`SESSION_FORMAT_VERSION`]).
    pub version: u32,
    /// Session id (also the directory name).
    pub id: u64,
    /// Selector wire name (`l2qp`, `l2qr`, `l2qbal`, `l2qw=<w>`).
    pub selector: String,
    /// Domain peer-set size the session was created with.
    pub domain_size: u64,
    /// Effective per-session query budget.
    pub n_queries: u64,
    /// The harvest state itself.
    pub state: PortableHarvestState,
}

/// Outcome of folding one WAL record into a [`PortableSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replay {
    /// The record extended the session by one step (or sealed its stop).
    Applied,
    /// The record predates the snapshot (already compacted); skipped.
    Stale,
    /// The record contradicts the session (wrong id, gap in step indices,
    /// step after finish); replay must stop.
    Mismatch,
}

/// Fold one WAL record into the portable session state. Records are
/// replayed in append order; [`Replay::Mismatch`] means the log and the
/// snapshot disagree and the remaining tail must be discarded.
pub fn apply_record(s: &mut PortableSession, rec: &WalRecord) -> Replay {
    if rec.session != s.id {
        return Replay::Mismatch;
    }
    if rec.genesis.is_some() {
        // A genesis record re-states a base the replayer already holds
        // (the snapshot, or the WAL head it was parsed from); it never
        // extends a session.
        return Replay::Stale;
    }
    let steps = s.state.iterations.len() as u64;
    if let Some(reason) = &rec.finished {
        if s.state.finished.is_some() {
            return Replay::Stale;
        }
        if rec.step_index < steps {
            return Replay::Stale;
        }
        if rec.step_index > steps {
            return Replay::Mismatch;
        }
        s.state.finished = Some(reason.clone());
        return Replay::Applied;
    }
    if rec.step_index < steps {
        return Replay::Stale;
    }
    if s.state.finished.is_some() || rec.step_index > steps || rec.query.is_empty() {
        return Replay::Mismatch;
    }
    s.state.iterations.push(PortableIteration {
        query: rec.query.clone(),
        new_pages: rec.new_pages.clone(),
    });
    s.state.selection_time_nanos = rec.selection_time_nanos;
    s.state.collective = rec.collective.clone();
    Replay::Applied
}

/// Resolved-once handles into the global metrics registry (the serving
/// stack surfaces these through the `metrics` wire op).
pub(crate) struct StoreObs {
    pub(crate) wal_appends: Arc<l2q_obs::Counter>,
    pub(crate) wal_batches: Arc<l2q_obs::Counter>,
    pub(crate) wal_bytes: Arc<l2q_obs::Counter>,
    pub(crate) fsync_seconds: Arc<l2q_obs::Histogram>,
    pub(crate) snapshots: Arc<l2q_obs::Counter>,
    pub(crate) snapshot_bytes: Arc<l2q_obs::Histogram>,
    pub(crate) snapshot_rejects: Arc<l2q_obs::Counter>,
    pub(crate) recoveries: Arc<l2q_obs::Counter>,
    pub(crate) replayed_steps: Arc<l2q_obs::Counter>,
    pub(crate) torn_tails: Arc<l2q_obs::Counter>,
    pub(crate) crc_failures: Arc<l2q_obs::Counter>,
    pub(crate) discarded_records: Arc<l2q_obs::Counter>,
    pub(crate) fences: Arc<l2q_obs::Counter>,
    pub(crate) fence_rejections: Arc<l2q_obs::Counter>,
}

pub(crate) fn store_obs() -> &'static StoreObs {
    static M: OnceLock<StoreObs> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        StoreObs {
            wal_appends: reg.counter("store_wal_appends_total"),
            wal_batches: reg.counter("store_wal_batches_total"),
            wal_bytes: reg.counter("store_wal_bytes_total"),
            fsync_seconds: reg.histogram("store_fsync_seconds"),
            snapshots: reg.counter("store_snapshots_total"),
            snapshot_bytes: reg.histogram_with_bounds(
                "store_snapshot_bytes",
                l2q_obs::Histogram::counts().bounds().to_vec(),
            ),
            snapshot_rejects: reg.counter("store_snapshot_rejects_total"),
            recoveries: reg.counter("store_recoveries_total"),
            replayed_steps: reg.counter("store_replayed_steps_total"),
            torn_tails: reg.counter("store_torn_tail_discards_total"),
            crc_failures: reg.counter("store_wal_crc_failures_total"),
            discarded_records: reg.counter("store_wal_discarded_records_total"),
            fences: reg.counter("store_fences_total"),
            fence_rejections: reg.counter("store_fence_rejections_total"),
        }
    })
}

/// A fresh per-test scratch directory under the system temp dir.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-store-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
