//! The write-ahead log: length-prefixed, CRC-checksummed frames of
//! per-step [`WalRecord`]s, appended in group-committed batches.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [len: u32][crc32(payload): u32][payload: len bytes of JSON]
//! ```
//!
//! The reader distinguishes two failure modes at the tail:
//!
//! * **Torn tail** — the file ends before a frame completes (a crash
//!   mid-write). The partial frame is discarded; everything before it is
//!   intact. This is the expected `kill -9` shape and never fails boot.
//! * **Corruption** — a complete frame whose CRC (or JSON) does not
//!   verify. Replay stops at the last good prefix; the bad record and
//!   everything after it are rejected.

use crate::crc::crc32;
use l2q_core::PortableCollective;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Upper bound on one frame's payload (a defensive sanity check — real
/// step records are a few hundred bytes).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// When appended batches reach the disk platter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every group-committed batch (a *power* crash loses at
    /// most the batch being written; measured ~100–250µs per batch).
    Always,
    /// fsync every N batches (default at N=8): bounded power-loss window,
    /// amortized cost. A *process* crash loses nothing under any policy —
    /// written batches survive in the OS page cache.
    EveryN(u32),
    /// Never fsync explicitly (OS page cache decides; fastest, weakest).
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        // Group commit: harvest progress is recomputable, so the default
        // trades a bounded power-loss window (≤8 batches) for keeping the
        // serving hot path off the fdatasync floor. `Always` is one knob
        // away for callers that need per-batch power-crash durability.
        Self::EveryN(8)
    }
}

impl FsyncPolicy {
    /// Parse a CLI knob: `always`, `never`, or `every=<n>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "never" => Some(Self::Never),
            other => {
                let n = other.strip_prefix("every=")?.parse::<u32>().ok()?;
                (n > 0).then_some(Self::EveryN(n))
            }
        }
    }
}

/// One durable step of a harvest session. Step records carry the fired
/// query and its page gains; a *finish* record (empty `query`, `finished`
/// set) seals the session's stop reason.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Owning session id.
    pub session: u64,
    /// 0-based selector-iteration ordinal this record commits (for finish
    /// records: the step count at which the session stopped).
    pub step_index: u64,
    /// The fired query as word strings (empty for finish records).
    pub query: Vec<String>,
    /// Pages first retrieved by this step's query.
    pub new_pages: Vec<u32>,
    /// Cumulative selection wall-clock after this step, in nanoseconds.
    pub selection_time_nanos: u64,
    /// Collective-recall state after this step's commit (context-aware
    /// selectors; exact f64 bit patterns).
    pub collective: Option<PortableCollective>,
    /// Stop reason (finish records only).
    pub finished: Option<String>,
    /// Full base-session JSON (*genesis* records only): a brand-new
    /// session's first batch carries its base state inline, so creation
    /// needs no snapshot write and the base rides the batch's one fsync.
    /// Recovery uses it when no valid snapshot exists.
    pub genesis: Option<String>,
}

/// Encode one record as a framed byte sequence.
fn encode_frame(rec: &WalRecord, out: &mut Vec<u8>) {
    let payload = serde_json::to_string(rec).expect("serializable wal record");
    let bytes = payload.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// An open, appendable WAL file.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    batches_since_sync: u32,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Self {
            file,
            path,
            policy,
            batches_since_sync: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Group-commit a batch: one frame per record, a single `write_all`,
    /// then fsync per the policy. Returns the bytes appended.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> std::io::Result<u64> {
        if records.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::with_capacity(records.len() * 256);
        for rec in records {
            encode_frame(rec, &mut buf);
        }
        self.file.write_all(&buf)?;
        self.batches_since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.batches_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(buf.len() as u64)
    }

    /// fsync the log now (timed into `store_fsync_seconds`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        let t0 = Instant::now();
        self.file.sync_data()?;
        crate::store_obs()
            .fsync_seconds
            .record_duration(t0.elapsed());
        self.batches_since_sync = 0;
        Ok(())
    }

    /// Discard every record (after a compacting snapshot made them
    /// redundant).
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()
    }

    /// Drop everything past the first `len` bytes — the valid prefix a
    /// recovery scan identified. The file is opened in append mode, so
    /// after this, new batches extend the good prefix instead of landing
    /// unreachably after a torn or corrupt tail.
    pub fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Outcome of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Fully-committed records, in append order.
    pub records: Vec<WalRecord>,
    /// The file ended inside a frame (crash mid-write); the partial frame
    /// was discarded.
    pub torn_tail: bool,
    /// A complete frame failed its CRC or JSON check; replay stopped
    /// before it.
    pub corrupt: bool,
    /// Bytes covered by the valid prefix.
    pub valid_bytes: u64,
}

/// Scan a WAL file into its valid record prefix. A missing file is an
/// empty log, not an error.
pub fn scan_wal(path: &Path) -> std::io::Result<WalScan> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    }
    Ok(scan_bytes(&buf))
}

/// Scan an in-memory WAL image (the file-reading half split out for
/// truncation tests).
pub fn scan_bytes(buf: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut off = 0usize;
    while off < buf.len() {
        if buf.len() - off < 8 {
            scan.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_BYTES {
            scan.corrupt = true;
            break;
        }
        let len = len as usize;
        if buf.len() - off - 8 < len {
            scan.torn_tail = true;
            break;
        }
        let payload = &buf[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            scan.corrupt = true;
            break;
        }
        let parsed = std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<WalRecord>(s).ok());
        match parsed {
            Some(rec) => scan.records.push(rec),
            None => {
                scan.corrupt = true;
                break;
            }
        }
        off += 8 + len;
        scan.valid_bytes = off as u64;
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn step_record(session: u64, step: u64) -> WalRecord {
        WalRecord {
            session,
            step_index: step,
            query: vec![format!("word{step}"), "shared".into()],
            new_pages: vec![step as u32 * 10, step as u32 * 10 + 1],
            selection_time_nanos: 1_000 * (step + 1),
            collective: None,
            finished: None,
            genesis: None,
        }
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = crate::test_dir("wal-roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        let records: Vec<WalRecord> = (0..5).map(|i| step_record(1, i)).collect();
        let bytes = wal.append_batch(&records).unwrap();
        assert!(bytes > 0);
        assert_eq!(wal.len_bytes().unwrap(), bytes);

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, records);
        assert!(!scan.torn_tail && !scan.corrupt);
        assert_eq!(scan.valid_bytes, bytes);

        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        assert!(scan_wal(&path).unwrap().records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let scan = scan_wal(Path::new("/nonexistent/l2q/wal.log")).unwrap();
        assert!(scan.records.is_empty() && !scan.torn_tail && !scan.corrupt);
    }

    #[test]
    fn corrupt_mid_log_record_stops_replay_before_it() {
        let mut buf = Vec::new();
        for i in 0..4 {
            encode_frame(&step_record(1, i), &mut buf);
        }
        // Flip a payload byte inside the second frame.
        let first_len = {
            let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        buf[first_len + 12] ^= 0x40;
        let scan = scan_bytes(&buf);
        assert!(scan.corrupt, "flip must be detected");
        assert!(!scan.torn_tail);
        assert_eq!(
            scan.records.len(),
            1,
            "only the prefix before the bad frame"
        );
        assert_eq!(scan.records[0], step_record(1, 0));
    }
}
