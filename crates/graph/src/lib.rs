//! # l2q-graph — the reinforcement graph and its random walks
//!
//! The paper's utility-inference model (Sect. III–IV): pages, queries and
//! templates form a tripartite *reinforcement graph*; probabilistic
//! precision is the stationary distribution of the backward random walk
//! with restart, probabilistic recall of the forward walk, with the restart
//! probability α acting as utility regularization.
//!
//! ```
//! use l2q_graph::{GraphBuilder, Regularization, solve, UtilityKind, WalkConfig};
//! // Two pages (first relevant), one query retrieving both.
//! let mut b = GraphBuilder::new(2, 1, 0);
//! b.page_query(0, 0, 1.0).page_query(1, 0, 1.0);
//! let g = b.build();
//! let reg = Regularization::precision_from_relevance(&g, &[true, false]);
//! let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
//! assert!(u.queries[0] > 0.0 && u.queries[0] < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod graph;
pub mod solver;

pub use bounds::{static_query_upper_bounds, FusedTruncatedSolver, StaticBoundsContext};
pub use graph::{Edge, GraphBuilder, PageIdx, QueryIdx, ReinforcementGraph, TemplateIdx};
pub use solver::{
    solve, solve_detailed, solve_fused_detailed, solve_with_scheme, Regularization, Scheme,
    Utilities, UtilityKind, WalkConfig,
};
