//! The reinforcement graph G = (V, E) with V = P ∪ Q ∪ T.
//!
//! Pages connect to the queries that can retrieve them (paper Fig. 2c) and
//! queries connect to the templates that can abstract them (Fig. 5b).
//! Edge weights `W` encode connection strength; the paper uses 1 for plain
//! retrievability and allows retrieval scores in `[0, ∞)`.
//!
//! The graph is built with [`GraphBuilder`] and frozen into a
//! [`ReinforcementGraph`], which precomputes the degree sums both walks
//! need:
//!
//! * receiver-side sums (a vertex's own total incident weight per neighbor
//!   class) — the precision walk's normalizers (Eq. 6/8/15/17);
//! * sender-side sums (each neighbor's total weight over the *receiving*
//!   class) — the recall walk's normalizers (Eq. 7/9/16/18).

/// Index of a page vertex within a graph.
pub type PageIdx = u32;
/// Index of a query vertex within a graph.
pub type QueryIdx = u32;
/// Index of a template vertex within a graph.
pub type TemplateIdx = u32;

/// A weighted neighbor entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Neighbor index (interpretation depends on the list it is in).
    pub to: u32,
    /// Edge weight `W ≥ 0`.
    pub weight: f64,
}

/// Builder for a [`ReinforcementGraph`].
#[derive(Default, Debug)]
pub struct GraphBuilder {
    n_pages: usize,
    n_queries: usize,
    n_templates: usize,
    pq: Vec<(PageIdx, QueryIdx, f64)>,
    qt: Vec<(QueryIdx, TemplateIdx, f64)>,
}

impl GraphBuilder {
    /// Start a builder with the given vertex counts.
    pub fn new(n_pages: usize, n_queries: usize, n_templates: usize) -> Self {
        Self {
            n_pages,
            n_queries,
            n_templates,
            pq: Vec::new(),
            qt: Vec::new(),
        }
    }

    /// Add a page–query edge (`q` can retrieve `p`) with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range indices or negative/non-finite weight.
    pub fn page_query(&mut self, p: PageIdx, q: QueryIdx, w: f64) -> &mut Self {
        assert!((p as usize) < self.n_pages, "page index {p} out of range");
        assert!(
            (q as usize) < self.n_queries,
            "query index {q} out of range"
        );
        assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        if w > 0.0 {
            self.pq.push((p, q, w));
        }
        self
    }

    /// Add a query–template edge (`t` abstracts `q`) with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range indices or negative/non-finite weight.
    pub fn query_template(&mut self, q: QueryIdx, t: TemplateIdx, w: f64) -> &mut Self {
        assert!(
            (q as usize) < self.n_queries,
            "query index {q} out of range"
        );
        assert!(
            (t as usize) < self.n_templates,
            "template index {t} out of range"
        );
        assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        if w > 0.0 {
            self.qt.push((q, t, w));
        }
        self
    }

    /// Freeze into an immutable graph.
    pub fn build(self) -> ReinforcementGraph {
        let mut g = ReinforcementGraph {
            page_queries: vec![Vec::new(); self.n_pages],
            query_pages: vec![Vec::new(); self.n_queries],
            query_templates: vec![Vec::new(); self.n_queries],
            template_queries: vec![Vec::new(); self.n_templates],
            page_deg: vec![0.0; self.n_pages],
            query_page_deg: vec![0.0; self.n_queries],
            query_template_deg: vec![0.0; self.n_queries],
            template_deg: vec![0.0; self.n_templates],
            n_edges: self.pq.len() + self.qt.len(),
        };
        for (p, q, w) in self.pq {
            g.page_queries[p as usize].push(Edge { to: q, weight: w });
            g.query_pages[q as usize].push(Edge { to: p, weight: w });
            g.page_deg[p as usize] += w;
            g.query_page_deg[q as usize] += w;
        }
        for (q, t, w) in self.qt {
            g.query_templates[q as usize].push(Edge { to: t, weight: w });
            g.template_queries[t as usize].push(Edge { to: q, weight: w });
            g.query_template_deg[q as usize] += w;
            g.template_deg[t as usize] += w;
        }
        g
    }
}

/// Frozen tripartite reinforcement graph with degree caches.
#[derive(Debug)]
pub struct ReinforcementGraph {
    /// Per page: query neighbors.
    pub page_queries: Vec<Vec<Edge>>,
    /// Per query: page neighbors.
    pub query_pages: Vec<Vec<Edge>>,
    /// Per query: template neighbors.
    pub query_templates: Vec<Vec<Edge>>,
    /// Per template: query neighbors.
    pub template_queries: Vec<Vec<Edge>>,
    /// Σ weights of a page's query edges.
    pub page_deg: Vec<f64>,
    /// Σ weights of a query's page edges.
    pub query_page_deg: Vec<f64>,
    /// Σ weights of a query's template edges.
    pub query_template_deg: Vec<f64>,
    /// Σ weights of a template's query edges.
    pub template_deg: Vec<f64>,
    n_edges: usize,
}

impl ReinforcementGraph {
    /// Number of page vertices.
    pub fn n_pages(&self) -> usize {
        self.page_queries.len()
    }

    /// Number of query vertices.
    pub fn n_queries(&self) -> usize {
        self.query_pages.len()
    }

    /// Number of template vertices.
    pub fn n_templates(&self) -> usize {
        self.template_queries.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_both_directions() {
        let mut b = GraphBuilder::new(2, 2, 1);
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 2.0)
            .page_query(1, 1, 1.0)
            .query_template(0, 0, 1.0);
        let g = b.build();
        assert_eq!(g.n_pages(), 2);
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.n_templates(), 1);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.page_queries[1].len(), 2);
        assert_eq!(g.query_pages[0].len(), 2);
        assert_eq!(g.template_queries[0].len(), 1);
        assert_eq!(g.page_deg[1], 3.0);
        assert_eq!(g.query_page_deg[0], 3.0);
        assert_eq!(g.query_template_deg[0], 1.0);
        assert_eq!(g.template_deg[0], 1.0);
    }

    #[test]
    fn zero_weight_edges_are_dropped() {
        let mut b = GraphBuilder::new(1, 1, 0);
        b.page_query(0, 0, 0.0);
        let g = b.build();
        assert_eq!(g.n_edges(), 0);
        assert!(g.page_queries[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_page_panics() {
        GraphBuilder::new(1, 1, 0).page_query(5, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn negative_weight_panics() {
        GraphBuilder::new(1, 1, 0).page_query(0, 0, -1.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0, 0, 0).build();
        assert_eq!(g.n_pages() + g.n_queries() + g.n_templates(), 0);
    }
}
