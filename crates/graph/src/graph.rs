//! The reinforcement graph G = (V, E) with V = P ∪ Q ∪ T.
//!
//! Pages connect to the queries that can retrieve them (paper Fig. 2c) and
//! queries connect to the templates that can abstract them (Fig. 5b).
//! Edge weights `W` encode connection strength; the paper uses 1 for plain
//! retrievability and allows retrieval scores in `[0, ∞)`.
//!
//! The graph is built with [`GraphBuilder`] and frozen into a
//! [`ReinforcementGraph`], which stores each adjacency direction in CSR
//! form — one offsets array plus one contiguous [`Edge`] array per
//! direction — so a solver sweep walks packed memory instead of chasing
//! per-vertex `Vec` allocations. It also precomputes the degree sums both
//! walks need:
//!
//! * receiver-side sums (a vertex's own total incident weight per neighbor
//!   class) — the precision walk's normalizers (Eq. 6/8/15/17);
//! * sender-side sums (each neighbor's total weight over the *receiving*
//!   class) — the recall walk's normalizers (Eq. 7/9/16/18);
//! * sender-normalized per-edge weights (`w / deg(sender)`), so the recall
//!   walk's per-edge division happens once at build time instead of once
//!   per edge per solver sweep.
//!
//! Per-vertex neighbor order is the builder's insertion order (the CSR
//! fill is a stable counting sort), so float summation order — and hence
//! the solver's bit-exact output — is identical to the former nested-`Vec`
//! layout.

/// Index of a page vertex within a graph.
pub type PageIdx = u32;
/// Index of a query vertex within a graph.
pub type QueryIdx = u32;
/// Index of a template vertex within a graph.
pub type TemplateIdx = u32;

/// A weighted neighbor entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Neighbor index (interpretation depends on the list it is in).
    pub to: u32,
    /// Edge weight `W ≥ 0`.
    pub weight: f64,
}

/// Builder for a [`ReinforcementGraph`].
#[derive(Default, Debug)]
pub struct GraphBuilder {
    n_pages: usize,
    n_queries: usize,
    n_templates: usize,
    pq: Vec<(PageIdx, QueryIdx, f64)>,
    qt: Vec<(QueryIdx, TemplateIdx, f64)>,
}

impl GraphBuilder {
    /// Start a builder with the given vertex counts.
    pub fn new(n_pages: usize, n_queries: usize, n_templates: usize) -> Self {
        Self {
            n_pages,
            n_queries,
            n_templates,
            pq: Vec::new(),
            qt: Vec::new(),
        }
    }

    /// Pre-size the edge lists (the incremental entity phase knows the
    /// exact edge count up front).
    pub fn reserve(&mut self, pq_edges: usize, qt_edges: usize) -> &mut Self {
        self.pq.reserve(pq_edges);
        self.qt.reserve(qt_edges);
        self
    }

    /// Add a page–query edge (`q` can retrieve `p`) with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range indices or negative/non-finite weight.
    pub fn page_query(&mut self, p: PageIdx, q: QueryIdx, w: f64) -> &mut Self {
        assert!((p as usize) < self.n_pages, "page index {p} out of range");
        assert!(
            (q as usize) < self.n_queries,
            "query index {q} out of range"
        );
        assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        if w > 0.0 {
            self.pq.push((p, q, w));
        }
        self
    }

    /// Add a query–template edge (`t` abstracts `q`) with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range indices or negative/non-finite weight.
    pub fn query_template(&mut self, q: QueryIdx, t: TemplateIdx, w: f64) -> &mut Self {
        assert!(
            (q as usize) < self.n_queries,
            "query index {q} out of range"
        );
        assert!(
            (t as usize) < self.n_templates,
            "template index {t} out of range"
        );
        assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        if w > 0.0 {
            self.qt.push((q, t, w));
        }
        self
    }

    /// Freeze into an immutable graph.
    pub fn build(self) -> ReinforcementGraph {
        let n_edges = self.pq.len() + self.qt.len();

        let mut page_deg = vec![0.0; self.n_pages];
        let mut query_page_deg = vec![0.0; self.n_queries];
        let mut query_template_deg = vec![0.0; self.n_queries];
        let mut template_deg = vec![0.0; self.n_templates];
        for &(p, q, w) in &self.pq {
            page_deg[p as usize] += w;
            query_page_deg[q as usize] += w;
        }
        for &(q, t, w) in &self.qt {
            query_template_deg[q as usize] += w;
            template_deg[t as usize] += w;
        }

        let (page_query_off, page_query_adj) = csr(self.n_pages, &self.pq, |&(p, q, w)| (p, q, w));
        let (query_page_off, query_page_adj) =
            csr(self.n_queries, &self.pq, |&(p, q, w)| (q, p, w));
        let (query_template_off, query_template_adj) =
            csr(self.n_queries, &self.qt, |&(q, t, w)| (q, t, w));
        let (template_query_off, template_query_adj) =
            csr(self.n_templates, &self.qt, |&(q, t, w)| (t, q, w));

        // Sender-normalized weights (`w / sender_degree`, the recall
        // walk's per-edge coefficient) are graph constants: hoisting the
        // division out of the solver turns ~100 divisions per edge per
        // solve into one, without changing a single result bit — the
        // same quotient just gets computed once.
        let page_query_nrm = normalized(&page_query_adj, &query_page_deg);
        let query_page_nrm = normalized(&query_page_adj, &page_deg);
        let query_template_nrm = normalized(&query_template_adj, &template_deg);
        let template_query_nrm = normalized(&template_query_adj, &query_template_deg);

        ReinforcementGraph {
            page_query_off,
            page_query_adj,
            page_query_nrm,
            query_page_off,
            query_page_adj,
            query_page_nrm,
            query_template_off,
            query_template_adj,
            query_template_nrm,
            template_query_off,
            template_query_adj,
            template_query_nrm,
            page_deg,
            query_page_deg,
            query_template_deg,
            template_deg,
            n_edges,
        }
    }
}

/// Per-edge sender-normalized weight: `w / deg(sender)`, 0 for an
/// (impossible in practice) zero-degree sender — matching the solver's
/// old inline guard bit for bit.
fn normalized(adj: &[Edge], sender_deg: &[f64]) -> Vec<f64> {
    adj.iter()
        .map(|e| {
            let d = sender_deg[e.to as usize];
            if d > 0.0 {
                e.weight / d
            } else {
                0.0
            }
        })
        .collect()
}

/// Build one CSR direction: per-source offsets plus a packed neighbor
/// array. The fill is a stable counting sort, so each source's neighbors
/// keep the builder's insertion order.
fn csr<T>(n_src: usize, edges: &[T], key: impl Fn(&T) -> (u32, u32, f64)) -> (Vec<u32>, Vec<Edge>) {
    assert!(edges.len() <= u32::MAX as usize, "edge count overflows CSR");
    let mut off = vec![0u32; n_src + 1];
    for e in edges {
        off[key(e).0 as usize + 1] += 1;
    }
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    let mut cursor: Vec<u32> = off[..n_src].to_vec();
    let mut adj = vec![Edge { to: 0, weight: 0.0 }; edges.len()];
    for e in edges {
        let (src, dst, w) = key(e);
        let slot = &mut cursor[src as usize];
        adj[*slot as usize] = Edge { to: dst, weight: w };
        *slot += 1;
    }
    (off, adj)
}

/// Frozen tripartite reinforcement graph in CSR form with degree caches.
#[derive(Debug)]
pub struct ReinforcementGraph {
    page_query_off: Vec<u32>,
    page_query_adj: Vec<Edge>,
    page_query_nrm: Vec<f64>,
    query_page_off: Vec<u32>,
    query_page_adj: Vec<Edge>,
    query_page_nrm: Vec<f64>,
    query_template_off: Vec<u32>,
    query_template_adj: Vec<Edge>,
    query_template_nrm: Vec<f64>,
    template_query_off: Vec<u32>,
    template_query_adj: Vec<Edge>,
    template_query_nrm: Vec<f64>,
    /// Σ weights of a page's query edges.
    pub page_deg: Vec<f64>,
    /// Σ weights of a query's page edges.
    pub query_page_deg: Vec<f64>,
    /// Σ weights of a query's template edges.
    pub query_template_deg: Vec<f64>,
    /// Σ weights of a template's query edges.
    pub template_deg: Vec<f64>,
    n_edges: usize,
}

#[inline]
fn slice_of<'a>(off: &[u32], adj: &'a [Edge], v: usize) -> &'a [Edge] {
    &adj[off[v] as usize..off[v + 1] as usize]
}

impl ReinforcementGraph {
    /// Number of page vertices.
    pub fn n_pages(&self) -> usize {
        self.page_query_off.len() - 1
    }

    /// Number of query vertices.
    pub fn n_queries(&self) -> usize {
        self.query_page_off.len() - 1
    }

    /// Number of template vertices.
    pub fn n_templates(&self) -> usize {
        self.template_query_off.len() - 1
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Query neighbors of page `p`, in edge insertion order.
    #[inline]
    pub fn page_queries(&self, p: usize) -> &[Edge] {
        slice_of(&self.page_query_off, &self.page_query_adj, p)
    }

    /// Page neighbors of query `q`, in edge insertion order.
    #[inline]
    pub fn query_pages(&self, q: usize) -> &[Edge] {
        slice_of(&self.query_page_off, &self.query_page_adj, q)
    }

    /// Template neighbors of query `q`, in edge insertion order.
    #[inline]
    pub fn query_templates(&self, q: usize) -> &[Edge] {
        slice_of(&self.query_template_off, &self.query_template_adj, q)
    }

    /// Query neighbors of template `t`, in edge insertion order.
    #[inline]
    pub fn template_queries(&self, t: usize) -> &[Edge] {
        slice_of(&self.template_query_off, &self.template_query_adj, t)
    }

    /// Sender-normalized weights aligned with [`Self::page_queries`]:
    /// `w / query_page_deg(q)` per edge.
    #[inline]
    pub fn page_queries_nrm(&self, p: usize) -> &[f64] {
        &self.page_query_nrm[self.page_query_off[p] as usize..self.page_query_off[p + 1] as usize]
    }

    /// Sender-normalized weights aligned with [`Self::query_pages`]:
    /// `w / page_deg(p)` per edge.
    #[inline]
    pub fn query_pages_nrm(&self, q: usize) -> &[f64] {
        &self.query_page_nrm[self.query_page_off[q] as usize..self.query_page_off[q + 1] as usize]
    }

    /// Sender-normalized weights aligned with [`Self::query_templates`]:
    /// `w / template_deg(t)` per edge.
    #[inline]
    pub fn query_templates_nrm(&self, q: usize) -> &[f64] {
        &self.query_template_nrm
            [self.query_template_off[q] as usize..self.query_template_off[q + 1] as usize]
    }

    /// Sender-normalized weights aligned with [`Self::template_queries`]:
    /// `w / query_template_deg(q)` per edge.
    #[inline]
    pub fn template_queries_nrm(&self, t: usize) -> &[f64] {
        &self.template_query_nrm
            [self.template_query_off[t] as usize..self.template_query_off[t + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_both_directions() {
        let mut b = GraphBuilder::new(2, 2, 1);
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 2.0)
            .page_query(1, 1, 1.0)
            .query_template(0, 0, 1.0);
        let g = b.build();
        assert_eq!(g.n_pages(), 2);
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.n_templates(), 1);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.page_queries(1).len(), 2);
        assert_eq!(g.query_pages(0).len(), 2);
        assert_eq!(g.template_queries(0).len(), 1);
        assert_eq!(g.page_deg[1], 3.0);
        assert_eq!(g.query_page_deg[0], 3.0);
        assert_eq!(g.query_template_deg[0], 1.0);
        assert_eq!(g.template_deg[0], 1.0);
    }

    #[test]
    fn csr_preserves_insertion_order_per_vertex() {
        // Interleave edges of two pages; each page's neighbor list must
        // come back in the order its own edges were added.
        let mut b = GraphBuilder::new(2, 4, 0);
        b.page_query(0, 3, 1.0)
            .page_query(1, 2, 1.0)
            .page_query(0, 1, 2.0)
            .page_query(1, 0, 3.0)
            .page_query(0, 2, 4.0);
        let g = b.build();
        let order: Vec<u32> = g.page_queries(0).iter().map(|e| e.to).collect();
        assert_eq!(order, [3, 1, 2]);
        let order: Vec<u32> = g.page_queries(1).iter().map(|e| e.to).collect();
        assert_eq!(order, [2, 0]);
        // Reverse direction too: query 2 saw page 1 before page 0.
        let order: Vec<u32> = g.query_pages(2).iter().map(|e| e.to).collect();
        assert_eq!(order, [1, 0]);
        let w: Vec<f64> = g.query_pages(2).iter().map(|e| e.weight).collect();
        assert_eq!(w, [1.0, 4.0]);
    }

    #[test]
    fn normalized_weights_align_with_adjacency() {
        let mut b = GraphBuilder::new(2, 2, 1);
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 2.0)
            .page_query(1, 1, 1.0)
            .query_template(0, 0, 1.0)
            .query_template(1, 0, 3.0);
        let g = b.build();
        // Page 1's edges: q0 (sender deg 3.0) then q1 (sender deg 1.0).
        assert_eq!(g.page_queries_nrm(1), [2.0 / 3.0, 1.0 / 1.0]);
        // Query 0's page edges: p0 (deg 1.0), p1 (deg 3.0).
        assert_eq!(g.query_pages_nrm(0), [1.0 / 1.0, 2.0 / 3.0]);
        // Query 1's template edge: t0 (deg 4.0).
        assert_eq!(g.query_templates_nrm(1), [3.0 / 4.0]);
        // Template 0's query edges: q0 (deg 1.0), q1 (deg 3.0).
        assert_eq!(g.template_queries_nrm(0), [1.0 / 1.0, 3.0 / 3.0]);
        // Every nrm slice is edge-aligned.
        for p in 0..g.n_pages() {
            assert_eq!(g.page_queries(p).len(), g.page_queries_nrm(p).len());
        }
        for q in 0..g.n_queries() {
            assert_eq!(g.query_pages(q).len(), g.query_pages_nrm(q).len());
            assert_eq!(g.query_templates(q).len(), g.query_templates_nrm(q).len());
        }
    }

    #[test]
    fn zero_weight_edges_are_dropped() {
        let mut b = GraphBuilder::new(1, 1, 0);
        b.page_query(0, 0, 0.0);
        let g = b.build();
        assert_eq!(g.n_edges(), 0);
        assert!(g.page_queries(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_page_panics() {
        GraphBuilder::new(1, 1, 0).page_query(5, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn negative_weight_panics() {
        GraphBuilder::new(1, 1, 0).page_query(0, 0, -1.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0, 0, 0).build();
        assert_eq!(g.n_pages() + g.n_queries() + g.n_templates(), 0);
    }
}
