//! Certified truncation bounds for the utility-inference fixpoint.
//!
//! The selection argmax only ever consumes the *query* block of the walk
//! fixpoints, and the Jacobi update map is a restart-damped contraction.
//! Both facts combine into cheap, rigorous control over a truncated
//! solve:
//!
//! * [`FusedTruncatedSolver`] runs the exact fused Jacobi sweeps of
//!   [`solve_fused_detailed`] one at a time, exposing after every sweep a
//!   **certified tail bound** on how far each system's current query
//!   iterate can still move before convergence. Run to completion it is
//!   bitwise identical to [`solve_fused_detailed`] — same kernels, same
//!   edge order, same convergence test — so a caller that stops early
//!   only ever trades a *known* error for sweeps, never correctness.
//! * [`static_query_upper_bounds`] bounds each query's true fixpoint
//!   utility from per-vertex in-strengths of the graph alone, without
//!   running a single sweep.
//!
//! Tail-bound derivation. Write one Jacobi sweep's block deltas as
//! `d_P, d_Q, d_T` (pages / queries / templates; L1 for Recall whose
//! sender-normalized coefficient columns sum to 1, L∞ for Precision
//! whose receiver averages have unit coefficient sums). With
//! `keep = 1 − α` and page/template side weights `B_P, B_T` (the balance
//! split when a missing side contributes zero, else 1), one more sweep
//! contracts the blocks jointly:
//!
//! ```text
//! d_P' ≤ keep·d_Q      d_T' ≤ keep·d_Q      d_Q' ≤ keep·(B_P·d_P + B_T·d_T)
//! ```
//!
//! so query deltas two sweeps apart shrink by `ρ = keep²·(B_P + B_T)`.
//! Summing the geometric series of all future query deltas gives the
//! distance from the current query iterate to the fixpoint:
//!
//! ```text
//! tail = (keep·(B_P·d_P + B_T·d_T) + ρ·d_Q) / (1 − ρ)      (ρ < 1)
//! ```
//!
//! With the defaults (α = 0.15, balanced sides) ρ = 0.7225. When ρ ≥ 1
//! (e.g. `missing_side_is_zero: false`, where both sides can carry full
//! weight) the bound degenerates to ∞ and callers must fall back to the
//! exact solve — truncation is then never certified, still never wrong.
//!
//! The block tail bounds the *sum* of all query errors, which is wildly
//! conservative for any single query. [`FusedTruncatedSolver::query_tails_into`]
//! refines it per query: query `q`'s update touches its neighbors'
//! iterates through coefficients no larger than `mx_q` (its maximum
//! incoming coefficient), so each of its future per-sweep moves is at
//! most `keep · mx_q ·` (the sending block's L1 delta), and summing the
//! same geometric series over *block* L1 deltas gives
//!
//! ```text
//! tail_q = keep·(B_P·mxP_q·S_P + B_T·mxT_q·S_T)
//! S_P = d_P + keep·(d_Q + tail)        S_T = d_T + keep·(d_Q + tail)
//! ```
//!
//! (`S_P, S_T` bound the sums of all present-and-future page/template
//! block deltas). `tail_q ≤ tail` whenever `mx_q` is small — the common
//! case, since sender normalization spreads each page's unit mass over
//! all its candidate queries.

use crate::graph::ReinforcementGraph;
use crate::solver::{
    l1_delta, step_fused, step_fused3_recall, sweeps_histogram, Regularization, Utilities,
    UtilityKind, WalkConfig,
};

/// Per-block iterate movement of one sweep, in both norms the bounds
/// need. The L1 blocks are accumulated in exactly the order of the
/// solver's `l1_delta` fold so `total_l1()` reproduces its convergence
/// decision bit for bit.
#[derive(Clone, Copy, Debug)]
struct BlockDeltas {
    l1_pages: f64,
    l1_queries: f64,
    l1_templates: f64,
    linf_pages: f64,
    linf_queries: f64,
    linf_templates: f64,
}

impl BlockDeltas {
    fn total_l1(&self) -> f64 {
        self.l1_pages + self.l1_queries + self.l1_templates
    }
}

fn block_deltas(a: &Utilities, b: &Utilities, kind: UtilityKind) -> BlockDeltas {
    // Recall tails only ever read the L1 blocks (see [`tail`]), so skip
    // the L∞ fold on that — much hotter — path; convergence needs L1
    // either way.
    fn block(x: &[f64], y: &[f64]) -> (f64, f64) {
        let mut l1 = 0.0f64;
        let mut linf = 0.0f64;
        for (u, v) in x.iter().zip(y) {
            let d = (u - v).abs();
            l1 += d;
            linf = linf.max(d);
        }
        (l1, linf)
    }
    fn block_l1(x: &[f64], y: &[f64]) -> (f64, f64) {
        let mut l1 = 0.0f64;
        for (u, v) in x.iter().zip(y) {
            l1 += (u - v).abs();
        }
        (l1, 0.0)
    }
    let block = match kind {
        UtilityKind::Recall => block_l1,
        UtilityKind::Precision => block,
    };
    let (l1_pages, linf_pages) = block(&a.pages, &b.pages);
    let (l1_queries, linf_queries) = block(&a.queries, &b.queries);
    let (l1_templates, linf_templates) = block(&a.templates, &b.templates);
    BlockDeltas {
        l1_pages,
        l1_queries,
        l1_templates,
        linf_pages,
        linf_queries,
        linf_templates,
    }
}

/// Effective page/template side weights of a query update and the
/// two-sweep query contraction factor ρ.
fn side_weights(cfg: &WalkConfig) -> (f64, f64, f64) {
    let keep = 1.0 - cfg.alpha;
    let (bp, bt) = if cfg.missing_side_is_zero {
        (cfg.page_template_balance, 1.0 - cfg.page_template_balance)
    } else {
        // A lone side takes full weight, so neither side's coefficient
        // can be assumed below 1.
        (1.0, 1.0)
    };
    (bp, bt, keep * keep * (bp + bt))
}

/// [`solve_fused_detailed`] unrolled into caller-paced sweeps with a
/// certified per-sweep tail bound on each system's query block.
///
/// [`solve_fused_detailed`]: crate::solve_fused_detailed
pub struct FusedTruncatedSolver<'g> {
    g: &'g ReinforcementGraph,
    kind: UtilityKind,
    regs: Vec<Regularization>,
    cfg: WalkConfig,
    curs: Vec<Utilities>,
    nexts: Vec<Utilities>,
    sweeps: Vec<usize>,
    active: Vec<bool>,
    deltas: Vec<Option<BlockDeltas>>,
    iters: usize,
    span: l2q_obs::SpanTimer,
    /// Per-query maximum incoming coefficient from the page / template
    /// side (Recall only; the per-query tail refinement needs them).
    mx_page_in: Vec<f64>,
    mx_tmpl_in: Vec<f64>,
}

impl<'g> FusedTruncatedSolver<'g> {
    /// Start `regs.len()` same-kind systems exactly as
    /// `solve_fused_detailed` would: warm iterate when given, else the
    /// regularization vector.
    pub fn new(
        g: &'g ReinforcementGraph,
        kind: UtilityKind,
        regs: Vec<Regularization>,
        cfg: &WalkConfig,
        warms: Vec<Option<Utilities>>,
    ) -> Self {
        let k = regs.len();
        assert_eq!(warms.len(), k, "one warm-start slot per system");
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha out of range");
        for reg in &regs {
            assert_eq!(reg.pages.len(), g.n_pages(), "page regularization shape");
            assert_eq!(
                reg.queries.len(),
                g.n_queries(),
                "query regularization shape"
            );
            assert_eq!(
                reg.templates.len(),
                g.n_templates(),
                "template regularization shape"
            );
        }
        let span = l2q_obs::span!("graph_solve");
        let curs: Vec<Utilities> = regs
            .iter()
            .zip(warms)
            .map(|(reg, warm)| match warm {
                Some(w) => {
                    assert_eq!(w.pages.len(), g.n_pages(), "warm-start page shape");
                    assert_eq!(w.queries.len(), g.n_queries(), "warm-start query shape");
                    assert_eq!(
                        w.templates.len(),
                        g.n_templates(),
                        "warm-start template shape"
                    );
                    w
                }
                None => Utilities {
                    pages: reg.pages.clone(),
                    queries: reg.queries.clone(),
                    templates: reg.templates.clone(),
                },
            })
            .collect();
        let nexts: Vec<Utilities> = (0..k)
            .map(|_| Utilities {
                pages: vec![0.0; g.n_pages()],
                queries: vec![0.0; g.n_queries()],
                templates: vec![0.0; g.n_templates()],
            })
            .collect();
        // Max incoming coefficient per *sender*, not per edge: parallel
        // edges from the same page (or template) act as one sender whose
        // coefficients add, and the bound must cover that sum.
        let mut acc = vec![0.0f64; g.n_pages().max(g.n_templates())];
        let mut mx = |edges: &[crate::graph::Edge], nrm: &[f64]| -> f64 {
            for (e, &c) in edges.iter().zip(nrm) {
                acc[e.to as usize] += c;
            }
            let mut m = 0.0f64;
            for e in edges {
                let s = &mut acc[e.to as usize];
                m = m.max(*s);
                *s = 0.0;
            }
            m
        };
        let (mx_page_in, mx_tmpl_in) = match kind {
            UtilityKind::Recall => (
                (0..g.n_queries())
                    .map(|q| mx(g.query_pages(q), g.query_pages_nrm(q)))
                    .collect(),
                (0..g.n_queries())
                    .map(|q| mx(g.query_templates(q), g.query_templates_nrm(q)))
                    .collect(),
            ),
            UtilityKind::Precision => (Vec::new(), Vec::new()),
        };
        Self {
            g,
            kind,
            regs,
            cfg: *cfg,
            curs,
            nexts,
            sweeps: vec![0; k],
            active: vec![true; k],
            deltas: vec![None; k],
            iters: 0,
            span,
            mx_page_in,
            mx_tmpl_in,
        }
    }

    /// Execute one fused Jacobi sweep. Returns `false` — without
    /// sweeping — once every system converged or the sweep cap is hit,
    /// mirroring the fused solver's loop exit conditions.
    pub fn sweep(&mut self) -> bool {
        if self.iters >= self.cfg.max_iters || !self.active.iter().any(|&x| x) {
            return false;
        }
        let k = self.regs.len();
        if matches!(self.kind, UtilityKind::Recall) && k == 3 && self.active.iter().all(|&x| x) {
            step_fused3_recall(self.g, &self.regs, &self.cfg, &self.curs, &mut self.nexts);
        } else {
            step_fused(
                self.g,
                self.kind,
                &self.regs,
                &self.cfg,
                &self.curs,
                &mut self.nexts,
                &self.active,
            );
        }
        self.iters += 1;
        for i in 0..k {
            if !self.active[i] {
                continue;
            }
            self.sweeps[i] += 1;
            let d = block_deltas(&self.curs[i], &self.nexts[i], self.kind);
            debug_assert_eq!(d.total_l1(), l1_delta(&self.curs[i], &self.nexts[i]));
            std::mem::swap(&mut self.curs[i], &mut self.nexts[i]);
            if d.total_l1() < self.cfg.tolerance {
                self.active[i] = false;
            }
            self.deltas[i] = Some(d);
        }
        true
    }

    /// True once every system's L1 delta crossed the tolerance.
    pub fn all_converged(&self) -> bool {
        !self.active.iter().any(|&x| x)
    }

    /// System `i`'s current query iterate.
    pub fn queries(&self, i: usize) -> &[f64] {
        &self.curs[i].queries
    }

    /// Certified bound on `max_q |queries(i)[q] − fixpoint_q|`: no query
    /// utility of system `i` is farther than this from its true
    /// fixpoint value. `INFINITY` before the system's first sweep or
    /// when the contraction factor ρ ≥ 1 (see module docs).
    pub fn tail(&self, i: usize) -> f64 {
        let Some(d) = &self.deltas[i] else {
            return f64::INFINITY;
        };
        let keep = 1.0 - self.cfg.alpha;
        let (bp, bt, rho) = side_weights(&self.cfg);
        if !rho.is_finite() || rho >= 1.0 {
            return f64::INFINITY;
        }
        let (dp, dq, dt) = match self.kind {
            // Recall coefficients sum to 1 down each sender column, so
            // block L1 norms contract; Precision averages have unit
            // coefficient sums per receiver, so block L∞ norms do.
            UtilityKind::Recall => (d.l1_pages, d.l1_queries, d.l1_templates),
            UtilityKind::Precision => (d.linf_pages, d.linf_queries, d.linf_templates),
        };
        (keep * (bp * dp + bt * dt) + rho * dq) / (1.0 - rho)
    }

    /// Scalar coefficients `(a, b)` of system `i`'s per-query tail
    /// refinement: `tail_q = min(a·mxP_q + b·mxT_q, tail(i))` with the
    /// per-query maxima from [`Self::max_in_coeffs`] — so one sweep's
    /// refinement costs O(1) per inspected query instead of O(n).
    /// `None` when the refinement doesn't apply (Precision systems,
    /// ρ ≥ 1, or no sweep yet): every query then falls back to the
    /// block tail.
    pub fn query_tail_coeffs(&self, i: usize) -> Option<(f64, f64)> {
        let t = self.tail(i);
        match (&self.deltas[i], self.kind) {
            (Some(d), UtilityKind::Recall) if t.is_finite() => {
                let keep = 1.0 - self.cfg.alpha;
                let (bp, bt, _) = side_weights(&self.cfg);
                let s_p = d.l1_pages + keep * (d.l1_queries + t);
                let s_t = d.l1_templates + keep * (d.l1_queries + t);
                Some((keep * bp * s_p, keep * bt * s_t))
            }
            _ => None,
        }
    }

    /// Per-query maximum incoming coefficient from the page / template
    /// side (empty for Precision systems, where the refinement is
    /// disabled).
    pub fn max_in_coeffs(&self) -> (&[f64], &[f64]) {
        (&self.mx_page_in, &self.mx_tmpl_in)
    }

    /// Per-query certified tails of system `i`, written into `out` (one
    /// entry per query, `min(block tail, per-query refinement)`; see the
    /// module docs). Falls back to the block tail for every query when
    /// the refinement doesn't apply (Precision systems, ρ ≥ 1, or no
    /// sweep yet).
    pub fn query_tails_into(&self, i: usize, out: &mut Vec<f64>) {
        let t = self.tail(i);
        out.clear();
        let n = self.g.n_queries();
        match self.query_tail_coeffs(i) {
            Some((a, b)) => {
                out.extend((0..n).map(|q| (a * self.mx_page_in[q] + b * self.mx_tmpl_in[q]).min(t)))
            }
            None => out.extend(std::iter::repeat_n(t, n)),
        }
    }

    /// Sweep the remaining systems to convergence (or the cap). After
    /// this, the iterates match `solve_fused_detailed` bit for bit.
    pub fn run_to_completion(&mut self) {
        while self.sweep() {}
    }

    /// Finish the solve: record per-system sweep counts, mark the span
    /// `truncated` (stopped early by the caller) or `maxed` (hit the
    /// sweep cap), and hand back `(utilities, sweeps)` in input order.
    pub fn finish(mut self) -> Vec<(Utilities, usize)> {
        if self.active.iter().any(|&x| x) {
            self.span.set_status(if self.iters >= self.cfg.max_iters {
                "maxed"
            } else {
                "truncated"
            });
        }
        for &s in &self.sweeps {
            sweeps_histogram().record(s as f64);
        }
        let Self {
            curs, sweeps, span, ..
        } = self;
        drop(span); // records graph_solve_seconds for the whole solve
        curs.into_iter().zip(sweeps).collect()
    }
}

/// `c * m` treating an absent contribution (`c == 0`) as exactly zero
/// even when the bound `m` is infinite.
fn mul0(c: f64, m: f64) -> f64 {
    if c == 0.0 {
        0.0
    } else {
        c * m
    }
}

/// Per-query upper bounds on the *true fixpoint* query utilities, from
/// graph structure and regularization alone (no sweeps).
///
/// Let `s_in(v)` be a vertex's incoming coefficient sum (Recall: sum of
/// sender-normalized weights into `v`; Precision: 1 if the side has
/// edges, else 0 — a receiver average of bounded values is bounded).
/// Taking block maxima `M_P, M_Q, M_T` of the fixpoint and bounding each
/// update by in-strength × block max yields a linear system in the
/// maxima whose solution gives, per query `q` with side in-strengths
/// `sP_q, sT_q`:
///
/// ```text
/// ub_q = keep·(B_P·sP_q·M_P + B_T·sT_q·M_T) + α·Û_q
/// ```
///
/// Requires non-negative regularization (all of this crate's
/// regularizations are); on dense graphs the linear system can be
/// singular-or-worse (`denom ≤ 0`), in which case connected queries get
/// `INFINITY` — a valid, useless bound. A disconnected query's bound is
/// exactly its fixpoint `α·Û_q`.
pub fn static_query_upper_bounds(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
) -> Vec<f64> {
    StaticBoundsContext::new(g, kind, cfg).query_upper_bounds(reg)
}

/// The regularization-independent half of [`static_query_upper_bounds`]:
/// per-vertex in-strengths and their block maxima are graph constants,
/// so callers bounding several walks over the *same* graph (the
/// context-aware selection step solves three) build this once and derive
/// each walk's bounds from its regularization maxima alone — an
/// O(pages + templates + queries) scan instead of an O(edges) sweep per
/// walk.
pub struct StaticBoundsContext {
    alpha: f64,
    bp: f64,
    bt: f64,
    n_pages: usize,
    n_templates: usize,
    /// Per-query page-side / template-side in-strengths.
    s_q_pages: Vec<f64>,
    s_q_templates: Vec<f64>,
    /// Block maxima of the receiver in-strengths.
    c_p: f64,
    c_t: f64,
    i_p: f64,
    i_t: f64,
}

impl StaticBoundsContext {
    /// Scan the graph's in-strengths once; see [`static_query_upper_bounds`].
    pub fn new(g: &ReinforcementGraph, kind: UtilityKind, cfg: &WalkConfig) -> Self {
        // In-strengths per receiving vertex, by class.
        let gate = |deg: f64| if deg > 0.0 { 1.0 } else { 0.0 };
        let (s_pages, s_templates, s_q_pages, s_q_templates): (
            Vec<f64>,
            Vec<f64>,
            Vec<f64>,
            Vec<f64>,
        ) = match kind {
            UtilityKind::Recall => (
                (0..g.n_pages())
                    .map(|p| g.page_queries_nrm(p).iter().sum())
                    .collect(),
                (0..g.n_templates())
                    .map(|t| g.template_queries_nrm(t).iter().sum())
                    .collect(),
                (0..g.n_queries())
                    .map(|q| g.query_pages_nrm(q).iter().sum())
                    .collect(),
                (0..g.n_queries())
                    .map(|q| g.query_templates_nrm(q).iter().sum())
                    .collect(),
            ),
            UtilityKind::Precision => (
                g.page_deg.iter().map(|&d| gate(d)).collect(),
                g.template_deg.iter().map(|&d| gate(d)).collect(),
                g.query_page_deg.iter().map(|&d| gate(d)).collect(),
                g.query_template_deg.iter().map(|&d| gate(d)).collect(),
            ),
        };
        let max = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x));
        Self {
            alpha: cfg.alpha,
            bp: side_weights(cfg).0,
            bt: side_weights(cfg).1,
            n_pages: g.n_pages(),
            n_templates: g.n_templates(),
            c_p: max(&s_pages), // strongest page receiver
            c_t: max(&s_templates),
            i_p: max(&s_q_pages), // strongest query page-side receiver
            i_t: max(&s_q_templates),
            s_q_pages,
            s_q_templates,
        }
    }

    /// Bounds for one walk's regularization over the context's graph.
    pub fn query_upper_bounds(&self, reg: &Regularization) -> Vec<f64> {
        assert_eq!(reg.pages.len(), self.n_pages, "page regularization shape");
        assert_eq!(
            reg.queries.len(),
            self.s_q_pages.len(),
            "query regularization shape"
        );
        assert_eq!(
            reg.templates.len(),
            self.n_templates,
            "template regularization shape"
        );
        assert!(
            reg.pages
                .iter()
                .chain(&reg.queries)
                .chain(&reg.templates)
                .all(|&x| x >= 0.0),
            "static bounds need non-negative regularization"
        );

        let a = self.alpha;
        let keep = 1.0 - a;
        let (bp, bt) = (self.bp, self.bt);
        let (c_p, c_t, i_p, i_t) = (self.c_p, self.c_t, self.i_p, self.i_t);
        let max = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x));
        let mr_p = max(&reg.pages);
        let mr_t = max(&reg.templates);
        let mr_q = max(&reg.queries);

        // Fixpoint block maxima: M_P ≤ keep·c_p·M_Q + α·mr_p (same for
        // templates), M_Q ≤ keep·(B_P·i_p·M_P + B_T·i_t·M_T) + α·mr_q.
        let denom = 1.0 - keep * keep * (bp * i_p * c_p + bt * i_t * c_t);
        let m_q = if denom > 0.0 {
            (keep * a * (bp * i_p * mr_p + bt * i_t * mr_t) + a * mr_q) / denom
        } else {
            f64::INFINITY
        };
        let m_p = mul0(keep * c_p, m_q) + a * mr_p;
        let m_t = mul0(keep * c_t, m_q) + a * mr_t;

        (0..self.s_q_pages.len())
            .map(|q| {
                keep * (mul0(bp * self.s_q_pages[q], m_p) + mul0(bt * self.s_q_templates[q], m_t))
                    + a * reg.queries[q]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::solver::{solve_detailed, solve_fused_detailed, Scheme};

    /// Fig. 2 pages/queries plus two templates so every block is live.
    fn fixture() -> ReinforcementGraph {
        let mut b = GraphBuilder::new(6, 5, 2);
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 1.0)
            .page_query(2, 0, 1.0);
        b.page_query(0, 1, 1.0).page_query(1, 1, 1.0);
        b.page_query(2, 2, 1.0).page_query(3, 2, 1.0);
        b.page_query(3, 3, 1.0)
            .page_query(4, 3, 1.0)
            .page_query(5, 3, 1.0);
        b.page_query(5, 4, 1.0);
        b.query_template(0, 0, 1.0).query_template(1, 0, 1.0);
        b.query_template(3, 1, 1.0).query_template(4, 1, 1.0);
        b.build()
    }

    fn relevance() -> Vec<bool> {
        vec![true, true, true, true, false, false]
    }

    fn context_regs(g: &ReinforcementGraph) -> Vec<Regularization> {
        let mut regs = vec![
            Regularization::recall_from_relevance(g, &relevance()),
            Regularization::recall_from_relevance(g, &[true, false, true, false, true, false]),
            Regularization::recall_from_relevance(g, &vec![true; g.n_pages()]),
        ];
        regs[1].templates[0] = 0.4; // exercise the template block
        regs
    }

    #[test]
    fn run_to_completion_matches_the_fused_solver_bitwise() {
        let g = fixture();
        let cfg = WalkConfig::default();
        for kind in [UtilityKind::Recall, UtilityKind::Precision] {
            let regs = context_regs(&g);
            let reference = solve_fused_detailed(&g, kind, &regs, &cfg, vec![None, None, None]);
            // Mixed warm/cold second round, as the incremental phase produces.
            let warms = vec![Some(reference[0].0.clone()), None, None];
            let reference_warm = solve_fused_detailed(&g, kind, &regs, &cfg, warms.clone());

            for (warm_set, want) in [
                (vec![None, None, None], &reference),
                (warms, &reference_warm),
            ] {
                let mut s = FusedTruncatedSolver::new(&g, kind, context_regs(&g), &cfg, warm_set);
                s.run_to_completion();
                let got = s.finish();
                for ((gu, gs), (wu, ws)) in got.iter().zip(want.iter()) {
                    assert_eq!(gs, ws, "sweep counts diverged");
                    assert_eq!(gu.pages, wu.pages);
                    assert_eq!(gu.queries, wu.queries);
                    assert_eq!(gu.templates, wu.templates);
                }
            }
        }
    }

    #[test]
    fn tail_dominates_the_true_truncation_error_at_every_sweep() {
        let g = fixture();
        let cfg = WalkConfig::default();
        let tight = WalkConfig {
            max_iters: 2000,
            tolerance: 1e-14,
            ..cfg
        };
        for kind in [UtilityKind::Recall, UtilityKind::Precision] {
            let regs = context_regs(&g);
            let exact: Vec<Utilities> = regs
                .iter()
                .map(|r| solve_detailed(&g, kind, r, &tight, Scheme::Jacobi, None).0)
                .collect();
            let mut s = FusedTruncatedSolver::new(&g, kind, regs, &cfg, vec![None, None, None]);
            assert!(s.tail(0).is_infinite(), "no bound before the first sweep");
            let mut prev = [f64::INFINITY; 3];
            let mut qtails = Vec::new();
            while s.sweep() {
                for i in 0..3 {
                    let tail = s.tail(i);
                    s.query_tails_into(i, &mut qtails);
                    for (q, ((&a, &b), &tq)) in s
                        .queries(i)
                        .iter()
                        .zip(&exact[i].queries)
                        .zip(&qtails)
                        .enumerate()
                    {
                        let err = (a - b).abs();
                        assert!(
                            err <= tail,
                            "{kind:?} system {i}: true error {err} above tail {tail}"
                        );
                        assert!(
                            err <= tq,
                            "{kind:?} system {i} q{q}: error {err} above query tail {tq}"
                        );
                        assert!(tq <= tail, "query tails refine the block tail");
                    }
                    // Monotone up to float rounding in the delta folds.
                    assert!(
                        tail <= prev[i] * (1.0 + 1e-12),
                        "tail must shrink monotonically"
                    );
                    prev[i] = tail;
                }
            }
        }
    }

    #[test]
    fn early_stop_then_completion_still_lands_on_the_fixpoint() {
        let g = fixture();
        let cfg = WalkConfig::default();
        let regs = context_regs(&g);
        let want =
            solve_fused_detailed(&g, UtilityKind::Recall, &regs, &cfg, vec![None, None, None]);
        let mut s =
            FusedTruncatedSolver::new(&g, UtilityKind::Recall, regs, &cfg, vec![None, None, None]);
        for _ in 0..5 {
            assert!(s.sweep(), "fixture needs more than 5 sweeps");
        }
        // A caller that inspected tails and declined to certify resumes.
        s.run_to_completion();
        let got = s.finish();
        for ((gu, gs), (wu, ws)) in got.iter().zip(want.iter()) {
            assert_eq!(gs, ws);
            assert_eq!(gu.queries, wu.queries);
        }
    }

    #[test]
    fn static_bounds_dominate_the_solved_utilities() {
        let g = fixture();
        let cfg = WalkConfig::default();
        let tight = WalkConfig {
            max_iters: 2000,
            tolerance: 1e-14,
            ..cfg
        };
        for kind in [UtilityKind::Recall, UtilityKind::Precision] {
            for reg in context_regs(&g) {
                let ub = static_query_upper_bounds(&g, kind, &reg, &cfg);
                let u = solve_detailed(&g, kind, &reg, &tight, Scheme::Jacobi, None).0;
                for (q, (&b, &x)) in ub.iter().zip(&u.queries).enumerate() {
                    assert!(b >= x, "{kind:?} q{q}: bound {b} below utility {x}");
                }
            }
        }
    }

    #[test]
    fn disconnected_query_bound_is_exactly_its_regularization_share() {
        let mut b = GraphBuilder::new(2, 3, 1);
        b.page_query(0, 0, 1.0).page_query(1, 1, 1.0);
        b.query_template(0, 0, 1.0);
        let g = b.build(); // query 2 has no edges at all
        let cfg = WalkConfig::default();
        let mut reg = Regularization::zeros(&g);
        reg.queries[2] = 0.8;
        let ub = static_query_upper_bounds(&g, UtilityKind::Recall, &reg, &cfg);
        assert_eq!(ub[2], cfg.alpha * 0.8);
        let u = solve_detailed(&g, UtilityKind::Recall, &reg, &cfg, Scheme::Jacobi, None).0;
        assert_eq!(u.queries[2], ub[2], "disconnected bound must be tight");
    }

    #[test]
    fn unbounded_contraction_disables_tails_but_not_the_solve() {
        let g = fixture();
        let cfg = WalkConfig {
            missing_side_is_zero: false, // ρ = 2·keep² > 1
            ..WalkConfig::default()
        };
        let regs = context_regs(&g);
        let want =
            solve_fused_detailed(&g, UtilityKind::Recall, &regs, &cfg, vec![None, None, None]);
        let mut s =
            FusedTruncatedSolver::new(&g, UtilityKind::Recall, regs, &cfg, vec![None, None, None]);
        while s.sweep() {
            for i in 0..3 {
                assert!(s.tail(i).is_infinite(), "ρ ≥ 1 must never certify");
            }
        }
        let got = s.finish();
        for ((gu, _), (wu, _)) in got.iter().zip(want.iter()) {
            assert_eq!(gu.queries, wu.queries);
        }
    }
}
