//! Iterative solver for the regularized utility-inference fixpoint
//! (paper Eq. 13): `U(v) = (1−α)·F({U(v′) | v′ ∈ N(v)}) + α·Û(v)`.
//!
//! Two aggregation kernels instantiate `F`:
//!
//! * **Precision** (backward walk, Eq. 6/8/15/17): each vertex takes the
//!   weighted *average* of its neighbors' utilities — normalization on the
//!   receiver's own degree.
//! * **Recall** (forward walk, Eq. 7/9/16/18): each vertex takes the sum of
//!   neighbor utilities where every neighbor *splits* its utility across
//!   its own edges — normalization on the sender's degree.
//!
//! Query vertices have two neighbor classes (pages and templates); their
//! aggregate is the balanced combination of the page-side and
//! template-side estimates (paper Sect. IV-A: "we only consider a balanced
//! influence from pages and from templates"), with the balance exposed as
//! a config knob for the ablation bench.
//!
//! Both walks are the paper's random walks with restart: the restart
//! probability is α and the preference vector is the utility
//! regularization Û. The solver runs standard iterative updating to the
//! stationary distribution — "it typically converges in 50 iterations",
//! and each iteration is `O(|V| + |E|)`.

use crate::graph::ReinforcementGraph;
use std::sync::OnceLock;

/// Which utility the walk infers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtilityKind {
    /// Probabilistic precision `P` (backward walk).
    Precision,
    /// Probabilistic recall `R` (forward walk).
    Recall,
}

/// Walk configuration.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Restart / regularization parameter α (paper default 0.15).
    pub alpha: f64,
    /// Maximum iterations (paper: "typically converges in 50").
    pub max_iters: usize,
    /// L1-change convergence threshold.
    pub tolerance: f64,
    /// Weight of the page-side estimate in a query's combination with the
    /// template side (0.5 = the paper's balanced influence).
    pub page_template_balance: f64,
    /// How a query with only one neighbor class combines: `true` (default,
    /// the paper's plain "taking their average") treats the missing side
    /// as zero, damping queries that lack page evidence or lack a
    /// template; `false` renormalizes so the present side gets full
    /// weight. The ablation bench compares both.
    pub missing_side_is_zero: bool,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            max_iters: 100,
            tolerance: 1e-9,
            page_template_balance: 0.5,
            missing_side_is_zero: true,
        }
    }
}

/// Inferred utilities for every vertex class.
#[derive(Clone, Debug, Default)]
pub struct Utilities {
    /// Per-page utility.
    pub pages: Vec<f64>,
    /// Per-query utility.
    pub queries: Vec<f64>,
    /// Per-template utility.
    pub templates: Vec<f64>,
}

/// Utility regularization Û per vertex class (entries default to 0 = "no
/// regularization", paper Sect. III).
#[derive(Clone, Debug, Default)]
pub struct Regularization {
    /// Û over pages.
    pub pages: Vec<f64>,
    /// Û over queries.
    pub queries: Vec<f64>,
    /// Û over templates.
    pub templates: Vec<f64>,
}

impl Regularization {
    /// All-zero regularization shaped for `g`.
    pub fn zeros(g: &ReinforcementGraph) -> Self {
        Self {
            pages: vec![0.0; g.n_pages()],
            queries: vec![0.0; g.n_queries()],
            templates: vec![0.0; g.n_templates()],
        }
    }

    /// Precision regularization from page relevance: `P̂(p) = Y(p)`
    /// (paper Eq. 11).
    pub fn precision_from_relevance(g: &ReinforcementGraph, relevant: &[bool]) -> Self {
        assert_eq!(relevant.len(), g.n_pages());
        let mut r = Self::zeros(g);
        for (i, &rel) in relevant.iter().enumerate() {
            r.pages[i] = if rel { 1.0 } else { 0.0 };
        }
        r
    }

    /// Recall regularization from page relevance:
    /// `R̂(p) = Y(p) / Σ_{p'} Y(p')` (paper Eq. 12). All-zero if no page is
    /// relevant.
    pub fn recall_from_relevance(g: &ReinforcementGraph, relevant: &[bool]) -> Self {
        assert_eq!(relevant.len(), g.n_pages());
        let mut r = Self::zeros(g);
        let total = relevant.iter().filter(|&&x| x).count();
        if total > 0 {
            let share = 1.0 / total as f64;
            for (i, &rel) in relevant.iter().enumerate() {
                if rel {
                    r.pages[i] = share;
                }
            }
        }
        r
    }
}

/// Iteration scheme for the fixpoint solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Synchronous (Jacobi) sweeps: every vertex updates from the previous
    /// iterate. Matches the paper's "standard iterative updating".
    #[default]
    Jacobi,
    /// In-place (Gauss–Seidel) sweeps: each vertex class updates in order
    /// (pages, templates, queries) reading already-updated values. Same
    /// fixpoint — the update map is a contraction with a unique fixed
    /// point — reached in roughly half the sweeps. The efficiency knob the
    /// paper defers to the personalized-PageRank literature it cites.
    GaussSeidel,
}

/// Solve the fixpoint for the requested utility (Jacobi scheme).
pub fn solve(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
) -> Utilities {
    solve_with_scheme(g, kind, reg, cfg, Scheme::Jacobi)
}

/// Sweeps-executed histogram of the global metrics registry (count-shaped
/// buckets; the latency span around the whole solve lives in
/// `graph_solve_seconds`).
fn sweeps_histogram() -> &'static std::sync::Arc<l2q_obs::Histogram> {
    static H: OnceLock<std::sync::Arc<l2q_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        l2q_obs::global().histogram_with_bounds(
            "graph_solve_sweeps",
            (0..10).map(|i| f64::powi(2.0, i)).collect(),
        )
    })
}

/// Solve the fixpoint with an explicit iteration scheme.
pub fn solve_with_scheme(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    scheme: Scheme,
) -> Utilities {
    assert_eq!(reg.pages.len(), g.n_pages(), "page regularization shape");
    assert_eq!(
        reg.queries.len(),
        g.n_queries(),
        "query regularization shape"
    );
    assert_eq!(
        reg.templates.len(),
        g.n_templates(),
        "template regularization shape"
    );
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha out of range");

    let _span = l2q_obs::span!("graph_solve");
    let mut sweeps = 0usize;

    // Initialize at the regularization (any start converges; this one is
    // closest to the fixpoint in practice).
    let mut cur = Utilities {
        pages: reg.pages.clone(),
        queries: reg.queries.clone(),
        templates: reg.templates.clone(),
    };

    let mut next = Utilities {
        pages: vec![0.0; g.n_pages()],
        queries: vec![0.0; g.n_queries()],
        templates: vec![0.0; g.n_templates()],
    };

    match scheme {
        Scheme::Jacobi => {
            for _ in 0..cfg.max_iters {
                step(g, kind, reg, cfg, &cur, &mut next);
                sweeps += 1;
                let delta = l1_delta(&cur, &next);
                std::mem::swap(&mut cur, &mut next);
                if delta < cfg.tolerance {
                    break;
                }
            }
        }
        Scheme::GaussSeidel => {
            let _ = next; // single-buffer scheme
            for _ in 0..cfg.max_iters {
                let prev = cur.clone();
                step_inplace(g, kind, reg, cfg, &mut cur);
                sweeps += 1;
                if l1_delta(&prev, &cur) < cfg.tolerance {
                    break;
                }
            }
        }
    }
    sweeps_histogram().record(sweeps as f64);
    cur
}

/// One synchronous update of all vertices.
fn step(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    cur: &Utilities,
    next: &mut Utilities,
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;

    match kind {
        UtilityKind::Precision => {
            // Pages: average over their query neighbors (Eq. 8).
            for p in 0..g.n_pages() {
                let deg = g.page_deg[p];
                let f = if deg > 0.0 {
                    g.page_queries[p]
                        .iter()
                        .map(|e| e.weight * cur.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                next.pages[p] = keep * f + a * reg.pages[p];
            }
            // Templates: average over their query neighbors (Eq. 15).
            for t in 0..g.n_templates() {
                let deg = g.template_deg[t];
                let f = if deg > 0.0 {
                    g.template_queries[t]
                        .iter()
                        .map(|e| e.weight * cur.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                next.templates[t] = keep * f + a * reg.templates[t];
            }
            // Queries: balanced combination of the page-side average
            // (Eq. 6) and template-side average (Eq. 17).
            for q in 0..g.n_queries() {
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                let page_est = if pdeg > 0.0 {
                    Some(
                        g.query_pages[q]
                            .iter()
                            .map(|e| e.weight * cur.pages[e.to as usize])
                            .sum::<f64>()
                            / pdeg,
                    )
                } else {
                    None
                };
                let tmpl_est = if tdeg > 0.0 {
                    Some(
                        g.query_templates[q]
                            .iter()
                            .map(|e| e.weight * cur.templates[e.to as usize])
                            .sum::<f64>()
                            / tdeg,
                    )
                } else {
                    None
                };
                let f = combine(
                    page_est,
                    tmpl_est,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                next.queries[q] = keep * f + a * reg.queries[q];
            }
        }
        UtilityKind::Recall => {
            // Pages receive from queries, each query splitting over its
            // page neighbors (Eq. 9).
            for p in 0..g.n_pages() {
                let f = g.page_queries[p]
                    .iter()
                    .map(|e| {
                        let q = e.to as usize;
                        let sdeg = g.query_page_deg[q];
                        if sdeg > 0.0 {
                            e.weight / sdeg * cur.queries[q]
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>();
                next.pages[p] = keep * f + a * reg.pages[p];
            }
            // Templates receive from queries, each query splitting over
            // its template neighbors (Eq. 16).
            for t in 0..g.n_templates() {
                let f = g.template_queries[t]
                    .iter()
                    .map(|e| {
                        let q = e.to as usize;
                        let sdeg = g.query_template_deg[q];
                        if sdeg > 0.0 {
                            e.weight / sdeg * cur.queries[q]
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>();
                next.templates[t] = keep * f + a * reg.templates[t];
            }
            // Queries receive from pages (each page splitting over its
            // query neighbors, Eq. 7) and from templates (each template
            // splitting over its query neighbors, Eq. 18).
            for q in 0..g.n_queries() {
                let from_pages = if g.query_page_deg[q] > 0.0 {
                    Some(
                        g.query_pages[q]
                            .iter()
                            .map(|e| {
                                let p = e.to as usize;
                                let sdeg = g.page_deg[p];
                                if sdeg > 0.0 {
                                    e.weight / sdeg * cur.pages[p]
                                } else {
                                    0.0
                                }
                            })
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let from_templates = if g.query_template_deg[q] > 0.0 {
                    Some(
                        g.query_templates[q]
                            .iter()
                            .map(|e| {
                                let t = e.to as usize;
                                let sdeg = g.template_deg[t];
                                if sdeg > 0.0 {
                                    e.weight / sdeg * cur.templates[t]
                                } else {
                                    0.0
                                }
                            })
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let f = combine(
                    from_pages,
                    from_templates,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                next.queries[q] = keep * f + a * reg.queries[q];
            }
        }
    }
}

/// One Gauss–Seidel sweep: updates `u` in place, class by class (pages,
/// then templates, then queries), so later classes read freshly updated
/// values. Within a class no vertex reads another vertex of the same
/// class, so in-place updates are well-defined.
fn step_inplace(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    u: &mut Utilities,
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;

    match kind {
        UtilityKind::Precision => {
            for p in 0..g.n_pages() {
                let deg = g.page_deg[p];
                let f = if deg > 0.0 {
                    g.page_queries[p]
                        .iter()
                        .map(|e| e.weight * u.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                u.pages[p] = keep * f + a * reg.pages[p];
            }
            for t in 0..g.n_templates() {
                let deg = g.template_deg[t];
                let f = if deg > 0.0 {
                    g.template_queries[t]
                        .iter()
                        .map(|e| e.weight * u.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                u.templates[t] = keep * f + a * reg.templates[t];
            }
            for q in 0..g.n_queries() {
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                let page_est = if pdeg > 0.0 {
                    Some(
                        g.query_pages[q]
                            .iter()
                            .map(|e| e.weight * u.pages[e.to as usize])
                            .sum::<f64>()
                            / pdeg,
                    )
                } else {
                    None
                };
                let tmpl_est = if tdeg > 0.0 {
                    Some(
                        g.query_templates[q]
                            .iter()
                            .map(|e| e.weight * u.templates[e.to as usize])
                            .sum::<f64>()
                            / tdeg,
                    )
                } else {
                    None
                };
                let f = combine(
                    page_est,
                    tmpl_est,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                u.queries[q] = keep * f + a * reg.queries[q];
            }
        }
        UtilityKind::Recall => {
            for p in 0..g.n_pages() {
                let f = g.page_queries[p]
                    .iter()
                    .map(|e| {
                        let q = e.to as usize;
                        let sdeg = g.query_page_deg[q];
                        if sdeg > 0.0 {
                            e.weight / sdeg * u.queries[q]
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>();
                u.pages[p] = keep * f + a * reg.pages[p];
            }
            for t in 0..g.n_templates() {
                let f = g.template_queries[t]
                    .iter()
                    .map(|e| {
                        let q = e.to as usize;
                        let sdeg = g.query_template_deg[q];
                        if sdeg > 0.0 {
                            e.weight / sdeg * u.queries[q]
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>();
                u.templates[t] = keep * f + a * reg.templates[t];
            }
            for q in 0..g.n_queries() {
                let from_pages = if g.query_page_deg[q] > 0.0 {
                    Some(
                        g.query_pages[q]
                            .iter()
                            .map(|e| {
                                let p = e.to as usize;
                                let sdeg = g.page_deg[p];
                                if sdeg > 0.0 {
                                    e.weight / sdeg * u.pages[p]
                                } else {
                                    0.0
                                }
                            })
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let from_templates = if g.query_template_deg[q] > 0.0 {
                    Some(
                        g.query_templates[q]
                            .iter()
                            .map(|e| {
                                let t = e.to as usize;
                                let sdeg = g.template_deg[t];
                                if sdeg > 0.0 {
                                    e.weight / sdeg * u.templates[t]
                                } else {
                                    0.0
                                }
                            })
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let f = combine(
                    from_pages,
                    from_templates,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                u.queries[q] = keep * f + a * reg.queries[q];
            }
        }
    }
}

/// Combine page-side and template-side estimates with balance `b` (share
/// of the page side). With `missing_zero` a missing side contributes 0 to
/// the average; otherwise the present side takes full weight.
fn combine(page: Option<f64>, template: Option<f64>, b: f64, missing_zero: bool) -> f64 {
    match (page, template) {
        (Some(p), Some(t)) => b * p + (1.0 - b) * t,
        (Some(p), None) => {
            if missing_zero {
                b * p
            } else {
                p
            }
        }
        (None, Some(t)) => {
            if missing_zero {
                (1.0 - b) * t
            } else {
                t
            }
        }
        (None, None) => 0.0,
    }
}

fn l1_delta(a: &Utilities, b: &Utilities) -> f64 {
    let d = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(u, v)| (u - v).abs()).sum::<f64>();
    d(&a.pages, &b.pages) + d(&a.queries, &b.queries) + d(&a.templates, &b.templates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// The paper's Fig. 2 running example (no templates): 6 pages, 5
    /// queries, Y = RESEARCH relevant for p1..p4 (0-indexed 0..=3).
    fn fig2_graph() -> ReinforcementGraph {
        let mut b = GraphBuilder::new(6, 5, 0);
        // q1 parallel research -> p1 p2 p3
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 1.0)
            .page_query(2, 0, 1.0);
        // q2 hpc research -> p1 p2
        b.page_query(0, 1, 1.0).page_query(1, 1, 1.0);
        // q3 complexity -> p3 p4
        b.page_query(2, 2, 1.0).page_query(3, 2, 1.0);
        // q4 u illinois -> p4 p5 p6
        b.page_query(3, 3, 1.0)
            .page_query(4, 3, 1.0)
            .page_query(5, 3, 1.0);
        // q5 ibm -> p6
        b.page_query(5, 4, 1.0);
        b.build()
    }

    fn fig2_relevance() -> Vec<bool> {
        vec![true, true, true, true, false, false]
    }

    #[test]
    fn precision_ranks_focused_queries_above_generic_ones() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        // q1, q2, q3 retrieve only relevant pages; q4 retrieves 1/3
        // relevant; q5 only irrelevant.
        assert!(u.queries[0] > u.queries[3], "q1 > q4");
        assert!(u.queries[1] > u.queries[3], "q2 > q4");
        assert!(u.queries[2] > u.queries[3], "q3 > q4");
        assert!(u.queries[3] > u.queries[4], "q4 > q5");
    }

    #[test]
    fn recall_ranks_broad_relevant_queries_highest() {
        let g = fig2_graph();
        let reg = Regularization::recall_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Recall, &reg, &WalkConfig::default());
        // q1 covers 3 of 4 relevant pages; q2 and q3 cover 2; q5 covers 0.
        assert!(u.queries[0] > u.queries[1], "q1 > q2");
        assert!(u.queries[0] > u.queries[2], "q1 > q3");
        assert!(u.queries[1] > u.queries[4], "q2 > q5");
        assert!(u.queries[2] > u.queries[4], "q3 > q5");
    }

    #[test]
    fn precision_stays_within_unit_interval() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        for v in u.pages.iter().chain(&u.queries) {
            assert!((0.0..=1.0).contains(v), "precision out of bounds: {v}");
        }
    }

    #[test]
    fn recall_mass_is_bounded_by_total_regularization() {
        let g = fig2_graph();
        let reg = Regularization::recall_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Recall, &reg, &WalkConfig::default());
        let total_q: f64 = u.queries.iter().sum();
        // The forward walk redistributes at most the unit mass injected by
        // regularization.
        assert!(total_q <= 1.0 + 1e-9, "query recall mass {total_q} > 1");
        for v in u.pages.iter().chain(&u.queries) {
            assert!(*v >= 0.0);
        }
    }

    /// The paper's Fig. 6 domain-phase example: Andrew Ng with 3 pages, 3
    /// queries and 2 templates. The precision model must give
    /// P(t1) > P(t3) (t3 covers irrelevant p9) and the recall model
    /// R(t1) < R(t3) (t1 misses relevant p8).
    #[test]
    fn fig6_template_utilities_match_paper() {
        // pages: p7=0 (rel), p8=1 (rel), p9=2 (irrel)
        // queries: q6 "ai research"=0 -> p7; q7 "baidu"=1 -> p7;
        //          q8 "stanford"=2 -> p8, p9
        // templates: t1 "<topic> research"=0 abstracts q6;
        //            t3 "<institute>"=1 abstracts q7, q8
        let mut b = GraphBuilder::new(3, 3, 2);
        b.page_query(0, 0, 1.0);
        b.page_query(0, 1, 1.0);
        b.page_query(1, 2, 1.0).page_query(2, 2, 1.0);
        b.query_template(0, 0, 1.0);
        b.query_template(1, 1, 1.0).query_template(2, 1, 1.0);
        let g = b.build();
        let relevant = vec![true, true, false];

        let cfg = WalkConfig::default();
        let preg = Regularization::precision_from_relevance(&g, &relevant);
        let p = solve(&g, UtilityKind::Precision, &preg, &cfg);
        assert!(
            p.templates[0] > p.templates[1],
            "P(t1)={} must exceed P(t3)={}",
            p.templates[0],
            p.templates[1]
        );

        let rreg = Regularization::recall_from_relevance(&g, &relevant);
        let r = solve(&g, UtilityKind::Recall, &rreg, &cfg);
        assert!(
            r.templates[0] < r.templates[1],
            "R(t1)={} must be below R(t3)={}",
            r.templates[0],
            r.templates[1]
        );
    }

    #[test]
    fn isolated_vertices_get_only_regularization() {
        let g = GraphBuilder::new(2, 1, 1).build(); // no edges at all
        let mut reg = Regularization::zeros(&g);
        reg.pages[0] = 1.0;
        let cfg = WalkConfig::default();
        let u = solve(&g, UtilityKind::Precision, &reg, &cfg);
        assert!((u.pages[0] - cfg.alpha).abs() < 1e-9);
        assert_eq!(u.pages[1], 0.0);
        assert_eq!(u.queries[0], 0.0);
        assert_eq!(u.templates[0], 0.0);
    }

    #[test]
    fn solver_is_deterministic_and_converges() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let a = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        let b = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        assert_eq!(a.queries, b.queries);
        // Extra iterations change nothing beyond the geometric tail
        // (contraction factor 1−α per iteration).
        let more = solve(
            &g,
            UtilityKind::Precision,
            &reg,
            &WalkConfig {
                max_iters: 400,
                ..Default::default()
            },
        );
        for (x, y) in a.queries.iter().zip(&more.queries) {
            assert!((x - y).abs() < 1e-6, "residual {}", (x - y).abs());
        }
    }

    #[test]
    fn template_regularization_flows_to_queries() {
        // One page (irrelevant), two queries, two templates; template 0
        // regularized high.
        let mut b = GraphBuilder::new(1, 2, 2);
        b.page_query(0, 0, 1.0).page_query(0, 1, 1.0);
        b.query_template(0, 0, 1.0).query_template(1, 1, 1.0);
        let g = b.build();
        let mut reg = Regularization::zeros(&g);
        reg.templates[0] = 1.0;
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        assert!(
            u.queries[0] > u.queries[1],
            "query abstracted by the regularized template must score higher"
        );
    }

    #[test]
    fn gauss_seidel_reaches_the_same_fixpoint() {
        let g = fig2_graph();
        let cfg = WalkConfig {
            max_iters: 400,
            ..Default::default()
        };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision => {
                    Regularization::precision_from_relevance(&g, &fig2_relevance())
                }
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &fig2_relevance()),
            };
            let jacobi = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::Jacobi);
            let gs = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::GaussSeidel);
            for (a, b) in jacobi
                .pages
                .iter()
                .chain(&jacobi.queries)
                .zip(gs.pages.iter().chain(&gs.queries))
            {
                assert!((a - b).abs() < 1e-6, "schemes disagree: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gauss_seidel_converges_in_fewer_sweeps() {
        // At a tight sweep budget, Gauss–Seidel should be closer to the
        // converged fixpoint than Jacobi.
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let exact = solve_with_scheme(
            &g,
            UtilityKind::Precision,
            &reg,
            &WalkConfig {
                max_iters: 500,
                ..Default::default()
            },
            Scheme::Jacobi,
        );
        let budget = WalkConfig {
            max_iters: 8,
            tolerance: 0.0,
            ..Default::default()
        };
        let jac = solve_with_scheme(&g, UtilityKind::Precision, &reg, &budget, Scheme::Jacobi);
        let gs = solve_with_scheme(
            &g,
            UtilityKind::Precision,
            &reg,
            &budget,
            Scheme::GaussSeidel,
        );
        let err = |u: &Utilities| {
            u.queries
                .iter()
                .zip(&exact.queries)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(
            err(&gs) < err(&jac),
            "GS residual {} should beat Jacobi {}",
            err(&gs),
            err(&jac)
        );
    }

    #[test]
    fn solve_records_latency_and_sweep_metrics() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let lat = l2q_obs::global().histogram("graph_solve_seconds");
        let sweeps = super::sweeps_histogram();
        let (lat_before, sweeps_before) = (lat.count(), sweeps.count());
        solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        // The registry is process-global, so assert monotone growth.
        assert!(lat.count() > lat_before, "solve latency not recorded");
        assert!(sweeps.count() > sweeps_before, "sweep count not recorded");
        assert!(sweeps.sum() >= 1.0, "at least one sweep must run");
    }

    #[test]
    #[should_panic(expected = "page regularization shape")]
    fn shape_mismatch_panics() {
        let g = fig2_graph();
        let reg = Regularization::default();
        solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
    }
}
