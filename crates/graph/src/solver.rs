//! Iterative solver for the regularized utility-inference fixpoint
//! (paper Eq. 13): `U(v) = (1−α)·F({U(v′) | v′ ∈ N(v)}) + α·Û(v)`.
//!
//! Two aggregation kernels instantiate `F`:
//!
//! * **Precision** (backward walk, Eq. 6/8/15/17): each vertex takes the
//!   weighted *average* of its neighbors' utilities — normalization on the
//!   receiver's own degree.
//! * **Recall** (forward walk, Eq. 7/9/16/18): each vertex takes the sum of
//!   neighbor utilities where every neighbor *splits* its utility across
//!   its own edges — normalization on the sender's degree.
//!
//! Query vertices have two neighbor classes (pages and templates); their
//! aggregate is the balanced combination of the page-side and
//! template-side estimates (paper Sect. IV-A: "we only consider a balanced
//! influence from pages and from templates"), with the balance exposed as
//! a config knob for the ablation bench.
//!
//! Both walks are the paper's random walks with restart: the restart
//! probability is α and the preference vector is the utility
//! regularization Û. The solver runs standard iterative updating to the
//! stationary distribution — "it typically converges in 50 iterations",
//! and each iteration is `O(|V| + |E|)`.

use crate::graph::ReinforcementGraph;
use std::sync::OnceLock;

/// Which utility the walk infers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UtilityKind {
    /// Probabilistic precision `P` (backward walk).
    Precision,
    /// Probabilistic recall `R` (forward walk).
    Recall,
}

/// Walk configuration.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Restart / regularization parameter α (paper default 0.15).
    pub alpha: f64,
    /// Maximum iterations (paper: "typically converges in 50").
    pub max_iters: usize,
    /// L1-change convergence threshold.
    pub tolerance: f64,
    /// Weight of the page-side estimate in a query's combination with the
    /// template side (0.5 = the paper's balanced influence).
    pub page_template_balance: f64,
    /// How a query with only one neighbor class combines: `true` (default,
    /// the paper's plain "taking their average") treats the missing side
    /// as zero, damping queries that lack page evidence or lack a
    /// template; `false` renormalizes so the present side gets full
    /// weight. The ablation bench compares both.
    pub missing_side_is_zero: bool,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            max_iters: 100,
            tolerance: 1e-9,
            page_template_balance: 0.5,
            missing_side_is_zero: true,
        }
    }
}

/// Inferred utilities for every vertex class.
#[derive(Clone, Debug, Default)]
pub struct Utilities {
    /// Per-page utility.
    pub pages: Vec<f64>,
    /// Per-query utility.
    pub queries: Vec<f64>,
    /// Per-template utility.
    pub templates: Vec<f64>,
}

/// Utility regularization Û per vertex class (entries default to 0 = "no
/// regularization", paper Sect. III).
#[derive(Clone, Debug, Default)]
pub struct Regularization {
    /// Û over pages.
    pub pages: Vec<f64>,
    /// Û over queries.
    pub queries: Vec<f64>,
    /// Û over templates.
    pub templates: Vec<f64>,
}

impl Regularization {
    /// All-zero regularization shaped for `g`.
    pub fn zeros(g: &ReinforcementGraph) -> Self {
        Self {
            pages: vec![0.0; g.n_pages()],
            queries: vec![0.0; g.n_queries()],
            templates: vec![0.0; g.n_templates()],
        }
    }

    /// Precision regularization from page relevance: `P̂(p) = Y(p)`
    /// (paper Eq. 11).
    pub fn precision_from_relevance(g: &ReinforcementGraph, relevant: &[bool]) -> Self {
        assert_eq!(relevant.len(), g.n_pages());
        let mut r = Self::zeros(g);
        for (i, &rel) in relevant.iter().enumerate() {
            r.pages[i] = if rel { 1.0 } else { 0.0 };
        }
        r
    }

    /// Recall regularization from page relevance:
    /// `R̂(p) = Y(p) / Σ_{p'} Y(p')` (paper Eq. 12). All-zero if no page is
    /// relevant.
    pub fn recall_from_relevance(g: &ReinforcementGraph, relevant: &[bool]) -> Self {
        assert_eq!(relevant.len(), g.n_pages());
        let mut r = Self::zeros(g);
        let total = relevant.iter().filter(|&&x| x).count();
        if total > 0 {
            let share = 1.0 / total as f64;
            for (i, &rel) in relevant.iter().enumerate() {
                if rel {
                    r.pages[i] = share;
                }
            }
        }
        r
    }
}

/// Iteration scheme for the fixpoint solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Synchronous (Jacobi) sweeps: every vertex updates from the previous
    /// iterate. Matches the paper's "standard iterative updating".
    #[default]
    Jacobi,
    /// In-place (Gauss–Seidel) sweeps: each vertex class updates in order
    /// (pages, templates, queries) reading already-updated values. Same
    /// fixpoint — the update map is a contraction with a unique fixed
    /// point — reached in roughly half the sweeps. The efficiency knob the
    /// paper defers to the personalized-PageRank literature it cites.
    GaussSeidel,
}

/// Solve the fixpoint for the requested utility (Jacobi scheme).
pub fn solve(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
) -> Utilities {
    solve_with_scheme(g, kind, reg, cfg, Scheme::Jacobi)
}

/// Sweeps-executed histogram of the global metrics registry (count-shaped
/// buckets; the latency span around the whole solve lives in
/// `graph_solve_seconds`).
pub(crate) fn sweeps_histogram() -> &'static std::sync::Arc<l2q_obs::Histogram> {
    static H: OnceLock<std::sync::Arc<l2q_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        l2q_obs::global().histogram_with_bounds(
            "graph_solve_sweeps",
            (0..10).map(|i| f64::powi(2.0, i)).collect(),
        )
    })
}

/// Solve the fixpoint with an explicit iteration scheme.
pub fn solve_with_scheme(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    scheme: Scheme,
) -> Utilities {
    solve_detailed(g, kind, reg, cfg, scheme, None).0
}

/// Solve the fixpoint with an explicit scheme and an optional warm-start
/// iterate, returning the fixpoint plus the number of sweeps executed.
///
/// `warm` replaces the default cold start (the regularization vector).
/// Because the update map is a contraction with a unique fixed point, any
/// start converges to the same fixpoint within `cfg.tolerance`; a start
/// near the fixpoint — e.g. the previous harvest step's solution mapped
/// onto the current vertex set — just gets there in fewer sweeps.
pub fn solve_detailed(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    scheme: Scheme,
    warm: Option<Utilities>,
) -> (Utilities, usize) {
    assert_eq!(reg.pages.len(), g.n_pages(), "page regularization shape");
    assert_eq!(
        reg.queries.len(),
        g.n_queries(),
        "query regularization shape"
    );
    assert_eq!(
        reg.templates.len(),
        g.n_templates(),
        "template regularization shape"
    );
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha out of range");

    let mut span = l2q_obs::span!("graph_solve");
    let mut sweeps = 0usize;
    let mut converged = false;

    // Initialize at the warm iterate when given, else at the
    // regularization (any start converges; the regularization is closest
    // to the fixpoint among cheap cold starts).
    let mut cur = match warm {
        Some(w) => {
            assert_eq!(w.pages.len(), g.n_pages(), "warm-start page shape");
            assert_eq!(w.queries.len(), g.n_queries(), "warm-start query shape");
            assert_eq!(
                w.templates.len(),
                g.n_templates(),
                "warm-start template shape"
            );
            w
        }
        None => Utilities {
            pages: reg.pages.clone(),
            queries: reg.queries.clone(),
            templates: reg.templates.clone(),
        },
    };

    let mut next = Utilities {
        pages: vec![0.0; g.n_pages()],
        queries: vec![0.0; g.n_queries()],
        templates: vec![0.0; g.n_templates()],
    };

    match scheme {
        Scheme::Jacobi => {
            for _ in 0..cfg.max_iters {
                step(g, kind, reg, cfg, &cur, &mut next);
                sweeps += 1;
                let delta = l1_delta(&cur, &next);
                std::mem::swap(&mut cur, &mut next);
                if delta < cfg.tolerance {
                    converged = true;
                    break;
                }
            }
        }
        Scheme::GaussSeidel => {
            let _ = next; // single-buffer scheme
            for _ in 0..cfg.max_iters {
                let prev = cur.clone();
                step_inplace(g, kind, reg, cfg, &mut cur);
                sweeps += 1;
                if l1_delta(&prev, &cur) < cfg.tolerance {
                    converged = true;
                    break;
                }
            }
        }
    }
    if !converged {
        // Surfaces in the traced span (not the histogram): this solve hit
        // the sweep cap before crossing the tolerance.
        span.set_status("maxed");
    }
    sweeps_histogram().record(sweeps as f64);
    (cur, sweeps)
}

/// Solve several same-kind fixpoints on one graph together (Jacobi
/// scheme): each fused sweep loads every edge once and applies it to all
/// still-unconverged systems, so the graph traversal — the memory-bound
/// part of a sweep — amortizes across systems. This is the single-core
/// counterpart of solving the independent walks on threads.
///
/// Bit-identity with per-system [`solve_detailed`] holds by construction:
/// a system's update reads only its own iterate, its per-vertex
/// accumulation runs over edges in the same order as [`step`]'s, and a
/// system stops sweeping the moment its own L1 delta crosses the
/// tolerance (converged systems are skipped, not dragged along).
///
/// `warms[i]` warm-starts system `i` exactly as in [`solve_detailed`].
/// Returns `(fixpoint, sweeps)` per system, in input order.
pub fn solve_fused_detailed(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    regs: &[Regularization],
    cfg: &WalkConfig,
    warms: Vec<Option<Utilities>>,
) -> Vec<(Utilities, usize)> {
    let k = regs.len();
    assert_eq!(warms.len(), k, "one warm-start slot per system");
    assert!((0.0..=1.0).contains(&cfg.alpha), "alpha out of range");
    for reg in regs {
        assert_eq!(reg.pages.len(), g.n_pages(), "page regularization shape");
        assert_eq!(
            reg.queries.len(),
            g.n_queries(),
            "query regularization shape"
        );
        assert_eq!(
            reg.templates.len(),
            g.n_templates(),
            "template regularization shape"
        );
    }

    let mut span = l2q_obs::span!("graph_solve");
    let mut curs: Vec<Utilities> = regs
        .iter()
        .zip(warms)
        .map(|(reg, warm)| match warm {
            Some(w) => {
                assert_eq!(w.pages.len(), g.n_pages(), "warm-start page shape");
                assert_eq!(w.queries.len(), g.n_queries(), "warm-start query shape");
                assert_eq!(
                    w.templates.len(),
                    g.n_templates(),
                    "warm-start template shape"
                );
                w
            }
            None => Utilities {
                pages: reg.pages.clone(),
                queries: reg.queries.clone(),
                templates: reg.templates.clone(),
            },
        })
        .collect();
    let mut nexts: Vec<Utilities> = (0..k)
        .map(|_| Utilities {
            pages: vec![0.0; g.n_pages()],
            queries: vec![0.0; g.n_queries()],
            templates: vec![0.0; g.n_templates()],
        })
        .collect();
    let mut sweeps = vec![0usize; k];
    let mut active = vec![true; k];

    for _ in 0..cfg.max_iters {
        if !active.iter().any(|&x| x) {
            break;
        }
        if matches!(kind, UtilityKind::Recall) && k == 3 && active.iter().all(|&x| x) {
            step_fused3_recall(g, regs, cfg, &curs, &mut nexts);
        } else {
            step_fused(g, kind, regs, cfg, &curs, &mut nexts, &active);
        }
        for i in 0..k {
            if !active[i] {
                continue;
            }
            sweeps[i] += 1;
            let delta = l1_delta(&curs[i], &nexts[i]);
            std::mem::swap(&mut curs[i], &mut nexts[i]);
            if delta < cfg.tolerance {
                active[i] = false;
            }
        }
    }
    if active.iter().any(|&x| x) {
        // At least one system hit the sweep cap without converging.
        span.set_status("maxed");
    }
    for &s in &sweeps {
        sweeps_histogram().record(s as f64);
    }
    curs.into_iter().zip(sweeps).collect()
}

/// [`step_fused`] specialized for the hot case — three Recall systems,
/// all still active. The context walks of a selection step are exactly
/// this shape, and with scalar accumulators and a fixed unroll the
/// compiler keeps all three running sums in registers while the edge
/// list streams through once. Per-system arithmetic and edge order are
/// unchanged from [`step`], so the results stay bitwise equal to a solo
/// sweep.
pub(crate) fn step_fused3_recall(
    g: &ReinforcementGraph,
    regs: &[Regularization],
    cfg: &WalkConfig,
    curs: &[Utilities],
    nexts: &mut [Utilities],
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;
    let [c0, c1, c2] = curs else {
        unreachable!("fused3 takes exactly three systems")
    };
    let [n0, n1, n2] = nexts else {
        unreachable!("fused3 takes exactly three systems")
    };
    let [r0, r1, r2] = regs else {
        unreachable!("fused3 takes exactly three systems")
    };

    for p in 0..g.n_pages() {
        let (mut a0, mut a1, mut a2) = (0.0f64, 0.0f64, 0.0f64);
        for (e, &c) in g.page_queries(p).iter().zip(g.page_queries_nrm(p)) {
            let q = e.to as usize;
            a0 += c * c0.queries[q];
            a1 += c * c1.queries[q];
            a2 += c * c2.queries[q];
        }
        n0.pages[p] = keep * a0 + a * r0.pages[p];
        n1.pages[p] = keep * a1 + a * r1.pages[p];
        n2.pages[p] = keep * a2 + a * r2.pages[p];
    }
    for t in 0..g.n_templates() {
        let (mut a0, mut a1, mut a2) = (0.0f64, 0.0f64, 0.0f64);
        for (e, &c) in g.template_queries(t).iter().zip(g.template_queries_nrm(t)) {
            let q = e.to as usize;
            a0 += c * c0.queries[q];
            a1 += c * c1.queries[q];
            a2 += c * c2.queries[q];
        }
        n0.templates[t] = keep * a0 + a * r0.templates[t];
        n1.templates[t] = keep * a1 + a * r1.templates[t];
        n2.templates[t] = keep * a2 + a * r2.templates[t];
    }
    for q in 0..g.n_queries() {
        let pdeg = g.query_page_deg[q];
        let tdeg = g.query_template_deg[q];
        let (mut a0, mut a1, mut a2) = (0.0f64, 0.0f64, 0.0f64);
        for (e, &c) in g.query_pages(q).iter().zip(g.query_pages_nrm(q)) {
            let p = e.to as usize;
            a0 += c * c0.pages[p];
            a1 += c * c1.pages[p];
            a2 += c * c2.pages[p];
        }
        let (mut b0, mut b1, mut b2) = (0.0f64, 0.0f64, 0.0f64);
        for (e, &c) in g.query_templates(q).iter().zip(g.query_templates_nrm(q)) {
            let t = e.to as usize;
            b0 += c * c0.templates[t];
            b1 += c * c1.templates[t];
            b2 += c * c2.templates[t];
        }
        let has_p = pdeg > 0.0;
        let has_t = tdeg > 0.0;
        let bal = cfg.page_template_balance;
        let zero = cfg.missing_side_is_zero;
        let f0 = combine(has_p.then_some(a0), has_t.then_some(b0), bal, zero);
        let f1 = combine(has_p.then_some(a1), has_t.then_some(b1), bal, zero);
        let f2 = combine(has_p.then_some(a2), has_t.then_some(b2), bal, zero);
        n0.queries[q] = keep * f0 + a * r0.queries[q];
        n1.queries[q] = keep * f1 + a * r1.queries[q];
        n2.queries[q] = keep * f2 + a * r2.queries[q];
    }
}

/// One fused synchronous sweep: per vertex, accumulate every active
/// system's neighbor aggregate while walking the edge list once. Each
/// system's additions happen in the same edge order as [`step`]'s, so
/// the per-system float results are bitwise equal to a solo sweep.
pub(crate) fn step_fused(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    regs: &[Regularization],
    cfg: &WalkConfig,
    curs: &[Utilities],
    nexts: &mut [Utilities],
    active: &[bool],
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;
    let k = curs.len();
    // Page/template-side and template-side accumulators, reused per vertex.
    let mut acc = vec![0.0f64; k];
    let mut acc2 = vec![0.0f64; k];
    let live = |i: usize| active[i];

    match kind {
        UtilityKind::Precision => {
            for p in 0..g.n_pages() {
                acc.fill(0.0);
                let deg = g.page_deg[p];
                for e in g.page_queries(p) {
                    let q = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += e.weight * curs[i].queries[q];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        let f = if deg > 0.0 { acc[i] / deg } else { 0.0 };
                        nexts[i].pages[p] = keep * f + a * regs[i].pages[p];
                    }
                }
            }
            for t in 0..g.n_templates() {
                acc.fill(0.0);
                let deg = g.template_deg[t];
                for e in g.template_queries(t) {
                    let q = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += e.weight * curs[i].queries[q];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        let f = if deg > 0.0 { acc[i] / deg } else { 0.0 };
                        nexts[i].templates[t] = keep * f + a * regs[i].templates[t];
                    }
                }
            }
            for q in 0..g.n_queries() {
                acc.fill(0.0);
                acc2.fill(0.0);
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                for e in g.query_pages(q) {
                    let p = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += e.weight * curs[i].pages[p];
                        }
                    }
                }
                for e in g.query_templates(q) {
                    let t = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc2[i] += e.weight * curs[i].templates[t];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        let page_est = (pdeg > 0.0).then(|| acc[i] / pdeg);
                        let tmpl_est = (tdeg > 0.0).then(|| acc2[i] / tdeg);
                        let f = combine(
                            page_est,
                            tmpl_est,
                            cfg.page_template_balance,
                            cfg.missing_side_is_zero,
                        );
                        nexts[i].queries[q] = keep * f + a * regs[i].queries[q];
                    }
                }
            }
        }
        UtilityKind::Recall => {
            for p in 0..g.n_pages() {
                acc.fill(0.0);
                for (e, &c) in g.page_queries(p).iter().zip(g.page_queries_nrm(p)) {
                    let q = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += c * curs[i].queries[q];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        nexts[i].pages[p] = keep * acc[i] + a * regs[i].pages[p];
                    }
                }
            }
            for t in 0..g.n_templates() {
                acc.fill(0.0);
                for (e, &c) in g.template_queries(t).iter().zip(g.template_queries_nrm(t)) {
                    let q = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += c * curs[i].queries[q];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        nexts[i].templates[t] = keep * acc[i] + a * regs[i].templates[t];
                    }
                }
            }
            for q in 0..g.n_queries() {
                acc.fill(0.0);
                acc2.fill(0.0);
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                for (e, &c) in g.query_pages(q).iter().zip(g.query_pages_nrm(q)) {
                    let p = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc[i] += c * curs[i].pages[p];
                        }
                    }
                }
                for (e, &c) in g.query_templates(q).iter().zip(g.query_templates_nrm(q)) {
                    let t = e.to as usize;
                    for i in 0..k {
                        if live(i) {
                            acc2[i] += c * curs[i].templates[t];
                        }
                    }
                }
                for i in 0..k {
                    if live(i) {
                        let from_pages = (pdeg > 0.0).then_some(acc[i]);
                        let from_templates = (tdeg > 0.0).then_some(acc2[i]);
                        let f = combine(
                            from_pages,
                            from_templates,
                            cfg.page_template_balance,
                            cfg.missing_side_is_zero,
                        );
                        nexts[i].queries[q] = keep * f + a * regs[i].queries[q];
                    }
                }
            }
        }
    }
}

/// One synchronous update of all vertices.
fn step(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    cur: &Utilities,
    next: &mut Utilities,
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;

    match kind {
        UtilityKind::Precision => {
            // Pages: average over their query neighbors (Eq. 8).
            for p in 0..g.n_pages() {
                let deg = g.page_deg[p];
                let f = if deg > 0.0 {
                    g.page_queries(p)
                        .iter()
                        .map(|e| e.weight * cur.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                next.pages[p] = keep * f + a * reg.pages[p];
            }
            // Templates: average over their query neighbors (Eq. 15).
            for t in 0..g.n_templates() {
                let deg = g.template_deg[t];
                let f = if deg > 0.0 {
                    g.template_queries(t)
                        .iter()
                        .map(|e| e.weight * cur.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                next.templates[t] = keep * f + a * reg.templates[t];
            }
            // Queries: balanced combination of the page-side average
            // (Eq. 6) and template-side average (Eq. 17).
            for q in 0..g.n_queries() {
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                let page_est = if pdeg > 0.0 {
                    Some(
                        g.query_pages(q)
                            .iter()
                            .map(|e| e.weight * cur.pages[e.to as usize])
                            .sum::<f64>()
                            / pdeg,
                    )
                } else {
                    None
                };
                let tmpl_est = if tdeg > 0.0 {
                    Some(
                        g.query_templates(q)
                            .iter()
                            .map(|e| e.weight * cur.templates[e.to as usize])
                            .sum::<f64>()
                            / tdeg,
                    )
                } else {
                    None
                };
                let f = combine(
                    page_est,
                    tmpl_est,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                next.queries[q] = keep * f + a * reg.queries[q];
            }
        }
        UtilityKind::Recall => {
            // Pages receive from queries, each query splitting over its
            // page neighbors (Eq. 9) — the split coefficient is the
            // graph's precomputed sender-normalized weight.
            for p in 0..g.n_pages() {
                let f = g
                    .page_queries(p)
                    .iter()
                    .zip(g.page_queries_nrm(p))
                    .map(|(e, &c)| c * cur.queries[e.to as usize])
                    .sum::<f64>();
                next.pages[p] = keep * f + a * reg.pages[p];
            }
            // Templates receive from queries, each query splitting over
            // its template neighbors (Eq. 16).
            for t in 0..g.n_templates() {
                let f = g
                    .template_queries(t)
                    .iter()
                    .zip(g.template_queries_nrm(t))
                    .map(|(e, &c)| c * cur.queries[e.to as usize])
                    .sum::<f64>();
                next.templates[t] = keep * f + a * reg.templates[t];
            }
            // Queries receive from pages (each page splitting over its
            // query neighbors, Eq. 7) and from templates (each template
            // splitting over its query neighbors, Eq. 18).
            for q in 0..g.n_queries() {
                let from_pages = if g.query_page_deg[q] > 0.0 {
                    Some(
                        g.query_pages(q)
                            .iter()
                            .zip(g.query_pages_nrm(q))
                            .map(|(e, &c)| c * cur.pages[e.to as usize])
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let from_templates = if g.query_template_deg[q] > 0.0 {
                    Some(
                        g.query_templates(q)
                            .iter()
                            .zip(g.query_templates_nrm(q))
                            .map(|(e, &c)| c * cur.templates[e.to as usize])
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let f = combine(
                    from_pages,
                    from_templates,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                next.queries[q] = keep * f + a * reg.queries[q];
            }
        }
    }
}

/// One Gauss–Seidel sweep: updates `u` in place, class by class (pages,
/// then templates, then queries), so later classes read freshly updated
/// values. Within a class no vertex reads another vertex of the same
/// class, so in-place updates are well-defined.
fn step_inplace(
    g: &ReinforcementGraph,
    kind: UtilityKind,
    reg: &Regularization,
    cfg: &WalkConfig,
    u: &mut Utilities,
) {
    let a = cfg.alpha;
    let keep = 1.0 - a;

    match kind {
        UtilityKind::Precision => {
            for p in 0..g.n_pages() {
                let deg = g.page_deg[p];
                let f = if deg > 0.0 {
                    g.page_queries(p)
                        .iter()
                        .map(|e| e.weight * u.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                u.pages[p] = keep * f + a * reg.pages[p];
            }
            for t in 0..g.n_templates() {
                let deg = g.template_deg[t];
                let f = if deg > 0.0 {
                    g.template_queries(t)
                        .iter()
                        .map(|e| e.weight * u.queries[e.to as usize])
                        .sum::<f64>()
                        / deg
                } else {
                    0.0
                };
                u.templates[t] = keep * f + a * reg.templates[t];
            }
            for q in 0..g.n_queries() {
                let pdeg = g.query_page_deg[q];
                let tdeg = g.query_template_deg[q];
                let page_est = if pdeg > 0.0 {
                    Some(
                        g.query_pages(q)
                            .iter()
                            .map(|e| e.weight * u.pages[e.to as usize])
                            .sum::<f64>()
                            / pdeg,
                    )
                } else {
                    None
                };
                let tmpl_est = if tdeg > 0.0 {
                    Some(
                        g.query_templates(q)
                            .iter()
                            .map(|e| e.weight * u.templates[e.to as usize])
                            .sum::<f64>()
                            / tdeg,
                    )
                } else {
                    None
                };
                let f = combine(
                    page_est,
                    tmpl_est,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                u.queries[q] = keep * f + a * reg.queries[q];
            }
        }
        UtilityKind::Recall => {
            for p in 0..g.n_pages() {
                let f = g
                    .page_queries(p)
                    .iter()
                    .zip(g.page_queries_nrm(p))
                    .map(|(e, &c)| c * u.queries[e.to as usize])
                    .sum::<f64>();
                u.pages[p] = keep * f + a * reg.pages[p];
            }
            for t in 0..g.n_templates() {
                let f = g
                    .template_queries(t)
                    .iter()
                    .zip(g.template_queries_nrm(t))
                    .map(|(e, &c)| c * u.queries[e.to as usize])
                    .sum::<f64>();
                u.templates[t] = keep * f + a * reg.templates[t];
            }
            for q in 0..g.n_queries() {
                let from_pages = if g.query_page_deg[q] > 0.0 {
                    Some(
                        g.query_pages(q)
                            .iter()
                            .zip(g.query_pages_nrm(q))
                            .map(|(e, &c)| c * u.pages[e.to as usize])
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let from_templates = if g.query_template_deg[q] > 0.0 {
                    Some(
                        g.query_templates(q)
                            .iter()
                            .zip(g.query_templates_nrm(q))
                            .map(|(e, &c)| c * u.templates[e.to as usize])
                            .sum::<f64>(),
                    )
                } else {
                    None
                };
                let f = combine(
                    from_pages,
                    from_templates,
                    cfg.page_template_balance,
                    cfg.missing_side_is_zero,
                );
                u.queries[q] = keep * f + a * reg.queries[q];
            }
        }
    }
}

/// Combine page-side and template-side estimates with balance `b` (share
/// of the page side). With `missing_zero` a missing side contributes 0 to
/// the average; otherwise the present side takes full weight.
fn combine(page: Option<f64>, template: Option<f64>, b: f64, missing_zero: bool) -> f64 {
    match (page, template) {
        (Some(p), Some(t)) => b * p + (1.0 - b) * t,
        (Some(p), None) => {
            if missing_zero {
                b * p
            } else {
                p
            }
        }
        (None, Some(t)) => {
            if missing_zero {
                (1.0 - b) * t
            } else {
                t
            }
        }
        (None, None) => 0.0,
    }
}

pub(crate) fn l1_delta(a: &Utilities, b: &Utilities) -> f64 {
    let d = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(u, v)| (u - v).abs()).sum::<f64>();
    d(&a.pages, &b.pages) + d(&a.queries, &b.queries) + d(&a.templates, &b.templates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// The paper's Fig. 2 running example (no templates): 6 pages, 5
    /// queries, Y = RESEARCH relevant for p1..p4 (0-indexed 0..=3).
    fn fig2_graph() -> ReinforcementGraph {
        let mut b = GraphBuilder::new(6, 5, 0);
        // q1 parallel research -> p1 p2 p3
        b.page_query(0, 0, 1.0)
            .page_query(1, 0, 1.0)
            .page_query(2, 0, 1.0);
        // q2 hpc research -> p1 p2
        b.page_query(0, 1, 1.0).page_query(1, 1, 1.0);
        // q3 complexity -> p3 p4
        b.page_query(2, 2, 1.0).page_query(3, 2, 1.0);
        // q4 u illinois -> p4 p5 p6
        b.page_query(3, 3, 1.0)
            .page_query(4, 3, 1.0)
            .page_query(5, 3, 1.0);
        // q5 ibm -> p6
        b.page_query(5, 4, 1.0);
        b.build()
    }

    fn fig2_relevance() -> Vec<bool> {
        vec![true, true, true, true, false, false]
    }

    #[test]
    fn precision_ranks_focused_queries_above_generic_ones() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        // q1, q2, q3 retrieve only relevant pages; q4 retrieves 1/3
        // relevant; q5 only irrelevant.
        assert!(u.queries[0] > u.queries[3], "q1 > q4");
        assert!(u.queries[1] > u.queries[3], "q2 > q4");
        assert!(u.queries[2] > u.queries[3], "q3 > q4");
        assert!(u.queries[3] > u.queries[4], "q4 > q5");
    }

    #[test]
    fn recall_ranks_broad_relevant_queries_highest() {
        let g = fig2_graph();
        let reg = Regularization::recall_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Recall, &reg, &WalkConfig::default());
        // q1 covers 3 of 4 relevant pages; q2 and q3 cover 2; q5 covers 0.
        assert!(u.queries[0] > u.queries[1], "q1 > q2");
        assert!(u.queries[0] > u.queries[2], "q1 > q3");
        assert!(u.queries[1] > u.queries[4], "q2 > q5");
        assert!(u.queries[2] > u.queries[4], "q3 > q5");
    }

    #[test]
    fn precision_stays_within_unit_interval() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        for v in u.pages.iter().chain(&u.queries) {
            assert!((0.0..=1.0).contains(v), "precision out of bounds: {v}");
        }
    }

    #[test]
    fn recall_mass_is_bounded_by_total_regularization() {
        let g = fig2_graph();
        let reg = Regularization::recall_from_relevance(&g, &fig2_relevance());
        let u = solve(&g, UtilityKind::Recall, &reg, &WalkConfig::default());
        let total_q: f64 = u.queries.iter().sum();
        // The forward walk redistributes at most the unit mass injected by
        // regularization.
        assert!(total_q <= 1.0 + 1e-9, "query recall mass {total_q} > 1");
        for v in u.pages.iter().chain(&u.queries) {
            assert!(*v >= 0.0);
        }
    }

    /// The paper's Fig. 6 domain-phase example: Andrew Ng with 3 pages, 3
    /// queries and 2 templates. The precision model must give
    /// P(t1) > P(t3) (t3 covers irrelevant p9) and the recall model
    /// R(t1) < R(t3) (t1 misses relevant p8).
    #[test]
    fn fig6_template_utilities_match_paper() {
        // pages: p7=0 (rel), p8=1 (rel), p9=2 (irrel)
        // queries: q6 "ai research"=0 -> p7; q7 "baidu"=1 -> p7;
        //          q8 "stanford"=2 -> p8, p9
        // templates: t1 "<topic> research"=0 abstracts q6;
        //            t3 "<institute>"=1 abstracts q7, q8
        let mut b = GraphBuilder::new(3, 3, 2);
        b.page_query(0, 0, 1.0);
        b.page_query(0, 1, 1.0);
        b.page_query(1, 2, 1.0).page_query(2, 2, 1.0);
        b.query_template(0, 0, 1.0);
        b.query_template(1, 1, 1.0).query_template(2, 1, 1.0);
        let g = b.build();
        let relevant = vec![true, true, false];

        let cfg = WalkConfig::default();
        let preg = Regularization::precision_from_relevance(&g, &relevant);
        let p = solve(&g, UtilityKind::Precision, &preg, &cfg);
        assert!(
            p.templates[0] > p.templates[1],
            "P(t1)={} must exceed P(t3)={}",
            p.templates[0],
            p.templates[1]
        );

        let rreg = Regularization::recall_from_relevance(&g, &relevant);
        let r = solve(&g, UtilityKind::Recall, &rreg, &cfg);
        assert!(
            r.templates[0] < r.templates[1],
            "R(t1)={} must be below R(t3)={}",
            r.templates[0],
            r.templates[1]
        );
    }

    #[test]
    fn isolated_vertices_get_only_regularization() {
        let g = GraphBuilder::new(2, 1, 1).build(); // no edges at all
        let mut reg = Regularization::zeros(&g);
        reg.pages[0] = 1.0;
        let cfg = WalkConfig::default();
        let u = solve(&g, UtilityKind::Precision, &reg, &cfg);
        assert!((u.pages[0] - cfg.alpha).abs() < 1e-9);
        assert_eq!(u.pages[1], 0.0);
        assert_eq!(u.queries[0], 0.0);
        assert_eq!(u.templates[0], 0.0);
    }

    #[test]
    fn solver_is_deterministic_and_converges() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let a = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        let b = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        assert_eq!(a.queries, b.queries);
        // Extra iterations change nothing beyond the geometric tail
        // (contraction factor 1−α per iteration).
        let more = solve(
            &g,
            UtilityKind::Precision,
            &reg,
            &WalkConfig {
                max_iters: 400,
                ..Default::default()
            },
        );
        for (x, y) in a.queries.iter().zip(&more.queries) {
            assert!((x - y).abs() < 1e-6, "residual {}", (x - y).abs());
        }
    }

    #[test]
    fn template_regularization_flows_to_queries() {
        // One page (irrelevant), two queries, two templates; template 0
        // regularized high.
        let mut b = GraphBuilder::new(1, 2, 2);
        b.page_query(0, 0, 1.0).page_query(0, 1, 1.0);
        b.query_template(0, 0, 1.0).query_template(1, 1, 1.0);
        let g = b.build();
        let mut reg = Regularization::zeros(&g);
        reg.templates[0] = 1.0;
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        assert!(
            u.queries[0] > u.queries[1],
            "query abstracted by the regularized template must score higher"
        );
    }

    #[test]
    fn gauss_seidel_reaches_the_same_fixpoint() {
        let g = fig2_graph();
        let cfg = WalkConfig {
            max_iters: 400,
            ..Default::default()
        };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision => {
                    Regularization::precision_from_relevance(&g, &fig2_relevance())
                }
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &fig2_relevance()),
            };
            let jacobi = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::Jacobi);
            let gs = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::GaussSeidel);
            for (a, b) in jacobi
                .pages
                .iter()
                .chain(&jacobi.queries)
                .zip(gs.pages.iter().chain(&gs.queries))
            {
                assert!((a - b).abs() < 1e-6, "schemes disagree: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gauss_seidel_converges_in_fewer_sweeps() {
        // At a tight sweep budget, Gauss–Seidel should be closer to the
        // converged fixpoint than Jacobi.
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let exact = solve_with_scheme(
            &g,
            UtilityKind::Precision,
            &reg,
            &WalkConfig {
                max_iters: 500,
                ..Default::default()
            },
            Scheme::Jacobi,
        );
        let budget = WalkConfig {
            max_iters: 8,
            tolerance: 0.0,
            ..Default::default()
        };
        let jac = solve_with_scheme(&g, UtilityKind::Precision, &reg, &budget, Scheme::Jacobi);
        let gs = solve_with_scheme(
            &g,
            UtilityKind::Precision,
            &reg,
            &budget,
            Scheme::GaussSeidel,
        );
        let err = |u: &Utilities| {
            u.queries
                .iter()
                .zip(&exact.queries)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(
            err(&gs) < err(&jac),
            "GS residual {} should beat Jacobi {}",
            err(&gs),
            err(&jac)
        );
    }

    #[test]
    fn warm_start_reaches_the_same_fixpoint_in_fewer_sweeps() {
        let g = fig2_graph();
        let cfg = WalkConfig::default();
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision => {
                    Regularization::precision_from_relevance(&g, &fig2_relevance())
                }
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &fig2_relevance()),
            };
            let (cold, cold_sweeps) = solve_detailed(&g, kind, &reg, &cfg, Scheme::Jacobi, None);
            // Restarting from the converged fixpoint must stay there.
            let (warm, warm_sweeps) =
                solve_detailed(&g, kind, &reg, &cfg, Scheme::Jacobi, Some(cold.clone()));
            assert!(
                warm_sweeps <= cold_sweeps,
                "warm {warm_sweeps} vs cold {cold_sweeps} sweeps"
            );
            assert!(
                warm_sweeps <= 2,
                "fixpoint restart took {warm_sweeps} sweeps"
            );
            for (a, b) in cold
                .pages
                .iter()
                .chain(&cold.queries)
                .chain(&cold.templates)
                .zip(
                    warm.pages
                        .iter()
                        .chain(&warm.queries)
                        .chain(&warm.templates),
                )
            {
                assert!((a - b).abs() < cfg.tolerance, "warm drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn warm_start_from_a_bad_iterate_still_converges() {
        let g = fig2_graph();
        let cfg = WalkConfig::default();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let (cold, _) =
            solve_detailed(&g, UtilityKind::Precision, &reg, &cfg, Scheme::Jacobi, None);
        let bad = Utilities {
            pages: vec![0.9; g.n_pages()],
            queries: vec![0.1; g.n_queries()],
            templates: vec![0.0; g.n_templates()],
        };
        let (warm, _) = solve_detailed(
            &g,
            UtilityKind::Precision,
            &reg,
            &cfg,
            Scheme::Jacobi,
            Some(bad),
        );
        for (a, b) in cold.queries.iter().zip(&warm.queries) {
            assert!((a - b).abs() < 1e-6, "fixpoint not unique? {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "warm-start page shape")]
    fn warm_start_shape_mismatch_panics() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        solve_detailed(
            &g,
            UtilityKind::Precision,
            &reg,
            &WalkConfig::default(),
            Scheme::Jacobi,
            Some(Utilities::default()),
        );
    }

    #[test]
    fn fused_solves_match_solo_solves_bitwise() {
        let g = fig2_graph();
        let cfg = WalkConfig::default();
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            // Three systems with genuinely different regularizations —
            // the shape the context walks produce.
            let mut regs = vec![
                Regularization::precision_from_relevance(&g, &fig2_relevance()),
                Regularization::recall_from_relevance(&g, &fig2_relevance()),
                Regularization::recall_from_relevance(&g, &vec![true; g.n_pages()]),
            ];
            regs[0].queries[1] = 0.25; // break any accidental symmetry
            let solo: Vec<(Utilities, usize)> = regs
                .iter()
                .map(|r| solve_detailed(&g, kind, r, &cfg, Scheme::Jacobi, None))
                .collect();
            let fused = solve_fused_detailed(&g, kind, &regs, &cfg, vec![None, None, None]);
            for ((su, ss), (fu, fs)) in solo.iter().zip(&fused) {
                assert_eq!(ss, fs, "sweep counts diverged");
                assert_eq!(su.pages, fu.pages);
                assert_eq!(su.queries, fu.queries);
                assert_eq!(su.templates, fu.templates);
            }

            // Warm-started systems (one warm, one cold, one at the solo
            // fixpoint — the mixed convergence exercises the active mask).
            let warms = vec![Some(solo[0].0.clone()), None, Some(solo[2].0.clone())];
            let solo_warm: Vec<(Utilities, usize)> = regs
                .iter()
                .zip(warms.clone())
                .map(|(r, w)| solve_detailed(&g, kind, r, &cfg, Scheme::Jacobi, w))
                .collect();
            let fused_warm = solve_fused_detailed(&g, kind, &regs, &cfg, warms);
            for ((su, ss), (fu, fs)) in solo_warm.iter().zip(&fused_warm) {
                assert_eq!(ss, fs, "warm sweep counts diverged");
                assert_eq!(su.pages, fu.pages);
                assert_eq!(su.queries, fu.queries);
                assert_eq!(su.templates, fu.templates);
            }
        }
    }

    #[test]
    fn solve_records_latency_and_sweep_metrics() {
        let g = fig2_graph();
        let reg = Regularization::precision_from_relevance(&g, &fig2_relevance());
        let lat = l2q_obs::global().histogram("graph_solve_seconds");
        let sweeps = super::sweeps_histogram();
        let (lat_before, sweeps_before) = (lat.count(), sweeps.count());
        solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        // The registry is process-global, so assert monotone growth.
        assert!(lat.count() > lat_before, "solve latency not recorded");
        assert!(sweeps.count() > sweeps_before, "sweep count not recorded");
        assert!(sweeps.sum() >= 1.0, "at least one sweep must run");
    }

    #[test]
    #[should_panic(expected = "page regularization shape")]
    fn shape_mismatch_panics() {
        let g = fig2_graph();
        let reg = Regularization::default();
        solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
    }
}
