//! Property-based tests for the reinforcement-graph solver on tripartite
//! (page–query–template) graphs with weighted edges.

use l2q_graph::{
    solve, solve_with_scheme, GraphBuilder, Regularization, Scheme, UtilityKind, WalkConfig,
};
use proptest::prelude::*;

type Tripartite = (
    usize,
    usize,
    usize,
    Vec<(u32, u32, f64)>,
    Vec<(u32, u32, f64)>,
    Vec<bool>,
);

/// Random tripartite graph with weighted edges.
fn arb_tripartite() -> impl Strategy<Value = Tripartite> {
    (2usize..8, 2usize..14, 1usize..6).prop_flat_map(|(np, nq, nt)| {
        let pq = proptest::collection::vec((0..np as u32, 0..nq as u32, 0.1f64..5.0), 1..40);
        let qt = proptest::collection::vec((0..nq as u32, 0..nt as u32, 0.1f64..5.0), 0..20);
        let rel = proptest::collection::vec(any::<bool>(), np);
        (Just(np), Just(nq), Just(nt), pq, qt, rel)
    })
}

fn build(
    np: usize,
    nq: usize,
    nt: usize,
    pq: &[(u32, u32, f64)],
    qt: &[(u32, u32, f64)],
) -> l2q_graph::ReinforcementGraph {
    let mut b = GraphBuilder::new(np, nq, nt);
    for &(p, q, w) in pq {
        b.page_query(p, q, w);
    }
    for &(q, t, w) in qt {
        b.query_template(q, t, w);
    }
    b.build()
}

proptest! {
    /// All utilities are finite and non-negative for both walks, for any
    /// weighted tripartite graph.
    #[test]
    fn utilities_are_finite_and_nonnegative(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g, &rel),
                UtilityKind::Recall =>
                    Regularization::recall_from_relevance(&g, &rel),
            };
            let u = solve(&g, kind, &reg, &WalkConfig::default());
            for v in u.pages.iter().chain(&u.queries).chain(&u.templates) {
                prop_assert!(v.is_finite() && *v >= 0.0, "bad utility {v}");
            }
        }
    }

    /// Scaling all edge weights uniformly never changes the fixpoint (both
    /// kernels normalize weights).
    #[test]
    fn fixpoint_is_scale_invariant(
        (np, nq, nt, pq, qt, rel) in arb_tripartite(),
        scale in 0.5f64..4.0
    ) {
        let g1 = build(np, nq, nt, &pq, &qt);
        let pq2: Vec<_> = pq.iter().map(|&(p, q, w)| (p, q, w * scale)).collect();
        let qt2: Vec<_> = qt.iter().map(|&(q, t, w)| (q, t, w * scale)).collect();
        let g2 = build(np, nq, nt, &pq2, &qt2);
        let cfg = WalkConfig { max_iters: 200, ..Default::default() };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg1 = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g1, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g1, &rel),
            };
            let reg2 = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g2, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g2, &rel),
            };
            let u1 = solve(&g1, kind, &reg1, &cfg);
            let u2 = solve(&g2, kind, &reg2, &cfg);
            for (a, b) in u1.queries.iter().zip(&u2.queries) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// With all-zero regularization, the fixpoint is identically zero.
    #[test]
    fn zero_regularization_yields_zero(
        (np, nq, nt, pq, qt, _rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let reg = Regularization::zeros(&g);
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let u = solve(&g, kind, &reg, &WalkConfig::default());
            for v in u.pages.iter().chain(&u.queries).chain(&u.templates) {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    /// Jacobi and Gauss–Seidel converge to the same fixpoint on any
    /// weighted tripartite graph.
    #[test]
    fn schemes_agree_at_convergence(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let cfg = WalkConfig { max_iters: 400, ..Default::default() };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &rel),
            };
            let a = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::Jacobi);
            let b = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::GaussSeidel);
            for (x, y) in a.queries.iter().zip(&b.queries) {
                prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }

    /// Monotonicity in relevance: marking one more page relevant never
    /// decreases any precision utility (precision regularization is
    /// monotone and the update is a monotone map).
    #[test]
    fn precision_is_monotone_in_relevance(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        prop_assume!(rel.iter().any(|&r| !r));
        let g = build(np, nq, nt, &pq, &qt);
        let mut more = rel.clone();
        let flip = more.iter().position(|&r| !r).unwrap();
        more[flip] = true;
        let cfg = WalkConfig { max_iters: 200, ..Default::default() };
        let u1 = solve(
            &g,
            UtilityKind::Precision,
            &Regularization::precision_from_relevance(&g, &rel),
            &cfg,
        );
        let u2 = solve(
            &g,
            UtilityKind::Precision,
            &Regularization::precision_from_relevance(&g, &more),
            &cfg,
        );
        for (a, b) in u1.queries.iter().zip(&u2.queries) {
            prop_assert!(*b >= *a - 1e-9, "precision dropped: {a} -> {b}");
        }
    }
}
