//! Property-based tests for the reinforcement-graph solver on tripartite
//! (page–query–template) graphs with weighted edges.

use l2q_graph::{
    solve, solve_detailed, solve_with_scheme, static_query_upper_bounds, FusedTruncatedSolver,
    GraphBuilder, Regularization, Scheme, Utilities, UtilityKind, WalkConfig,
};
use proptest::prelude::*;

type Tripartite = (
    usize,
    usize,
    usize,
    Vec<(u32, u32, f64)>,
    Vec<(u32, u32, f64)>,
    Vec<bool>,
);

/// Random tripartite graph with weighted edges.
fn arb_tripartite() -> impl Strategy<Value = Tripartite> {
    (2usize..8, 2usize..14, 1usize..6).prop_flat_map(|(np, nq, nt)| {
        let pq = proptest::collection::vec((0..np as u32, 0..nq as u32, 0.1f64..5.0), 1..40);
        let qt = proptest::collection::vec((0..nq as u32, 0..nt as u32, 0.1f64..5.0), 0..20);
        let rel = proptest::collection::vec(any::<bool>(), np);
        (Just(np), Just(nq), Just(nt), pq, qt, rel)
    })
}

fn build(
    np: usize,
    nq: usize,
    nt: usize,
    pq: &[(u32, u32, f64)],
    qt: &[(u32, u32, f64)],
) -> l2q_graph::ReinforcementGraph {
    let mut b = GraphBuilder::new(np, nq, nt);
    for &(p, q, w) in pq {
        b.page_query(p, q, w);
    }
    for &(q, t, w) in qt {
        b.query_template(q, t, w);
    }
    b.build()
}

proptest! {
    /// All utilities are finite and non-negative for both walks, for any
    /// weighted tripartite graph.
    #[test]
    fn utilities_are_finite_and_nonnegative(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g, &rel),
                UtilityKind::Recall =>
                    Regularization::recall_from_relevance(&g, &rel),
            };
            let u = solve(&g, kind, &reg, &WalkConfig::default());
            for v in u.pages.iter().chain(&u.queries).chain(&u.templates) {
                prop_assert!(v.is_finite() && *v >= 0.0, "bad utility {v}");
            }
        }
    }

    /// Scaling all edge weights uniformly never changes the fixpoint (both
    /// kernels normalize weights).
    #[test]
    fn fixpoint_is_scale_invariant(
        (np, nq, nt, pq, qt, rel) in arb_tripartite(),
        scale in 0.5f64..4.0
    ) {
        let g1 = build(np, nq, nt, &pq, &qt);
        let pq2: Vec<_> = pq.iter().map(|&(p, q, w)| (p, q, w * scale)).collect();
        let qt2: Vec<_> = qt.iter().map(|&(q, t, w)| (q, t, w * scale)).collect();
        let g2 = build(np, nq, nt, &pq2, &qt2);
        let cfg = WalkConfig { max_iters: 200, ..Default::default() };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg1 = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g1, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g1, &rel),
            };
            let reg2 = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g2, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g2, &rel),
            };
            let u1 = solve(&g1, kind, &reg1, &cfg);
            let u2 = solve(&g2, kind, &reg2, &cfg);
            for (a, b) in u1.queries.iter().zip(&u2.queries) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// With all-zero regularization, the fixpoint is identically zero.
    #[test]
    fn zero_regularization_yields_zero(
        (np, nq, nt, pq, qt, _rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let reg = Regularization::zeros(&g);
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let u = solve(&g, kind, &reg, &WalkConfig::default());
            for v in u.pages.iter().chain(&u.queries).chain(&u.templates) {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    /// Jacobi and Gauss–Seidel converge to the same fixpoint on any
    /// weighted tripartite graph.
    #[test]
    fn schemes_agree_at_convergence(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let cfg = WalkConfig { max_iters: 400, ..Default::default() };
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &rel),
            };
            let a = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::Jacobi);
            let b = solve_with_scheme(&g, kind, &reg, &cfg, Scheme::GaussSeidel);
            for (x, y) in a.queries.iter().zip(&b.queries) {
                prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }

    /// Monotonicity in relevance: marking one more page relevant never
    /// decreases any precision utility (precision regularization is
    /// monotone and the update is a monotone map).
    #[test]
    fn precision_is_monotone_in_relevance(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        prop_assume!(rel.iter().any(|&r| !r));
        let g = build(np, nq, nt, &pq, &qt);
        let mut more = rel.clone();
        let flip = more.iter().position(|&r| !r).unwrap();
        more[flip] = true;
        let cfg = WalkConfig { max_iters: 200, ..Default::default() };
        let u1 = solve(
            &g,
            UtilityKind::Precision,
            &Regularization::precision_from_relevance(&g, &rel),
            &cfg,
        );
        let u2 = solve(
            &g,
            UtilityKind::Precision,
            &Regularization::precision_from_relevance(&g, &more),
            &cfg,
        );
        for (a, b) in u1.queries.iter().zip(&u2.queries) {
            prop_assert!(*b >= *a - 1e-9, "precision dropped: {a} -> {b}");
        }
    }
}

/// A tightly converged reference fixpoint (well below the solver's
/// operating tolerance, so it can stand in for the true fixpoint).
fn exact(g: &l2q_graph::ReinforcementGraph, kind: UtilityKind, reg: &Regularization) -> Utilities {
    let tight = WalkConfig {
        max_iters: 4000,
        tolerance: 1e-14,
        ..Default::default()
    };
    solve_detailed(g, kind, reg, &tight, Scheme::Jacobi, None).0
}

/// The three-system regularization shape the context walks produce.
fn walk_regs(g: &l2q_graph::ReinforcementGraph, rel: &[bool]) -> Vec<Regularization> {
    let inverted: Vec<bool> = rel.iter().map(|&r| !r).collect();
    vec![
        Regularization::recall_from_relevance(g, rel),
        Regularization::recall_from_relevance(g, &inverted),
        Regularization::recall_from_relevance(g, &vec![true; g.n_pages()]),
    ]
}

proptest! {
    /// The static per-query upper bound dominates the solved utility on
    /// any weighted tripartite graph, for both walk kinds.
    #[test]
    fn static_bounds_dominate_solved_utilities(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let cfg = WalkConfig::default();
        for kind in [UtilityKind::Precision, UtilityKind::Recall] {
            let reg = match kind {
                UtilityKind::Precision =>
                    Regularization::precision_from_relevance(&g, &rel),
                UtilityKind::Recall => Regularization::recall_from_relevance(&g, &rel),
            };
            let ub = static_query_upper_bounds(&g, kind, &reg, &cfg);
            let u = exact(&g, kind, &reg);
            for (q, (&b, &x)) in ub.iter().zip(&u.queries).enumerate() {
                prop_assert!(b >= x - 1e-12, "{kind:?} q{q}: bound {b} below utility {x}");
            }
        }
    }

    /// The truncated solver's tail bound dominates the true distance to
    /// the fixpoint after every sweep, cold-started.
    #[test]
    fn truncation_tails_dominate_the_true_error(
        (np, nq, nt, pq, qt, rel) in arb_tripartite()
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let cfg = WalkConfig::default();
        let regs = walk_regs(&g, &rel);
        let fixpoints: Vec<Utilities> = regs
            .iter()
            .map(|r| exact(&g, UtilityKind::Recall, r))
            .collect();
        let mut s = FusedTruncatedSolver::new(
            &g,
            UtilityKind::Recall,
            regs,
            &cfg,
            vec![None, None, None],
        );
        let mut qtails = Vec::new();
        while s.sweep() {
            #[allow(clippy::needless_range_loop)]
            for i in 0..3 {
                let tail = s.tail(i);
                s.query_tails_into(i, &mut qtails);
                let mut err = 0.0f64;
                for (q, ((&a, &b), &tq)) in s
                    .queries(i)
                    .iter()
                    .zip(&fixpoints[i].queries)
                    .zip(&qtails)
                    .enumerate()
                {
                    let e = (a - b).abs();
                    err = err.max(e);
                    prop_assert!(
                        e <= tq * (1.0 + 1e-9) + 1e-12,
                        "system {i} q{q}: error {e} above query tail {tq}"
                    );
                    prop_assert!(tq <= tail, "query tails refine the block tail");
                }
                prop_assert!(
                    err <= tail * (1.0 + 1e-9) + 1e-12,
                    "system {i}: true error {err} above tail {tail}"
                );
            }
        }
    }

    /// Tails stay valid when the solve warm-starts from an adversarially
    /// perturbed previous fixpoint (the incremental phase's shape).
    #[test]
    fn truncation_tails_survive_warm_start_perturbations(
        (np, nq, nt, pq, qt, rel) in arb_tripartite(),
        noise in proptest::collection::vec(-0.4f64..0.4, 2..14),
    ) {
        let g = build(np, nq, nt, &pq, &qt);
        let cfg = WalkConfig::default();
        let regs = walk_regs(&g, &rel);
        let fixpoints: Vec<Utilities> = regs
            .iter()
            .map(|r| exact(&g, UtilityKind::Recall, r))
            .collect();
        // Perturb every block of the first system's fixpoint; leave the
        // second cold and the third exactly at its fixpoint.
        let mut bad = fixpoints[0].clone();
        for (i, v) in bad
            .pages
            .iter_mut()
            .chain(&mut bad.queries)
            .chain(&mut bad.templates)
            .enumerate()
        {
            *v = (*v + noise[i % noise.len()]).max(0.0);
        }
        let warms = vec![Some(bad), None, Some(fixpoints[2].clone())];
        let mut s = FusedTruncatedSolver::new(&g, UtilityKind::Recall, regs, &cfg, warms);
        let mut qtails = Vec::new();
        while s.sweep() {
            #[allow(clippy::needless_range_loop)]
            for i in 0..3 {
                let tail = s.tail(i);
                s.query_tails_into(i, &mut qtails);
                let mut err = 0.0f64;
                for (q, ((&a, &b), &tq)) in s
                    .queries(i)
                    .iter()
                    .zip(&fixpoints[i].queries)
                    .zip(&qtails)
                    .enumerate()
                {
                    let e = (a - b).abs();
                    err = err.max(e);
                    prop_assert!(
                        e <= tq * (1.0 + 1e-9) + 1e-12,
                        "system {i} q{q}: error {e} above query tail {tq}"
                    );
                    prop_assert!(tq <= tail, "query tails refine the block tail");
                }
                prop_assert!(
                    err <= tail * (1.0 + 1e-9) + 1e-12,
                    "system {i}: true error {err} above tail {tail}"
                );
            }
        }
    }
}

/// Zero-weight edges are dropped at build time, so a candidate attached
/// only by weightless edges is genuinely disconnected: its bound — and
/// its fixpoint — collapse to the regularization share exactly.
#[test]
fn zero_weight_edges_leave_bounds_at_the_disconnected_value() {
    let mut with_zero = GraphBuilder::new(3, 3, 1);
    with_zero.page_query(0, 0, 1.0).page_query(1, 0, 1.0);
    with_zero.page_query(2, 1, 0.0); // dropped: weightless
    with_zero.query_template(1, 0, 0.0); // dropped too
    let g1 = with_zero.build();

    let mut without = GraphBuilder::new(3, 3, 1);
    without.page_query(0, 0, 1.0).page_query(1, 0, 1.0);
    let g2 = without.build();

    let cfg = WalkConfig::default();
    for kind in [UtilityKind::Precision, UtilityKind::Recall] {
        let reg = {
            let mut r = Regularization::zeros(&g1);
            r.pages = vec![1.0, 0.0, 1.0];
            r.queries = vec![0.0, 0.3, 0.7];
            r
        };
        let ub1 = static_query_upper_bounds(&g1, kind, &reg, &cfg);
        let ub2 = static_query_upper_bounds(&g2, kind, &reg, &cfg);
        assert_eq!(ub1, ub2, "weightless edges changed the bounds");
        // Queries 1 and 2 are disconnected: the bound is the fixpoint.
        let u = solve(&g1, kind, &reg, &cfg);
        assert_eq!(ub1[1], cfg.alpha * 0.3);
        assert_eq!(u.queries[1], ub1[1]);
        assert_eq!(ub1[2], cfg.alpha * 0.7);
        assert_eq!(u.queries[2], ub1[2]);
    }
}
