//! Property-based tests for the text substrate.

use l2q_text::{ngrams, Bow, PhraseDict, Sym, SymbolTable, Tokenizer};
use proptest::prelude::*;

/// Arbitrary ASCII-ish text.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8}|[0-9]{1,4}|[-.,!?@#]{1,2}", 0..30)
        .prop_map(|parts| parts.join(" "))
}

proptest! {
    /// Tokenization is deterministic and idempotent through rendering:
    /// tokenizing the rendered token stream reproduces the same stream.
    #[test]
    fn tokenize_is_stable_under_render(text in arb_text()) {
        let tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        let once = tok.tokenize(&text, &mut tab);
        let rendered = tab.render(&once);
        let twice = tok.tokenize(&rendered, &mut tab);
        prop_assert_eq!(once, twice);
    }

    /// Tokens never contain separators and are lower-case.
    #[test]
    fn tokens_are_normalized(text in arb_text()) {
        let tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        for sym in tok.tokenize(&text, &mut tab) {
            let w = tab.resolve(sym);
            prop_assert!(!w.is_empty());
            prop_assert!(w.chars().all(|c| c.is_alphanumeric()),
                "token {w:?} has separator chars");
            let lower = w.to_lowercase();
            prop_assert_eq!(lower.as_str(), w);
        }
    }

    /// Phrase merging never loses words: the flattened merged stream
    /// equals the unmerged stream.
    #[test]
    fn phrase_merge_preserves_words(text in arb_text(),
                                    pair in ("[a-z]{1,6}", "[a-z]{1,6}")) {
        let mut dict = PhraseDict::new();
        dict.add(&format!("{} {}", pair.0, pair.1));
        let merged_tok = Tokenizer::new(dict);
        let plain_tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        let merged = merged_tok.tokenize(&text, &mut tab);
        let plain = plain_tok.tokenize(&text, &mut tab);
        let flattened: Vec<String> = merged
            .iter()
            .flat_map(|&s| tab.resolve(s).split(' ').map(str::to_owned).collect::<Vec<_>>())
            .collect();
        let plain_strs: Vec<String> =
            plain.iter().map(|&s| tab.resolve(s).to_owned()).collect();
        prop_assert_eq!(flattened, plain_strs);
    }

    /// Bow::from_words length equals the input length; distinct ≤ length.
    #[test]
    fn bow_counts_are_consistent(ids in proptest::collection::vec(0u32..64, 0..50)) {
        let syms: Vec<Sym> = ids.iter().map(|&i| Sym(i)).collect();
        let bow = Bow::from_words(&syms);
        prop_assert_eq!(bow.len(), syms.len() as u64);
        prop_assert!(bow.distinct() <= syms.len());
        let total: u64 = bow.iter().map(|(_, c)| u64::from(c)).sum();
        prop_assert_eq!(total, bow.len());
    }

    /// Merging two bags is the same as building from concatenation.
    #[test]
    fn bow_merge_equals_concat(a in proptest::collection::vec(0u32..32, 0..30),
                               b in proptest::collection::vec(0u32..32, 0..30)) {
        let sa: Vec<Sym> = a.iter().map(|&i| Sym(i)).collect();
        let sb: Vec<Sym> = b.iter().map(|&i| Sym(i)).collect();
        let mut merged = Bow::from_words(&sa);
        merged.merge(&Bow::from_words(&sb));
        let concat: Vec<Sym> = sa.iter().chain(sb.iter()).copied().collect();
        prop_assert_eq!(merged, Bow::from_words(&concat));
    }

    /// Cosine similarity is symmetric and within [0, 1].
    #[test]
    fn cosine_is_symmetric(a in proptest::collection::vec(0u32..16, 0..20),
                           b in proptest::collection::vec(0u32..16, 0..20)) {
        let ba: Bow = a.iter().map(|&i| Sym(i)).collect();
        let bb: Bow = b.iter().map(|&i| Sym(i)).collect();
        let ab = ba.cosine(&bb);
        let ba_ = bb.cosine(&ba);
        prop_assert!((ab - ba_).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }

    /// n-gram enumeration yields exactly the expected number of windows
    /// and each gram is a contiguous subsequence.
    #[test]
    fn ngram_windows_are_contiguous(ids in proptest::collection::vec(0u32..99, 0..25),
                                    max_len in 1usize..5) {
        let syms: Vec<Sym> = ids.iter().map(|&i| Sym(i)).collect();
        let mut count = 0;
        for gram in ngrams(&syms, max_len) {
            count += 1;
            prop_assert!(!gram.is_empty() && gram.len() <= max_len);
            // Contiguity: gram appears as a windows() element.
            let found = syms.windows(gram.len()).any(|w| w == gram);
            prop_assert!(found);
        }
        let expected: usize = (1..=max_len.min(syms.len()))
            .map(|l| syms.len() - l + 1)
            .sum();
        prop_assert_eq!(count, expected);
    }
}
