//! # l2q-text — text substrate for Learning to Query
//!
//! Tokenization, string interning, phrase merging, n-gram enumeration and
//! bag-of-words statistics. This crate is the lowest layer of the L2Q stack:
//! every page, query and template in the system is ultimately a sequence of
//! interned *words*, where a word is either a single term or a dictionary
//! phrase (e.g. `data mining`) merged into one unit, exactly as the paper's
//! data model prescribes ("each word is a term or phrase depending on the
//! tokenization").
//!
//! The main types are:
//!
//! * [`SymbolTable`] / [`Sym`] — a string interner mapping words to dense
//!   `u32` ids so that everything downstream works on integers.
//! * [`Tokenizer`] — lower-cases, splits on non-alphanumerics and merges
//!   known multi-word phrases greedily (longest match wins).
//! * [`ngrams`] / [`NGramIter`] — sliding-window n-gram enumeration used for
//!   candidate query generation (paper Sect. VI-A, window of ℓ ∈ 1..=L).
//! * [`Bow`] — a sparse bag-of-words with term frequencies, the unit of
//!   retrieval scoring.
//! * [`stopwords`] — the stopword list used to prune degenerate queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bow;
pub mod ngram;
pub mod stopwords;
pub mod symbol;
pub mod tokenizer;

pub use bow::Bow;
pub use ngram::{ngrams, NGramIter};
pub use stopwords::is_stopword;
pub use symbol::{Sym, SymbolTable};
pub use tokenizer::{PhraseDict, Tokenizer};
