//! String interning.
//!
//! Every word that enters the system — page tokens, query words, template
//! units — is interned once into a [`SymbolTable`] and referred to by a dense
//! [`Sym`] id thereafter. Dense ids let the retrieval index, the
//! reinforcement graph and the classifiers use plain `Vec`-indexed storage.

use std::collections::HashMap;
use std::fmt;

/// An interned word id.
///
/// `Sym` is a thin newtype over `u32`; ids are dense and start at 0, so they
/// double as vector indices throughout the workspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A bidirectional string ↔ [`Sym`] interner.
///
/// Interning is idempotent: the same string always maps to the same id.
/// Lookup of an id back to its string is O(1).
///
/// ```
/// use l2q_text::SymbolTable;
/// let mut tab = SymbolTable::new();
/// let a = tab.intern("parallel");
/// let b = tab.intern("parallel");
/// assert_eq!(a, b);
/// assert_eq!(tab.resolve(a), "parallel");
/// ```
#[derive(Default, Clone)]
pub struct SymbolTable {
    by_name: HashMap<Box<str>, Sym>,
    names: Vec<Box<str>>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = s.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string without allocating a new id.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.by_name.get(s).copied()
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all `(Sym, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_ref()))
    }

    /// Render a word sequence as a space-joined string (for display/logging).
    pub fn render(&self, words: &[Sym]) -> String {
        let mut out = String::new();
        for (i, &w) in words.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.resolve(w));
        }
        out
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("hpc");
        let b = t.intern("hpc");
        let c = t.intern("parallel");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = format!("w{i}");
            let sym = t.intern(&s);
            assert_eq!(sym.index(), i);
        }
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let words = ["data mining", "tkde", "u illinois"];
        let syms: Vec<_> = words.iter().map(|w| t.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(t.resolve(*s), *w);
        }
    }

    #[test]
    fn get_does_not_allocate() {
        let mut t = SymbolTable::new();
        assert!(t.get("absent").is_none());
        let s = t.intern("present");
        assert_eq!(t.get("present"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_joins_with_spaces() {
        let mut t = SymbolTable::new();
        let a = t.intern("parallel");
        let b = t.intern("research");
        assert_eq!(t.render(&[a, b]), "parallel research");
        assert_eq!(t.render(&[]), "");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let collected: Vec<_> = t.iter().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
