//! Tokenization with dictionary-driven phrase merging.
//!
//! The paper's data model treats "each word \[as\] a term or phrase depending
//! on the tokenization": multi-word units like `data mining` that appear in
//! the type dictionary must tokenize as a *single* word so that templates
//! like `⟨topic⟩ ⟨journal⟩` line up with two-unit queries. The
//! [`Tokenizer`] therefore first splits raw text into lower-case terms and
//! then greedily merges the longest dictionary phrase starting at each
//! position.

use crate::symbol::{Sym, SymbolTable};
use std::collections::HashMap;

/// A dictionary of multi-word phrases to merge during tokenization.
///
/// Phrases are stored as lower-case space-joined strings; matching is
/// greedy longest-first, so if both `data mining` and `data mining systems`
/// are registered, the longer one wins where it applies.
#[derive(Default, Clone, Debug)]
pub struct PhraseDict {
    /// phrase length (in terms) → set of phrases of that length.
    by_len: HashMap<usize, std::collections::HashSet<String>>,
    max_len: usize,
}

impl PhraseDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a phrase given as raw text (it is normalized internally).
    /// Single-term "phrases" are accepted but have no merging effect.
    pub fn add(&mut self, phrase: &str) {
        let lower = phrase.to_lowercase();
        let terms: Vec<String> = split_terms(&lower).map(str::to_owned).collect();
        if terms.len() < 2 {
            return;
        }
        let n = terms.len();
        self.max_len = self.max_len.max(n);
        self.by_len.entry(n).or_default().insert(terms.join(" "));
    }

    /// Longest phrase length registered (0 if none).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Whether `joined` (space-joined lower-case terms) of length `n` is a
    /// registered phrase.
    fn contains(&self, n: usize, joined: &str) -> bool {
        self.by_len.get(&n).is_some_and(|s| s.contains(joined))
    }

    /// Number of registered phrases.
    pub fn len(&self) -> usize {
        self.by_len.values().map(|s| s.len()).sum()
    }

    /// Whether no phrases are registered.
    pub fn is_empty(&self) -> bool {
        self.by_len.is_empty()
    }
}

/// Split raw text into lower-case alphanumeric terms.
///
/// A term is a maximal run of ASCII alphanumerics; everything else is a
/// separator. Unicode letters are kept as-is (lower-cased) — the synthetic
/// corpora are ASCII, but real pages may not be.
fn split_terms(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

/// Tokenizer: raw text → sequence of interned words with phrases merged.
///
/// ```
/// use l2q_text::{PhraseDict, SymbolTable, Tokenizer};
/// let mut dict = PhraseDict::new();
/// dict.add("data mining");
/// let tok = Tokenizer::new(dict);
/// let mut tab = SymbolTable::new();
/// let words = tok.tokenize("His Data-Mining papers in TKDE.", &mut tab);
/// let rendered: Vec<&str> = words.iter().map(|&w| tab.resolve(w)).collect();
/// assert_eq!(rendered, ["his", "data mining", "papers", "in", "tkde"]);
/// ```
#[derive(Default, Clone, Debug)]
pub struct Tokenizer {
    phrases: PhraseDict,
}

impl Tokenizer {
    /// Create a tokenizer with the given phrase dictionary.
    pub fn new(phrases: PhraseDict) -> Self {
        Self { phrases }
    }

    /// Create a tokenizer with no phrase merging.
    pub fn plain() -> Self {
        Self::default()
    }

    /// Access the phrase dictionary.
    pub fn phrases(&self) -> &PhraseDict {
        &self.phrases
    }

    /// Tokenize `text`, interning each word in `table`.
    pub fn tokenize(&self, text: &str, table: &mut SymbolTable) -> Vec<Sym> {
        let lower = text.to_lowercase();
        let terms: Vec<&str> = split_terms(&lower).collect();
        let mut out = Vec::with_capacity(terms.len());
        let mut i = 0;
        let max = self.phrases.max_len();
        let mut scratch = String::new();
        while i < terms.len() {
            let mut merged = false;
            if max >= 2 {
                let upper = max.min(terms.len() - i);
                for n in (2..=upper).rev() {
                    scratch.clear();
                    for (k, t) in terms[i..i + n].iter().enumerate() {
                        if k > 0 {
                            scratch.push(' ');
                        }
                        scratch.push_str(t);
                    }
                    if self.phrases.contains(n, &scratch) {
                        out.push(table.intern(&scratch));
                        i += n;
                        merged = true;
                        break;
                    }
                }
            }
            if !merged {
                out.push(table.intern(terms[i]));
                i += 1;
            }
        }
        out
    }

    /// Tokenize without interning, returning owned word strings. Used by
    /// tooling that does not have a symbol table at hand.
    pub fn tokenize_to_strings(&self, text: &str) -> Vec<String> {
        let mut table = SymbolTable::new();
        self.tokenize(text, &mut table)
            .into_iter()
            .map(|s| table.resolve(s).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(words: &[Sym], tab: &SymbolTable) -> Vec<String> {
        words.iter().map(|&w| tab.resolve(w).to_owned()).collect()
    }

    #[test]
    fn plain_tokenize_lowercases_and_splits() {
        let tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        let w = tok.tokenize("Visit him at Siebel Center, U Illinois!", &mut tab);
        assert_eq!(
            render(&w, &tab),
            ["visit", "him", "at", "siebel", "center", "u", "illinois"]
        );
    }

    #[test]
    fn empty_and_punctuation_only_inputs() {
        let tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        assert!(tok.tokenize("", &mut tab).is_empty());
        assert!(tok.tokenize("!!! ... ---", &mut tab).is_empty());
    }

    #[test]
    fn phrase_merging_is_greedy_longest_first() {
        let mut dict = PhraseDict::new();
        dict.add("data mining");
        dict.add("data mining systems");
        let tok = Tokenizer::new(dict);
        let mut tab = SymbolTable::new();
        let w = tok.tokenize("data mining systems research", &mut tab);
        assert_eq!(render(&w, &tab), ["data mining systems", "research"]);
    }

    #[test]
    fn phrase_merging_applies_repeatedly() {
        let mut dict = PhraseDict::new();
        dict.add("machine learning");
        let tok = Tokenizer::new(dict);
        let mut tab = SymbolTable::new();
        let w = tok.tokenize("machine learning and machine learning", &mut tab);
        assert_eq!(
            render(&w, &tab),
            ["machine learning", "and", "machine learning"]
        );
    }

    #[test]
    fn overlapping_phrases_do_not_double_consume() {
        let mut dict = PhraseDict::new();
        dict.add("a b");
        dict.add("b c");
        let tok = Tokenizer::new(dict);
        let mut tab = SymbolTable::new();
        // Greedy left-to-right: "a b" merges first, leaving "c" alone.
        let w = tok.tokenize("a b c", &mut tab);
        assert_eq!(render(&w, &tab), ["a b", "c"]);
    }

    #[test]
    fn hyphens_and_case_are_normalized_inside_phrases() {
        let mut dict = PhraseDict::new();
        dict.add("Data Mining");
        let tok = Tokenizer::new(dict);
        let mut tab = SymbolTable::new();
        let w = tok.tokenize("DATA-mining", &mut tab);
        assert_eq!(render(&w, &tab), ["data mining"]);
    }

    #[test]
    fn numbers_are_terms() {
        let tok = Tokenizer::plain();
        let mut tab = SymbolTable::new();
        let w = tok.tokenize("BMW 3 series 328i", &mut tab);
        assert_eq!(render(&w, &tab), ["bmw", "3", "series", "328i"]);
    }

    #[test]
    fn single_term_phrases_are_ignored() {
        let mut dict = PhraseDict::new();
        dict.add("solo");
        assert!(dict.is_empty());
    }

    #[test]
    fn dict_len_counts_phrases() {
        let mut dict = PhraseDict::new();
        dict.add("a b");
        dict.add("c d e");
        dict.add("a b"); // duplicate
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.max_len(), 3);
    }
}
