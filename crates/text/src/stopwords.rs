//! Stopword list.
//!
//! Candidate queries consisting solely of stopwords are useless to a search
//! engine (they match everything), so candidate enumeration prunes them.
//! The list is a compact English function-word list; it is deliberately
//! conservative — aspect-indicative content words must never be stopped.

/// Sorted list of stopwords (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a", "about", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "below", "between", "both", "but", "by", "can", "did",
    "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further", "had", "has",
    "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into",
    "is", "it", "its", "itself", "just", "me", "more", "most", "my", "no", "nor", "not", "now",
    "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over", "own", "s",
    "same", "she", "should", "so", "some", "such", "t", "than", "that", "the", "their", "theirs",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your", "yours",
];

/// Whether `word` is a stopword. Case-sensitive; callers lower-case first
/// (the [`crate::Tokenizer`] always emits lower-case words).
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Whether every word in the (already tokenized, lower-case) sequence is a
/// stopword. Empty sequences count as all-stopword (they are degenerate).
pub fn all_stopwords<'a, I: IntoIterator<Item = &'a str>>(words: I) -> bool {
    for w in words {
        if !is_stopword(w) {
            return false;
        }
    }
    // Empty input is degenerate — treat as stopword-only.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "unsorted or duplicate: {:?}", w);
        }
    }

    #[test]
    fn common_function_words_are_stopped() {
        for w in ["the", "of", "and", "is", "a"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_kept() {
        for w in ["research", "parallel", "hpc", "award", "safety", "price"] {
            assert!(!is_stopword(w), "{w} must not be a stopword");
        }
    }

    #[test]
    fn all_stopwords_detects_degenerate_queries() {
        assert!(all_stopwords(["the", "of"]));
        assert!(!all_stopwords(["the", "research"]));
        assert!(all_stopwords(std::iter::empty::<&str>()));
    }
}
