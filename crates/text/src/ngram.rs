//! Sliding-window n-gram enumeration.
//!
//! Candidate queries are enumerated from pages "by applying a sliding window
//! of ℓ words over the page for each ℓ ∈ {1, 2, …, L}" (paper Sect. VI-A,
//! with L = 3 by default). This module provides that enumeration over
//! interned word sequences.

use crate::symbol::Sym;

/// Iterator over all n-grams of lengths `1..=max_len` of a word slice.
///
/// Order: all windows of length 1 left-to-right, then length 2, and so on —
/// deterministic so downstream candidate sets are reproducible.
pub struct NGramIter<'a> {
    words: &'a [Sym],
    len: usize,
    max_len: usize,
    pos: usize,
}

impl<'a> Iterator for NGramIter<'a> {
    type Item = &'a [Sym];

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.len > self.max_len || self.len > self.words.len() {
                return None;
            }
            if self.pos + self.len <= self.words.len() {
                let gram = &self.words[self.pos..self.pos + self.len];
                self.pos += 1;
                return Some(gram);
            }
            self.len += 1;
            self.pos = 0;
        }
    }
}

/// Enumerate all n-grams of lengths `1..=max_len` from `words`.
///
/// ```
/// use l2q_text::{ngrams, Sym};
/// let w = [Sym(0), Sym(1), Sym(2)];
/// let grams: Vec<Vec<Sym>> = ngrams(&w, 2).map(|g| g.to_vec()).collect();
/// assert_eq!(grams.len(), 3 + 2); // three unigrams + two bigrams
/// ```
pub fn ngrams(words: &[Sym], max_len: usize) -> NGramIter<'_> {
    NGramIter {
        words,
        len: 1,
        max_len,
        pos: 0,
    }
}

/// Count of n-grams that [`ngrams`] will yield (for pre-allocation).
pub fn ngram_count(n_words: usize, max_len: usize) -> usize {
    (1..=max_len)
        .filter(|&l| l <= n_words)
        .map(|l| n_words - l + 1)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(n: u32) -> Vec<Sym> {
        (0..n).map(Sym).collect()
    }

    #[test]
    fn enumerates_all_windows_in_order() {
        let w = syms(4); // 0 1 2 3
        let grams: Vec<Vec<u32>> = ngrams(&w, 3)
            .map(|g| g.iter().map(|s| s.0).collect())
            .collect();
        assert_eq!(
            grams,
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![3],
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![0, 1, 2],
                vec![1, 2, 3],
            ]
        );
    }

    #[test]
    fn max_len_longer_than_input_is_safe() {
        let w = syms(2);
        let grams: Vec<_> = ngrams(&w, 10).collect();
        assert_eq!(grams.len(), 2 + 1);
    }

    #[test]
    fn empty_input_yields_nothing() {
        let w: Vec<Sym> = vec![];
        assert_eq!(ngrams(&w, 3).count(), 0);
    }

    #[test]
    fn max_len_zero_yields_nothing() {
        let w = syms(5);
        assert_eq!(ngrams(&w, 0).count(), 0);
    }

    #[test]
    fn count_matches_enumeration() {
        for n in 0..8usize {
            for l in 0..5usize {
                let w = syms(n as u32);
                assert_eq!(
                    ngrams(&w, l).count(),
                    ngram_count(n, l),
                    "n={n} max_len={l}"
                );
            }
        }
    }
}
