//! Sparse bag-of-words vectors.
//!
//! The paper's data model views each page and each query as a bag of words.
//! [`Bow`] stores term frequencies sparsely, sorted by symbol id, so that
//! dot products, containment tests and language-model scoring are cheap
//! merge-joins.

use crate::symbol::Sym;

/// A sparse term-frequency vector, sorted by [`Sym`] id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bow {
    /// `(word, count)` pairs sorted by word id, counts ≥ 1.
    entries: Vec<(Sym, u32)>,
    total: u64,
}

impl Bow {
    /// Build from an unordered word sequence.
    pub fn from_words(words: &[Sym]) -> Self {
        let mut sorted: Vec<Sym> = words.to_vec();
        sorted.sort_unstable();
        let mut entries: Vec<(Sym, u32)> = Vec::new();
        for w in sorted {
            match entries.last_mut() {
                Some((last, c)) if *last == w => *c += 1,
                _ => entries.push((w, 1)),
            }
        }
        Self {
            total: words.len() as u64,
            entries,
        }
    }

    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Term frequency of `w`.
    pub fn tf(&self, w: Sym) -> u32 {
        match self.entries.binary_search_by_key(&w, |&(s, _)| s) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Whether the bag contains `w` at all.
    pub fn contains(&self, w: Sym) -> bool {
        self.tf(w) > 0
    }

    /// Whether this bag contains every word of `other` (multiset
    /// containment: counts in `self` must be ≥ counts in `other`).
    pub fn contains_all(&self, other: &Bow) -> bool {
        other.iter().all(|(w, c)| self.tf(w) >= c)
    }

    /// Total number of tokens (with multiplicity).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct words.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over `(word, count)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Merge another bag into this one (component-wise sum).
    pub fn merge(&mut self, other: &Bow) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, ca) = self.entries[i];
            let (b, cb) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    merged.push((a, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((b, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a, ca + cb));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
        self.total += other.total;
    }

    /// Cosine similarity between two bags (0.0 for empty bags).
    pub fn cosine(&self, other: &Bow) -> f64 {
        let mut dot = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, ca) = self.entries[i];
            let (b, cb) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += ca as f64 * cb as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        let na: f64 = self.entries.iter().map(|&(_, c)| (c as f64).powi(2)).sum();
        let nb: f64 = other.entries.iter().map(|&(_, c)| (c as f64).powi(2)).sum();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

impl FromIterator<Sym> for Bow {
    fn from_iter<T: IntoIterator<Item = Sym>>(iter: T) -> Self {
        let words: Vec<Sym> = iter.into_iter().collect();
        Bow::from_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bow(ids: &[u32]) -> Bow {
        let words: Vec<Sym> = ids.iter().copied().map(Sym).collect();
        Bow::from_words(&words)
    }

    #[test]
    fn tf_counts_multiplicity() {
        let b = bow(&[3, 1, 3, 3, 2]);
        assert_eq!(b.tf(Sym(3)), 3);
        assert_eq!(b.tf(Sym(1)), 1);
        assert_eq!(b.tf(Sym(9)), 0);
        assert_eq!(b.len(), 5);
        assert_eq!(b.distinct(), 3);
    }

    #[test]
    fn entries_are_sorted() {
        let b = bow(&[5, 1, 9, 1]);
        let ids: Vec<u32> = b.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, [1, 5, 9]);
    }

    #[test]
    fn contains_all_is_multiset_containment() {
        let big = bow(&[1, 1, 2, 3]);
        assert!(big.contains_all(&bow(&[1, 2])));
        assert!(big.contains_all(&bow(&[1, 1])));
        assert!(!big.contains_all(&bow(&[1, 1, 1])));
        assert!(!big.contains_all(&bow(&[4])));
        assert!(big.contains_all(&Bow::new()));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = bow(&[1, 2]);
        a.merge(&bow(&[2, 3, 3]));
        assert_eq!(a.tf(Sym(1)), 1);
        assert_eq!(a.tf(Sym(2)), 2);
        assert_eq!(a.tf(Sym(3)), 2);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = bow(&[1, 2]);
        let before = a.clone();
        a.merge(&Bow::new());
        assert_eq!(a, before);
    }

    #[test]
    fn cosine_of_identical_bags_is_one() {
        let a = bow(&[1, 2, 2, 3]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_bags_is_zero() {
        assert_eq!(bow(&[1, 2]).cosine(&bow(&[3, 4])), 0.0);
        assert_eq!(Bow::new().cosine(&bow(&[1])), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let b: Bow = [Sym(2), Sym(1), Sym(2)].into_iter().collect();
        assert_eq!(b.tf(Sym(2)), 2);
    }
}
