//! Bounded, timeout-tolerant line framing shared by server and client.
//!
//! `BufReader::read_line` has two failure modes that matter at a serving
//! boundary: a read timeout mid-line makes the *caller* responsible for
//! not discarding the partial bytes already buffered (the seed server
//! cleared them, corrupting any request that arrived across a pause),
//! and an adversarial peer that never sends a newline grows the buffer
//! without bound. [`LineReader`] fixes both: partial lines survive
//! `WouldBlock`/`TimedOut` returns ([`ReadOutcome::Idle`]) because the
//! accumulation buffer lives in the reader, and a line that exceeds
//! `max_line_bytes` surfaces as [`ReadOutcome::Overflow`] while buffered
//! memory stays `O(max_line_bytes)`.
//!
//! The framing core is the push-based [`LineBuffer`]: bytes go in via
//! [`LineBuffer::feed`] in whatever chunk sizes the transport produced,
//! complete frames come out of [`LineBuffer::next_frame`]. The blocking
//! [`LineReader`] is a thin read-pump over it; the reactor feeds the
//! same buffer straight from nonblocking socket reads, so both serve
//! modes share one bounded framing implementation.

use std::io::{self, ErrorKind, Read};
use std::time::{Duration, Instant};

/// Default request-line cap (requests are small; big payloads are a bug
/// or an attack). Response lines use a larger client-side cap — see
/// [`crate::client::ClientConfig`].
pub const DEFAULT_MAX_LINE_BYTES: usize = 256 * 1024;

/// Read granularity; also bounds how far past `max_line_bytes` the
/// pending buffer can momentarily grow.
const CHUNK: usize = 4096;

/// One call's outcome. `Idle` and `Overflow` are states, not errors:
/// the caller decides whether to keep polling or hang up.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete line, `\n` (and any `\r`) stripped. Invalid UTF-8 is
    /// replaced rather than dropped so the caller can report it.
    Line(String),
    /// The peer closed the stream (any unterminated trailing line was
    /// returned as a `Line` by the previous call).
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`); any partial line
    /// stays buffered for the next call.
    Idle,
    /// The current line exceeds `max_line_bytes`. The buffered prefix
    /// has been dropped; use [`LineReader::discard_current_line`] to
    /// drain to the newline before closing gracefully.
    Overflow {
        /// Bytes of the oversized line seen so far.
        buffered: usize,
    },
}

/// One frame out of a [`LineBuffer`]. The push-mode analogue of the
/// `Line`/`Overflow` arms of [`ReadOutcome`] (`Eof`/`Idle` are transport
/// conditions the buffer never sees).
#[derive(Debug)]
pub enum Frame {
    /// A complete line, `\n` (and any `\r`) stripped, lossy-decoded.
    Line(String),
    /// The current line exceeds `max_line_bytes`; its buffered prefix
    /// has been dropped. Emitted again for each newline-free feed until
    /// the terminator arrives (the count grows monotonically).
    Overflow {
        /// Bytes of the oversized line seen so far.
        buffered: usize,
    },
}

/// The push-based framing core: feed transport chunks in, pop complete
/// frames out. Memory stays `O(max_line_bytes + feed chunk)` no matter
/// how long an unterminated line runs.
pub struct LineBuffer {
    /// Bytes fed but not yet framed (at most one partial line plus
    /// whatever pipelined lines arrived in the same chunks).
    pending: Vec<u8>,
    /// Scan resume point: everything before it is known newline-free.
    scan_from: usize,
    max_line_bytes: usize,
    /// Oversized-line bytes dropped so far (overflow mode).
    overflowed: usize,
}

impl LineBuffer {
    /// A framer capping any single line at `max_line_bytes`.
    pub fn new(max_line_bytes: usize) -> Self {
        Self {
            pending: Vec::new(),
            scan_from: 0,
            max_line_bytes: max_line_bytes.max(1),
            overflowed: 0,
        }
    }

    /// Append transport bytes. Any chunking is fine — 1-byte reads,
    /// mid-UTF-8 splits, many pipelined lines in one chunk.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (unframed).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Mid-oversized-line: frames are being discarded until the line's
    /// terminating newline arrives.
    pub fn in_overflow(&self) -> bool {
        self.overflowed > 0
    }

    /// Pop one complete line off the front of `pending`, if any.
    fn take_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.pending[self.scan_from..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| self.scan_from + p)?;
        let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
        self.scan_from = 0;
        line.pop(); // the '\n'
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(line)
    }

    /// Pop the next frame, or `None` when more input is needed. In
    /// overflow mode the terminator of the rejected line is swallowed
    /// and framing resumes with whatever follows it.
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            if let Some(line) = self.take_line() {
                if self.overflowed > 0 {
                    // The terminator of a line we already rejected:
                    // swallow it and resume normal framing.
                    self.overflowed = 0;
                    continue;
                }
                return Some(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scan_from = self.pending.len();
            if (self.overflowed > 0 && !self.pending.is_empty())
                || self.pending.len() > self.max_line_bytes
            {
                // Drop the buffered prefix so an endless unterminated
                // line costs O(chunk), not O(line).
                self.overflowed += self.pending.len();
                self.pending.clear();
                self.scan_from = 0;
                return Some(Frame::Overflow {
                    buffered: self.overflowed,
                });
            }
            return None;
        }
    }

    /// Deliver an unterminated trailing line at EOF (at most once; a
    /// rejected oversized tail is never delivered).
    pub fn finish(&mut self) -> Option<String> {
        if self.overflowed > 0 || self.pending.is_empty() {
            return None;
        }
        let line = std::mem::take(&mut self.pending);
        self.scan_from = 0;
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Overflow-mode drain step: scan buffered bytes for the rejected
    /// line's terminator. Returns `true` when it was found (framing has
    /// resumed; bytes after the newline stay buffered), `false` when the
    /// buffer was newline-free and has been discarded.
    pub fn discard_to_newline(&mut self) -> bool {
        if self.overflowed == 0 {
            return true;
        }
        if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            // Found the terminator: drop through it, keep whatever
            // follows, and resume normal framing.
            self.pending.drain(..=pos);
            self.scan_from = 0;
            self.overflowed = 0;
            return true;
        }
        self.overflowed += self.pending.len();
        self.pending.clear();
        self.scan_from = 0;
        false
    }
}

/// An incremental newline framer over any [`Read`]: a read-pump around
/// [`LineBuffer`] for the blocking (thread-per-connection) paths.
pub struct LineReader<R> {
    inner: R,
    buf: LineBuffer,
}

impl<R: Read> LineReader<R> {
    /// Wrap a stream, capping any single line at `max_line_bytes`.
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        Self {
            inner,
            buf: LineBuffer::new(max_line_bytes),
        }
    }

    /// The wrapped stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Advance the framer by at most one line. Never blocks longer than
    /// the stream's own read timeout.
    pub fn read_line(&mut self) -> io::Result<ReadOutcome> {
        loop {
            match self.buf.next_frame() {
                Some(Frame::Line(line)) => return Ok(ReadOutcome::Line(line)),
                Some(Frame::Overflow { buffered }) => {
                    return Ok(ReadOutcome::Overflow { buffered })
                }
                None => {}
            }
            if self.buf.in_overflow() {
                // Mid-oversized-line with nothing buffered: stay in the
                // overflow state without reading further; draining is
                // the caller's explicit move (`discard_current_line`).
                return Ok(ReadOutcome::Overflow {
                    buffered: self.buf.overflowed,
                });
            }
            let mut chunk = [0u8; CHUNK];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Ok(match self.buf.finish() {
                        // Unterminated trailing line at EOF: deliver it once.
                        Some(line) => ReadOutcome::Line(line),
                        None => ReadOutcome::Eof,
                    });
                }
                Ok(n) => self.buf.feed(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(ReadOutcome::Idle)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// After an [`ReadOutcome::Overflow`], drop bytes until the line's
    /// terminating newline, EOF, or `timeout` — whichever comes first.
    ///
    /// Draining before closing turns the close into a graceful FIN: an
    /// immediate close with unread bytes in the socket buffer resets the
    /// connection, which can destroy the error response before a slow
    /// peer reads it.
    pub fn discard_current_line(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.buf.in_overflow() {
            if self.buf.discard_to_newline() {
                return;
            }
            let mut chunk = [0u8; CHUNK];
            match self.inner.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => self.buf.feed(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if Instant::now() >= deadline {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted stream: each entry is either bytes to deliver or a
    /// timeout to inject.
    enum Step {
        Give(&'static [u8]),
        Timeout,
    }

    struct Scripted {
        steps: std::collections::VecDeque<Step>,
    }

    impl Scripted {
        fn new(steps: Vec<Step>) -> Self {
            Self {
                steps: steps.into(),
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                None => Ok(0),
                Some(Step::Timeout) => Err(io::Error::new(ErrorKind::WouldBlock, "scripted")),
                Some(Step::Give(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.steps.push_front(Step::Give(&bytes[n..]));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn partial_line_survives_timeouts() {
        let stream = Scripted::new(vec![
            Step::Give(b"{\"op\":"),
            Step::Timeout,
            Step::Give(b"\"pi"),
            Step::Timeout,
            Step::Timeout,
            Step::Give(b"ng\"}\n"),
        ]);
        let mut reader = LineReader::new(stream, 1024);
        let mut lines = Vec::new();
        loop {
            match reader.read_line().unwrap() {
                ReadOutcome::Line(l) => lines.push(l),
                ReadOutcome::Idle => continue,
                ReadOutcome::Eof => break,
                ReadOutcome::Overflow { .. } => panic!("no overflow expected"),
            }
        }
        assert_eq!(lines, vec!["{\"op\":\"ping\"}".to_string()]);
    }

    #[test]
    fn pipelined_lines_split_on_newlines() {
        let stream = Scripted::new(vec![Step::Give(b"a\nbb\r\nccc\nd")]);
        let mut reader = LineReader::new(stream, 1024);
        let mut lines = Vec::new();
        loop {
            match reader.read_line().unwrap() {
                ReadOutcome::Line(l) => lines.push(l),
                ReadOutcome::Eof => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // The unterminated trailing "d" is delivered at EOF.
        assert_eq!(lines, vec!["a", "bb", "ccc", "d"]);
    }

    #[test]
    fn oversized_line_overflows_with_bounded_memory() {
        let big = vec![b'x'; 64 * 1024];
        let big: &'static [u8] = Box::leak(big.into_boxed_slice());
        let stream = Scripted::new(vec![Step::Give(big), Step::Give(b"\nping\n")]);
        let mut reader = LineReader::new(stream, 1000);
        let overflow = loop {
            match reader.read_line().unwrap() {
                ReadOutcome::Overflow { buffered } => break buffered,
                ReadOutcome::Idle => continue,
                other => panic!("expected overflow, got {other:?}"),
            }
        };
        assert!(overflow > 1000, "overflow reported {overflow} bytes");
        // The pending buffer must not hold the oversized line.
        assert!(reader.buf.buffered() <= CHUNK);
        // Draining resumes normal framing on the next line.
        reader.discard_current_line(Duration::from_secs(1));
        match reader.read_line().unwrap() {
            ReadOutcome::Line(l) => assert_eq!(l, "ping"),
            other => panic!("expected line after drain, got {other:?}"),
        }
    }

    #[test]
    fn eof_without_data_is_eof() {
        let mut reader = LineReader::new(Scripted::new(vec![]), 16);
        assert!(matches!(reader.read_line().unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn line_buffer_reassembles_byte_at_a_time_feeds() {
        let mut buf = LineBuffer::new(64);
        let mut lines = Vec::new();
        for &b in b"a\nbb\r\ncafe\xCC\x81\n" {
            buf.feed(&[b]);
            while let Some(frame) = buf.next_frame() {
                match frame {
                    Frame::Line(l) => lines.push(l),
                    Frame::Overflow { .. } => panic!("no overflow expected"),
                }
            }
        }
        assert_eq!(lines, vec!["a", "bb", "cafe\u{301}"]);
        assert!(buf.finish().is_none());
    }

    #[test]
    fn line_buffer_overflow_spans_chunk_boundaries() {
        let mut buf = LineBuffer::new(10);
        let mut overflowed = 0usize;
        // 30 newline-free bytes in 5-byte chunks: the cap must trigger
        // even though no single feed exceeds it.
        for chunk in [b'x'; 30].chunks(5) {
            buf.feed(chunk);
            while let Some(frame) = buf.next_frame() {
                match frame {
                    Frame::Overflow { buffered } => overflowed = buffered,
                    Frame::Line(l) => panic!("unexpected line {l:?}"),
                }
            }
        }
        assert!(overflowed > 10, "cap never triggered across chunks");
        assert!(buf.in_overflow());
        // Terminator arrives split across feeds, trailing line resumes.
        buf.feed(b"tail");
        assert!(!buf.discard_to_newline());
        buf.feed(b"\nping\n");
        assert!(buf.discard_to_newline());
        match buf.next_frame() {
            Some(Frame::Line(l)) => assert_eq!(l, "ping"),
            other => panic!("expected line after drain, got {other:?}"),
        }
    }
}
