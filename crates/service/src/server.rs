//! The TCP front end: accept loop, per-connection dispatch, idle sweeper.
//!
//! The listener runs nonblocking and polls a shutdown flag between
//! accepts, so `ServerHandle::shutdown` stops the server without a
//! sentinel connection. Each accepted connection gets its own thread that
//! reads newline-delimited JSON requests and writes one JSON response
//! line per request; step execution is delegated to the shared
//! [`Scheduler`] so a slow session never starves the accept loop.
//!
//! The wire boundary is hardened against misbehaving peers: request
//! framing is a bounded [`LineReader`] (partial requests survive read
//! timeouts; a line past `max_line_bytes` gets an `ok:false` error and a
//! graceful close instead of unbounded buffering), admission control
//! caps concurrent connections with a polite `"server at capacity"`
//! refusal line, `step` requests honor a deadline after which the caller
//! gets a `Deadline` error while the batch finishes in the background,
//! and shutdown drains in-flight connections within a bounded timeout.

use crate::bundle::ServingBundle;
use crate::framing::{LineReader, ReadOutcome, DEFAULT_MAX_LINE_BYTES};
use crate::proto::{Request, Response, StatsBody};
use crate::reactor::{EngineConfig, EngineHandle, Injector, ReplyHandle, WireHandler};
use crate::scheduler::Scheduler;
use crate::session::{
    lock_recover, SelectorKind, ServiceError, ServiceMetrics, SessionManager, SessionSpec,
    SessionStatus,
};
use crossbeam::channel::RecvTimeoutError;
use l2q_corpus::{AspectId, EntityId};
use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which serving engine handles accepted connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// One thread per connection (the original hardened path, kept for
    /// A/B comparison via `--serve-mode threads`).
    Threads,
    /// One reactor thread multiplexing every connection over an epoll
    /// readiness loop (the default): idle connections cost a slab entry,
    /// not a thread.
    Reactor,
}

impl ServeMode {
    /// Parse a `--serve-mode` value (`threads` | `reactor`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(Self::Threads),
            "reactor" => Some(Self::Reactor),
            _ => None,
        }
    }
}

/// Server sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Step-executing worker threads.
    pub workers: usize,
    /// Bounded step-queue capacity (backpressure threshold).
    pub queue_cap: usize,
    /// Sessions idle longer than this are evicted.
    pub idle_timeout: Duration,
    /// How often the sweeper scans for idle sessions.
    pub sweep_interval: Duration,
    /// Hard cap on `steps` per request (protects the queue from hogs).
    pub max_steps_per_request: usize,
    /// Concurrent-connection cap; connections beyond it get a one-line
    /// `"server at capacity"` refusal and a close.
    pub max_connections: usize,
    /// Hard cap on one request line's bytes; an oversized line gets an
    /// `ok:false` error and the connection is closed.
    pub max_line_bytes: usize,
    /// Default `step` deadline in milliseconds (0 = wait indefinitely);
    /// requests may override with their own `deadline_ms`.
    pub request_deadline_ms: u64,
    /// How long `shutdown` waits for in-flight connections to finish
    /// before returning anyway.
    pub drain_timeout: Duration,
    /// Fleet identity of this server (`l2q-serve --shard-id`), echoed in
    /// `stats` so a router can tell which shard answered. None = not a
    /// fleet member.
    pub shard_id: Option<String>,
    /// Which serving engine handles connections.
    pub serve_mode: ServeMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 64,
            idle_timeout: Duration::from_secs(300),
            sweep_interval: Duration::from_secs(5),
            max_steps_per_request: 64,
            max_connections: 256,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            request_deadline_ms: 0,
            drain_timeout: Duration::from_secs(5),
            shard_id: None,
            serve_mode: ServeMode::Reactor,
        }
    }
}

/// A running harvest server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    drain_timeout: Duration,
    accept_thread: Option<JoinHandle<()>>,
    sweeper_thread: Option<JoinHandle<()>>,
    engine: Option<EngineHandle>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (e.g. by a client's
    /// `shutdown` op) — the accept loop is stopping or stopped.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Connections currently admitted (the admission-control count both
    /// serve modes charge against).
    pub fn active_connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain in-flight connections (bounded by the
    /// configured drain timeout), join service threads. Connection
    /// threads notice the stop flag within one read-timeout slice and
    /// finish the request they are serving first; idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(engine) = &self.engine {
            engine.wake(); // start the reactor's bounded drain promptly
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        while self.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(mut engine) = self.engine.take() {
            engine.join();
        }
        if let Some(h) = self.sweeper_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shared state every connection thread dispatches against.
struct ServerCore {
    manager: SessionManager,
    scheduler: Scheduler,
    metrics: Arc<ServiceMetrics>,
    max_steps_per_request: usize,
    max_connections: usize,
    max_line_bytes: usize,
    request_deadline_ms: u64,
    shard_id: Option<String>,
    /// Connections currently being served (admission-control semaphore).
    connections: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
}

/// Wire-boundary hardening metrics, registered once per process.
struct WireObs {
    connections_active: Arc<l2q_obs::Gauge>,
    connections_refused: Arc<l2q_obs::Counter>,
    oversized_requests: Arc<l2q_obs::Counter>,
    deadline_exceeded: Arc<l2q_obs::Counter>,
}

fn wire_boundary_obs() -> &'static WireObs {
    static OBS: OnceLock<WireObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = l2q_obs::global();
        WireObs {
            connections_active: reg.gauge("wire_connections_active"),
            connections_refused: reg.counter("wire_connections_refused_total"),
            oversized_requests: reg.counter("wire_oversized_requests_total"),
            deadline_exceeded: reg.counter("wire_deadline_exceeded_total"),
        }
    })
}

/// An occupied admission slot; releases the connection count (and the
/// active gauge) however the connection thread exits.
struct ConnSlot {
    connections: Arc<AtomicUsize>,
}

impl ConnSlot {
    /// Try to occupy a slot; `None` means the server is at capacity.
    fn acquire(connections: &Arc<AtomicUsize>, max: usize) -> Option<Self> {
        let mut current = connections.load(Ordering::SeqCst);
        loop {
            if current >= max {
                return None;
            }
            match connections.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    wire_boundary_obs().connections_active.inc();
                    return Some(Self {
                        connections: connections.clone(),
                    });
                }
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.connections.fetch_sub(1, Ordering::SeqCst);
        wire_boundary_obs().connections_active.dec();
    }
}

/// A server over a bundle.
pub struct HarvestServer;

impl HarvestServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// the bundle until the returned handle shuts down.
    pub fn spawn(
        bundle: Arc<ServingBundle>,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        Self::spawn_with_store(bundle, cfg, None, addr)
    }

    /// [`spawn`](Self::spawn) with an optional durable session store
    /// (`l2q-serve --data-dir`). Sessions stored by a previous process are
    /// visible immediately (`list_sessions`) and restored transparently on
    /// first touch.
    pub fn spawn_with_store(
        bundle: Arc<ServingBundle>,
        cfg: ServerConfig,
        store: Option<Arc<l2q_store::SessionStore>>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let metrics = Arc::new(ServiceMetrics::default());
        let core = Arc::new(ServerCore {
            manager: SessionManager::with_store(bundle, cfg.idle_timeout, metrics.clone(), store),
            scheduler: Scheduler::new(cfg.workers, cfg.queue_cap, metrics.clone()),
            metrics,
            max_steps_per_request: cfg.max_steps_per_request.max(1),
            max_connections: cfg.max_connections.max(1),
            max_line_bytes: cfg.max_line_bytes.max(1),
            request_deadline_ms: cfg.request_deadline_ms,
            shard_id: cfg.shard_id.clone(),
            connections: connections.clone(),
            stop: stop.clone(),
        });

        let engine = match cfg.serve_mode {
            ServeMode::Reactor => Some(crate::reactor::spawn_engine(
                Arc::new(ServiceWire { core: core.clone() }),
                EngineConfig {
                    name: "l2q-reactor".into(),
                    max_line_bytes: cfg.max_line_bytes.max(1),
                    drain_timeout: cfg.drain_timeout,
                    stop: stop.clone(),
                },
            )?),
            ServeMode::Threads => None,
        };
        let injector = engine.as_ref().map(EngineHandle::injector);

        let accept_core = core.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("l2q-accept".into())
            .spawn(move || accept_loop(listener, accept_core, accept_stop, injector))?;

        let sweep_core = core;
        let sweep_stop = stop.clone();
        let sweep_every = cfg.sweep_interval;
        let sweeper_thread = std::thread::Builder::new()
            .name("l2q-sweeper".into())
            .spawn(move || {
                // Poll in short slices so shutdown is prompt even with a
                // long sweep interval.
                let slice = Duration::from_millis(20).min(sweep_every);
                let mut slept = Duration::ZERO;
                while !sweep_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    slept += slice;
                    if slept >= sweep_every {
                        slept = Duration::ZERO;
                        sweep_core.manager.evict_idle();
                    }
                }
            })?;

        Ok(ServerHandle {
            addr: local,
            stop,
            connections,
            drain_timeout: cfg.drain_timeout,
            accept_thread: Some(accept_thread),
            sweeper_thread: Some(sweeper_thread),
            engine,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
    injector: Option<Injector>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => match &injector {
                Some(injector) => accept_reactor(stream, &core, injector),
                None => match ConnSlot::acquire(&core.connections, core.max_connections) {
                    Some(slot) => {
                        let core = core.clone();
                        let _ = std::thread::Builder::new()
                            .name("l2q-conn".into())
                            .spawn(move || serve_connection(stream, core, slot));
                    }
                    None => refuse_at_capacity(stream),
                },
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reactor-mode admission: occupy a slot and hand the socket to the
/// reactor (which releases the slot on every close path, socket errors
/// included), or hand it over with a one-shot refusal line written by
/// the reactor's nonblocking writer — the accept thread never blocks on
/// a peer either way.
fn accept_reactor(stream: TcpStream, core: &Arc<ServerCore>, injector: &Injector) {
    match ConnSlot::acquire(&core.connections, core.max_connections) {
        Some(slot) => injector.hand_off(stream, Some(Box::new(slot)), None),
        None => {
            wire_boundary_obs().connections_refused.inc();
            injector.hand_off(stream, None, Some(capacity_refusal()));
        }
    }
}

fn capacity_refusal() -> Response {
    Response {
        ok: false,
        error: Some("server at capacity".into()),
        retry_after_ms: Some(100),
        ..Response::default()
    }
}

/// Tell an over-capacity client why it is being hung up on, politely and
/// with a bounded write, then close (thread-mode path).
fn refuse_at_capacity(mut stream: TcpStream) {
    wire_boundary_obs().connections_refused.inc();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut out =
        serde_json::to_string(&capacity_refusal()).unwrap_or_else(|_| "{\"ok\":false}".into());
    out.push('\n');
    let _ = stream.write_all(out.as_bytes());
}

/// The service's [`WireHandler`]: ops that never block (no session
/// locks, no disk) run inline on the reactor thread; everything else is
/// dispatched through the scheduler's bounded queue, sharing one
/// backpressure boundary with thread-mode step batches.
struct ServiceWire {
    core: Arc<ServerCore>,
}

impl WireHandler for ServiceWire {
    fn run_inline(&self, req: &Request) -> Option<Response> {
        match req.op.as_str() {
            "ping" | "stats" | "metrics" | "trace" | "shutdown" => {
                Some(dispatch_with(req, &self.core, StepMode::Direct))
            }
            _ => None,
        }
    }

    fn deadline_ms(&self, req: &Request) -> u64 {
        if req.op == "step" {
            req.deadline_ms
                .filter(|&d| d > 0)
                .unwrap_or(self.core.request_deadline_ms)
        } else {
            0
        }
    }

    fn dispatch(&self, req: Request, reply: ReplyHandle) {
        // The reply stays outside the closure until submission succeeds,
        // so a full queue answers `Overloaded` with a retry hint instead
        // of a dropped-reply internal error.
        let slot = Arc::new(Mutex::new(Some(reply)));
        let task_slot = slot.clone();
        let core = self.core.clone();
        // One trace context for the whole request: entered here so the
        // scheduler captures it at enqueue (queue-wait spans join the
        // caller's trace exactly as in thread mode), re-entered by the
        // worker when the task runs.
        let ctx = trace_ctx_for(&req);
        let task: Box<dyn FnOnce() + Send> = Box::new(move || {
            let reply = task_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(reply) = reply {
                reply.complete(dispatch_ctx(&req, &core, StepMode::Direct, ctx));
            }
        });
        let _trace_guard = ctx.map(l2q_obs::trace::enter);
        if let Err(e) = self.core.scheduler.submit_task(task) {
            if let Some(reply) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                reply.complete(Response::err(&e));
            }
        }
    }

    fn on_oversized(&self) {
        wire_boundary_obs().oversized_requests.inc();
    }

    fn on_deadline(&self) {
        wire_boundary_obs().deadline_exceeded.inc();
    }
}

fn serve_connection(stream: TcpStream, core: Arc<ServerCore>, _slot: ConnSlot) {
    // A read timeout lets the connection thread notice server shutdown
    // instead of parking forever on an idle client; the LineReader keeps
    // any partial request buffered across those timeouts.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream, core.max_line_bytes);
    loop {
        if core.stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match reader.read_line() {
            Ok(ReadOutcome::Line(line)) => line,
            Ok(ReadOutcome::Eof) => return, // client hung up
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Overflow { buffered }) => {
                wire_boundary_obs().oversized_requests.inc();
                let resp = Response {
                    ok: false,
                    error: Some(format!(
                        "request line exceeds {} bytes ({} read); closing connection",
                        core.max_line_bytes, buffered
                    )),
                    ..Response::default()
                };
                let _ = write_response(&mut writer, &resp);
                // Drain to the newline so the close is a graceful FIN and
                // the error line above survives to the peer.
                reader.discard_current_line(Duration::from_secs(2));
                return;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(req) => {
                let mut resp = dispatch(&req, &core);
                resp.request_id = req.request_id;
                resp
            }
            Err(e) => Response {
                ok: false,
                error: Some(format!("bad request: {e}")),
                ..Response::default()
            },
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if response.state.as_deref() == Some("shutting_down") {
            core.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut out = serde_json::to_string(response).unwrap_or_else(|_| "{\"ok\":false}".into());
    out.push('\n');
    writer.write_all(out.as_bytes())
}

/// The wire ops, plus a catch-all bucket so arbitrary client-supplied op
/// strings cannot inflate metric-label cardinality.
const WIRE_OPS: [&str; 15] = [
    "ping",
    "create",
    "step",
    "status",
    "snapshot",
    "close",
    "stats",
    "metrics",
    "trace",
    "persist",
    "restore",
    "detach",
    "list_sessions",
    "shutdown",
    "unknown",
];

/// Per-op request counter + latency histogram, resolved once per process.
fn wire_obs(op: &str) -> &'static (Arc<l2q_obs::Counter>, Arc<l2q_obs::Histogram>) {
    type Handles = Vec<(Arc<l2q_obs::Counter>, Arc<l2q_obs::Histogram>)>;
    static M: OnceLock<Handles> = OnceLock::new();
    let by_op = M.get_or_init(|| {
        let reg = l2q_obs::global();
        WIRE_OPS
            .iter()
            .map(|&op| {
                (
                    reg.counter_with("wire_requests_total", &[("op", op)]),
                    reg.histogram_with("wire_request_seconds", &[("op", op)]),
                )
            })
            .collect()
    });
    let idx = WIRE_OPS
        .iter()
        .position(|&known| known == op)
        .unwrap_or(WIRE_OPS.len() - 1);
    &by_op[idx]
}

/// How a `step` request waits for its batch.
enum StepMode {
    /// Block on the scheduler reply channel and enforce the deadline
    /// here (the thread-per-connection path).
    Queued,
    /// Execute the batch directly on the calling thread — the reactor
    /// path, where this call *is* the queued task and the reactor owns
    /// the deadline timer.
    Direct,
}

fn dispatch(req: &Request, core: &ServerCore) -> Response {
    dispatch_ctx(req, core, StepMode::Queued, trace_ctx_for(req))
}

fn dispatch_with(req: &Request, core: &ServerCore, step_mode: StepMode) -> Response {
    dispatch_ctx(req, core, step_mode, trace_ctx_for(req))
}

/// Adopt an incoming trace context (router-forwarded request), or start
/// a fresh trace when the client asked for one; otherwise stay on the
/// untraced fast path where span timers only feed histograms. The
/// `trace` op is exempt: there `trace_id` is the lookup key, and
/// adopting it would append fetch spans to the trace being fetched.
fn trace_ctx_for(req: &Request) -> Option<l2q_obs::TraceContext> {
    if req.op == "trace" {
        return None;
    }
    match req.trace_id {
        Some(tid) => Some(l2q_obs::TraceContext::remote(tid, req.parent_span_id)),
        None if req.trace == Some(true) => Some(l2q_obs::TraceContext::new_root()),
        None => None,
    }
}

fn dispatch_ctx(
    req: &Request,
    core: &ServerCore,
    step_mode: StepMode,
    ctx: Option<l2q_obs::TraceContext>,
) -> Response {
    let (requests, latency) = wire_obs(&req.op);
    requests.inc();
    let _trace_guard = ctx.map(l2q_obs::trace::enter);
    let known_op = WIRE_OPS
        .iter()
        .copied()
        .find(|&known| known == req.op)
        .unwrap_or("unknown");
    let _timer = l2q_obs::SpanTimer::start_named_labeled(
        latency.clone(),
        "wire_request",
        &[("op", known_op)],
    );
    let trace_id = _timer.trace_context().map(|c| c.trace_id);
    let mut resp = match req.op.as_str() {
        "ping" => Response::ok(),
        "create" => handle_create(req, core).unwrap_or_else(|e| Response::err(&e)),
        "step" => match step_mode {
            StepMode::Queued => handle_step(req, core),
            StepMode::Direct => handle_step_direct(req, core),
        }
        .unwrap_or_else(|e| Response::err(&e)),
        "status" => with_session_status(req, core, false).unwrap_or_else(|e| Response::err(&e)),
        "snapshot" => with_session_status(req, core, true).unwrap_or_else(|e| Response::err(&e)),
        "close" => handle_close(req, core).unwrap_or_else(|e| Response::err(&e)),
        "stats" => handle_stats(core),
        "metrics" => handle_metrics(req),
        "trace" => handle_trace(req, core),
        "persist" => handle_persist(req, core).unwrap_or_else(|e| Response::err(&e)),
        "restore" => handle_restore(req, core).unwrap_or_else(|e| Response::err(&e)),
        "detach" => handle_detach(req, core).unwrap_or_else(|e| Response::err(&e)),
        "list_sessions" => handle_list_sessions(core),
        "shutdown" => Response {
            ok: true,
            state: Some("shutting_down".into()),
            ..Response::default()
        },
        other => Response {
            ok: false,
            error: Some(format!("unknown op '{other}'")),
            ..Response::default()
        },
    };
    if resp.trace_id.is_none() {
        resp.trace_id = trace_id;
    }
    resp
}

fn want_session(req: &Request) -> Result<u64, ServiceError> {
    req.session
        .ok_or_else(|| ServiceError::BadConfig("missing 'session'".into()))
}

fn status_response(core: &ServerCore, status: &SessionStatus) -> Response {
    Response::from_status(
        status,
        core.manager.bundle().corpus.aspect_name(status.aspect),
    )
}

fn handle_create(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let entity = req
        .entity
        .ok_or_else(|| ServiceError::BadConfig("missing 'entity'".into()))?;
    let aspect_name = req
        .aspect
        .as_deref()
        .ok_or_else(|| ServiceError::BadConfig("missing 'aspect'".into()))?;
    let aspect: AspectId = core
        .manager
        .bundle()
        .corpus
        .aspect_by_name(aspect_name)
        .ok_or_else(|| ServiceError::BadAspect(aspect_name.into()))?;
    let selector_name = req.selector.as_deref().unwrap_or("l2qbal");
    let selector = SelectorKind::parse(selector_name)
        .ok_or_else(|| ServiceError::BadSelector(selector_name.into()))?;
    let spec = SessionSpec {
        entity: EntityId(entity),
        aspect,
        selector,
        n_queries: req.n_queries.map(|n| n as usize),
        domain_size: req.domain_size.unwrap_or(0) as usize,
    };
    // A `create` carrying an explicit session id comes from a router that
    // allocates fleet-wide ids; plain clients omit it and get a local one.
    let status = match req.session {
        Some(id) => core.manager.create_with_id(id, &spec)?,
        None => core.manager.create(&spec)?,
    };
    Ok(status_response(core, &status))
}

fn handle_step(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    // The deadline clock starts at request entry, matching reactor mode
    // (which stamps the deadline at parse time): session lookup/restore
    // and scheduler submit count against the budget in both modes, so a
    // slow store restore can no longer stretch a threads-mode deadline
    // past what the client asked for.
    let entered = Instant::now();
    let id = want_session(req)?;
    let steps = (req.steps.unwrap_or(1) as usize).clamp(1, core.max_steps_per_request);
    let session = core.manager.get(id)?;
    // A request-level deadline overrides the server default; 0 from
    // either means wait for the batch however long it takes.
    let deadline_ms = req
        .deadline_ms
        .filter(|&d| d > 0)
        .unwrap_or(core.request_deadline_ms);
    let reply = core.scheduler.submit(session, steps)?;
    let report = if deadline_ms == 0 {
        reply.recv().map_err(|_| ServiceError::Canceled)??
    } else {
        let budget = Duration::from_millis(deadline_ms).saturating_sub(entered.elapsed());
        match reply.recv_timeout(budget) {
            Ok(result) => result?,
            Err(RecvTimeoutError::Timeout) => {
                // The batch keeps running in the background; only the
                // caller's wait is cut short. The error reports the
                // requested deadline, not the remaining budget.
                wire_boundary_obs().deadline_exceeded.inc();
                return Err(ServiceError::Deadline { deadline_ms });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(ServiceError::Canceled),
        }
    };
    let mut resp = status_response(core, &report.status);
    resp.advanced = Some(report.advanced as u64);
    resp.new_pages = Some(report.new_pages as u64);
    Ok(resp)
}

/// Reactor-mode `step`: this call already runs on a scheduler worker
/// (the dispatched task), so the batch executes right here instead of
/// round-tripping through the queue again. Deadline enforcement lives in
/// the reactor: when it fires, the caller gets the `Deadline` error
/// while this batch keeps running and its completion is tombstoned.
fn handle_step_direct(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let steps = (req.steps.unwrap_or(1) as usize).clamp(1, core.max_steps_per_request);
    let session = core.manager.get(id)?;
    let report = crate::scheduler::execute_batch_spanned(&session, steps, &core.metrics)?;
    let mut resp = status_response(core, &report.status);
    resp.advanced = Some(report.advanced as u64);
    resp.new_pages = Some(report.new_pages as u64);
    Ok(resp)
}

fn with_session_status(
    req: &Request,
    core: &ServerCore,
    include_snapshot: bool,
) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let session = core.manager.get(id)?;
    let mut guard = lock_recover(&session);
    let mut resp = status_response(core, &guard.status());
    if include_snapshot {
        let (pages, queries) = guard.snapshot();
        resp.pages = Some(pages);
        resp.queries = Some(queries);
    }
    Ok(resp)
}

fn handle_close(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let status = core.manager.close(id)?;
    Ok(status_response(core, &status))
}

fn handle_persist(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let status = core.manager.persist(id)?;
    Ok(status_response(core, &status))
}

fn handle_restore(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let status = core.manager.restore(id)?;
    Ok(status_response(core, &status))
}

fn handle_detach(req: &Request, core: &ServerCore) -> Result<Response, ServiceError> {
    let id = want_session(req)?;
    let status = core.manager.detach(id)?;
    Ok(status_response(core, &status))
}

fn handle_list_sessions(core: &ServerCore) -> Response {
    let entries = core.manager.list();
    Response {
        ok: true,
        sessions: Some(entries.iter().map(Into::into).collect()),
        ..Response::default()
    }
}

fn handle_metrics(req: &Request) -> Response {
    let reg = l2q_obs::global();
    match req.format.as_deref().unwrap_or("json") {
        "text" | "prometheus" => Response {
            ok: true,
            metrics_text: Some(reg.render_text()),
            ..Response::default()
        },
        "json" => match serde_json::from_str(&reg.render_json()) {
            Ok(v) => Response {
                ok: true,
                metrics: Some(v),
                ..Response::default()
            },
            Err(e) => Response {
                ok: false,
                error: Some(format!("metrics render failed: {e}")),
                ..Response::default()
            },
        },
        other => Response {
            ok: false,
            error: Some(format!("unknown metrics format '{other}' (json|text)")),
            ..Response::default()
        },
    }
}

/// `trace` op: query this process's in-memory span ring buffer.
///
/// Modes: `by_id` (default when `trace_id` is present) returns every
/// buffered span of one trace ordered by start time; `recent` returns the
/// newest spans; `slow` returns the slowest root spans. `limit` bounds the
/// `recent`/`slow` result count (default 32).
fn handle_trace(req: &Request, core: &ServerCore) -> Response {
    let source = core.shard_id.as_deref().unwrap_or("local");
    let buffer = l2q_obs::trace::buffer();
    let limit = req.limit.unwrap_or(32).clamp(1, 4096) as usize;
    let default_mode = if req.trace_id.is_some() {
        "by_id"
    } else {
        "recent"
    };
    let records = match req.mode.as_deref().unwrap_or(default_mode) {
        "by_id" => match req.trace_id {
            Some(tid) => buffer.by_trace(tid),
            None => {
                return Response {
                    ok: false,
                    error: Some("trace mode 'by_id' requires 'trace_id'".into()),
                    ..Response::default()
                }
            }
        },
        "recent" => buffer.recent(limit),
        "slow" => buffer.slow_roots(limit),
        other => {
            return Response {
                ok: false,
                error: Some(format!("unknown trace mode '{other}' (by_id|recent|slow)")),
                ..Response::default()
            }
        }
    };
    Response {
        ok: true,
        trace_id: req.trace_id,
        spans: Some(
            records
                .iter()
                .map(|r| crate::proto::SpanBody::from_record(r, source))
                .collect(),
        ),
        ..Response::default()
    }
}

fn handle_stats(core: &ServerCore) -> Response {
    let bundle = core.manager.bundle();
    let rc = bundle.retrieval_cache();
    let dc = bundle.domain_cache();
    let m = &core.metrics;
    Response {
        ok: true,
        stats: Some(StatsBody {
            active_sessions: core.manager.active() as u64,
            sessions_created: ServiceMetrics::load(&m.sessions_created),
            sessions_closed: ServiceMetrics::load(&m.sessions_closed),
            sessions_evicted: ServiceMetrics::load(&m.sessions_evicted),
            steps_executed: ServiceMetrics::load(&m.steps_executed),
            queries_fired: ServiceMetrics::load(&m.queries_fired),
            jobs_rejected: ServiceMetrics::load(&m.jobs_rejected),
            queue_depth: core.scheduler.queue_depth() as u64,
            workers: core.scheduler.workers() as u64,
            retrieval_cache_hits: rc.hits(),
            retrieval_cache_misses: rc.misses(),
            retrieval_cache_hit_rate: rc.hit_rate(),
            domain_cache_hits: dc.hits(),
            domain_cache_misses: dc.misses(),
            store_enabled: core.manager.store().is_some(),
            sessions_spilled: ServiceMetrics::load(&m.sessions_spilled),
            sessions_restored: ServiceMetrics::load(&m.sessions_restored),
            eviction_refusals: ServiceMetrics::load(&m.eviction_refusals),
            shard_id: core.shard_id.clone(),
        }),
        ..Response::default()
    }
}
