//! A small blocking client for the wire protocol, used by `l2q-client`
//! and the integration tests.
//!
//! The client is hardened symmetrically with the server: connect, read,
//! and write all carry timeouts (the seed client could park forever on a
//! dead server), responses are framed through the same bounded
//! [`LineReader`] as the server, each request carries a monotonically
//! increasing `request_id` that the response must echo, and
//! [`Client::step`]'s overload retry backs off exponentially (capped,
//! with deterministic jitter) instead of hammering the server every
//! `retry_after_ms`.

use crate::framing::{LineReader, ReadOutcome};
use crate::proto::{Request, Response};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side socket and retry policy.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read-timeout slice; the overall wait per response is
    /// `response_timeout`, polled in slices this long.
    pub read_slice: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Total time to wait for one response line before giving up
    /// (`Duration::ZERO` = wait indefinitely).
    pub response_timeout: Duration,
    /// Response-line cap. Larger than the server's request cap because
    /// snapshot/metrics responses legitimately run to megabytes.
    pub max_line_bytes: usize,
    /// Ceiling for the exponential overload backoff.
    pub max_backoff_ms: u64,
    /// Local backoff base used only when a refusal carries no
    /// `retry_after_ms` hint — a server-provided hint always takes
    /// precedence (see [`retry_delay`]).
    pub default_backoff_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            read_slice: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            response_timeout: Duration::from_secs(30),
            max_line_bytes: 16 * 1024 * 1024,
            max_backoff_ms: 1000,
            default_backoff_ms: 25,
        }
    }
}

/// One connection to a harvest server.
pub struct Client {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
    cfg: ClientConfig,
    next_request_id: u64,
    /// The address actually connected to, for reconnecting after the
    /// server hangs up (capacity refusals close the connection).
    remote: std::net::SocketAddr,
}

/// Client-side failure: transport, timeout, or a server `ok:false`.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / serialization trouble.
    Io(String),
    /// No response line arrived within the configured response timeout.
    Timeout {
        /// How long the client waited before giving up.
        waited_ms: u64,
    },
    /// The server answered but refused; retry hint included on overload.
    Refused {
        /// Server-provided error text.
        error: String,
        /// Backoff hint (overload only).
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Timeout { waited_ms } => {
                write!(f, "no response after {waited_ms}ms")
            }
            Self::Refused { error, .. } => write!(f, "server refused: {error}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Exponential backoff with a cap and deterministic jitter: the base
/// hint doubles per attempt (shift clamped so it cannot overflow), is
/// clamped to `cap_ms`, and gets up to `delay/4` of jitter mixed from
/// the attempt counter (splitmix64 finalizer) so a fleet of clients
/// rejected together does not retry in lockstep forever.
pub(crate) fn backoff_delay(hint_ms: u64, attempt: u32, cap_ms: u64) -> Duration {
    let hint = hint_ms.max(1);
    let cap = cap_ms.max(hint);
    let exp = hint
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
        .min(cap);
    let mut z = u64::from(attempt).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    let jitter = (z ^ (z >> 31)) % (exp / 4 + 1);
    Duration::from_millis(exp + jitter)
}

/// The delay before retrying a refused request. Precedence: a server
/// `retry_after_ms` hint seeds the schedule (the server knows its own
/// load); only a hintless refusal falls back to the client's local
/// `default_backoff_ms`. Either base escalates exponentially with the
/// attempt count, capped at `max_backoff_ms`.
pub(crate) fn retry_delay(hint_ms: Option<u64>, attempt: u32, cfg: &ClientConfig) -> Duration {
    backoff_delay(
        hint_ms.unwrap_or(cfg.default_backoff_ms),
        attempt,
        cfg.max_backoff_ms,
    )
}

impl Client {
    /// Connect to a server with the default [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit socket/retry policy.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, ClientError> {
        let mut last_err = None;
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut stream = None;
        for candidate in addrs {
            match TcpStream::connect_timeout(&candidate, cfg.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            ClientError::Io(
                last_err
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "no addresses to connect to".into()),
            )
        })?;
        let read_slice = if cfg.read_slice.is_zero() {
            Duration::from_millis(200)
        } else {
            cfg.read_slice
        };
        stream
            .set_read_timeout(Some(read_slice))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let write_timeout = if cfg.write_timeout.is_zero() {
            None
        } else {
            Some(cfg.write_timeout)
        };
        stream
            .set_write_timeout(write_timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let remote = stream
            .peer_addr()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Self {
            reader: LineReader::new(stream, cfg.max_line_bytes),
            writer,
            cfg,
            next_request_id: 1,
            remote,
        })
    }

    /// The server address this client is connected to.
    pub fn remote_addr(&self) -> std::net::SocketAddr {
        self.remote
    }

    /// Re-dial the remembered server address, replacing the (possibly
    /// dead) connection. The request-id counter keeps counting up so ids
    /// stay unique across the reconnect.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let next_request_id = self.next_request_id;
        *self = Self::connect_with(self.remote, self.cfg)?;
        self.next_request_id = next_request_id;
        Ok(())
    }

    /// Send one request and read its response line. Transport errors and
    /// `ok:false` responses both surface as `Err`; use [`request_raw`] to
    /// inspect refusals (e.g. overload retry hints) yourself.
    ///
    /// [`request_raw`]: Client::request_raw
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let resp = self.request_raw(req)?;
        if resp.ok {
            Ok(resp)
        } else {
            Err(ClientError::Refused {
                error: resp.error.unwrap_or_else(|| "unspecified".into()),
                retry_after_ms: resp.retry_after_ms,
            })
        }
    }

    /// Send one request and return the raw response, `ok` or not. A
    /// `request_id` is stamped on the outgoing request (unless the caller
    /// set one) and the wait for the matching response is bounded by the
    /// configured `response_timeout`.
    pub fn request_raw(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut req = req.clone();
        if req.request_id.is_none() {
            req.request_id = Some(self.next_request_id);
            self.next_request_id += 1;
        }
        let mut line = serde_json::to_string(&req).map_err(|e| ClientError::Io(e.to_string()))?;
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let started = Instant::now();
        loop {
            match self.reader.read_line() {
                Ok(ReadOutcome::Line(resp_line)) => {
                    if resp_line.trim().is_empty() {
                        continue;
                    }
                    return serde_json::from_str(&resp_line)
                        .map_err(|e| ClientError::Io(e.to_string()));
                }
                Ok(ReadOutcome::Eof) => {
                    return Err(ClientError::Io("server closed connection".into()))
                }
                Ok(ReadOutcome::Idle) => {
                    let waited = started.elapsed();
                    if !self.cfg.response_timeout.is_zero() && waited >= self.cfg.response_timeout {
                        return Err(ClientError::Timeout {
                            waited_ms: waited.as_millis() as u64,
                        });
                    }
                }
                Ok(ReadOutcome::Overflow { buffered }) => {
                    return Err(ClientError::Io(format!(
                        "response line exceeds {} bytes ({buffered} read)",
                        self.cfg.max_line_bytes
                    )))
                }
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }

    /// Open a session; returns its id.
    pub fn create(
        &mut self,
        entity: u32,
        aspect: &str,
        selector: &str,
        n_queries: Option<u32>,
        domain_size: u32,
    ) -> Result<u64, ClientError> {
        let mut req = Request::op("create");
        req.entity = Some(entity);
        req.aspect = Some(aspect.into());
        req.selector = Some(selector.into());
        req.n_queries = n_queries;
        req.domain_size = Some(domain_size);
        let resp = self.request(&req)?;
        resp.session
            .ok_or_else(|| ClientError::Io("create response missing session id".into()))
    }

    /// Run a step batch, retrying on overload with capped exponential
    /// backoff seeded by the server's hint (`max_retries` rejections
    /// before giving up).
    pub fn step(
        &mut self,
        session: u64,
        steps: u32,
        max_retries: usize,
    ) -> Result<Response, ClientError> {
        self.step_with_deadline(session, steps, max_retries, 0)
    }

    /// [`step`](Client::step) with a per-request deadline in
    /// milliseconds (0 = server default / unbounded). A deadline miss
    /// comes back as a `Refused` whose error mentions the deadline; the
    /// batch keeps running server-side.
    pub fn step_with_deadline(
        &mut self,
        session: u64,
        steps: u32,
        max_retries: usize,
        deadline_ms: u64,
    ) -> Result<Response, ClientError> {
        let mut req = Request::for_session("step", session);
        req.steps = Some(steps);
        if deadline_ms > 0 {
            req.deadline_ms = Some(deadline_ms);
        }
        self.request_with_overload_retries(&req, max_retries)
    }

    /// [`step`](Client::step) with tracing requested: the server starts
    /// a fresh trace at its edge and echoes the trace id in the
    /// response (`Response::trace_id`), ready for [`trace_by_id`].
    ///
    /// [`trace_by_id`]: Client::trace_by_id
    pub fn step_traced(
        &mut self,
        session: u64,
        steps: u32,
        max_retries: usize,
    ) -> Result<Response, ClientError> {
        let mut req = Request::for_session("step", session);
        req.steps = Some(steps);
        req.trace = Some(true);
        self.request_with_overload_retries(&req, max_retries)
    }

    /// The overload retry loop shared by the step variants: refusals
    /// that look like overload back off exponentially (server hint
    /// seeding the schedule) for up to `max_retries` rejections.
    fn request_with_overload_retries(
        &mut self,
        req: &Request,
        max_retries: usize,
    ) -> Result<Response, ClientError> {
        let mut rejections: u32 = 0;
        loop {
            match self.request(req) {
                Err(ClientError::Refused {
                    retry_after_ms,
                    error,
                }) if retry_after_ms.is_some() || error.contains("at capacity") => {
                    rejections += 1;
                    if rejections as usize > max_retries {
                        return Err(ClientError::Refused {
                            error,
                            retry_after_ms,
                        });
                    }
                    // The server's hint takes precedence over the local
                    // schedule; only a hintless refusal uses
                    // default_backoff_ms (see retry_delay).
                    std::thread::sleep(retry_delay(retry_after_ms, rejections, &self.cfg));
                    if error.contains("at capacity") {
                        // A capacity refusal closes the connection, so
                        // honoring the hint means re-dialing — retrying on
                        // the dead socket would turn the polite refusal
                        // into a transport error.
                        self.reconnect()?;
                    }
                }
                other => return other,
            }
        }
    }

    /// Fetch every buffered span of one trace (`trace` op, `by_id`
    /// mode). Against a router this stitches the router's spans with
    /// every shard's.
    pub fn trace_by_id(&mut self, trace_id: u64) -> Result<Response, ClientError> {
        let mut req = Request::op("trace");
        req.trace_id = Some(trace_id);
        req.mode = Some("by_id".into());
        self.request(&req)
    }

    /// Fetch the most recently recorded spans (`trace` op, `recent`).
    pub fn trace_recent(&mut self, limit: u64) -> Result<Response, ClientError> {
        let mut req = Request::op("trace");
        req.mode = Some("recent".into());
        req.limit = Some(limit);
        self.request(&req)
    }

    /// Fetch the slowest buffered root spans (`trace` op, `slow`).
    pub fn trace_slow(&mut self, limit: u64) -> Result<Response, ClientError> {
        let mut req = Request::op("trace");
        req.mode = Some("slow".into());
        req.limit = Some(limit);
        self.request(&req)
    }

    /// Fetch the fleet-merged metrics plane (router only): counters and
    /// gauges per shard as `shard`-labeled series, histograms merged
    /// bucket-wise for fleet percentiles.
    pub fn fleet_metrics(&mut self, format: &str) -> Result<Response, ClientError> {
        let mut req = Request::op("fleet_metrics");
        req.format = Some(format.into());
        self.request(&req)
    }

    /// Fetch a session's status.
    pub fn status(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("status", session))
    }

    /// Fetch a session's harvested pages and fired queries.
    pub fn snapshot(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("snapshot", session))
    }

    /// Close a session.
    pub fn close(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("close", session))
    }

    /// Fetch service-wide stats.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("stats"))
    }

    /// Fetch the server's metrics registry. `format` is `"json"` (the
    /// response's `metrics` field) or `"text"` (Prometheus exposition in
    /// `metrics_text`).
    pub fn metrics(&mut self, format: &str) -> Result<Response, ClientError> {
        let mut req = Request::op("metrics");
        req.format = Some(format.into());
        self.request(&req)
    }

    /// Force a durable snapshot of a session (server must run with
    /// `--data-dir`).
    pub fn persist(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("persist", session))
    }

    /// Restore a stored session into residency.
    pub fn restore(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("restore", session))
    }

    /// List every resident and durably stored session.
    pub fn list_sessions(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("list_sessions"))
    }

    /// Drain a session out of residency, keeping its durable state (the
    /// migration drain hook; server must run with `--data-dir`).
    pub fn detach(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("detach", session))
    }

    /// Fleet topology and per-shard health (router only).
    pub fn fleet_status(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("fleet_status"))
    }

    /// Mark a shard draining and migrate its resident sessions away
    /// (router only).
    pub fn drain_shard(&mut self, shard: &str) -> Result<Response, ClientError> {
        let mut req = Request::op("drain_shard");
        req.shard = Some(shard.into());
        self.request(&req)
    }

    /// Register a new shard on the ring (router only).
    pub fn join_shard(&mut self, shard: &str, addr: &str) -> Result<Response, ClientError> {
        let mut req = Request::op("join_shard");
        req.shard = Some(shard.into());
        req.shard_addr = Some(addr.into());
        self.request(&req)
    }

    /// Live-migrate a session: drain on its current shard, restore on
    /// `target` (or the ring's choice when `None`). Router only.
    pub fn migrate(&mut self, session: u64, target: Option<&str>) -> Result<Response, ClientError> {
        let mut req = Request::for_session("migrate", session);
        req.shard = target.map(Into::into);
        self.request(&req)
    }

    /// Rolling restart of the whole fleet: each shard in turn is
    /// drained, its supervised child restarted, and rejoined once it
    /// answers again; aborts below majority quorum. Blocks until the
    /// fleet has cycled (router only).
    pub fn rolling_restart(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("rolling_restart"))
    }

    /// One row per supervised shard child process (router only, needs
    /// `--supervise`).
    pub fn supervisor_status(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("supervisor_status"))
    }

    /// Ask the server to shut down.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("shutdown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let d1 = backoff_delay(25, 1, 1000);
        let d2 = backoff_delay(25, 2, 1000);
        let d5 = backoff_delay(25, 5, 1000);
        let d20 = backoff_delay(25, 20, 1000);
        // Base doubles: 25, 50, ..., within the jitter band [exp, 1.25*exp].
        assert!(d1.as_millis() >= 25 && d1.as_millis() <= 32, "{d1:?}");
        assert!(d2.as_millis() >= 50 && d2.as_millis() <= 63, "{d2:?}");
        assert!(d5.as_millis() >= 400 && d5.as_millis() <= 500, "{d5:?}");
        // Deep attempts are capped (plus at most 25% jitter).
        assert!(
            d20.as_millis() >= 1000 && d20.as_millis() <= 1250,
            "{d20:?}"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_attempt() {
        assert_eq!(backoff_delay(25, 3, 1000), backoff_delay(25, 3, 1000));
        // Jitter varies across attempts even at the cap.
        let at_cap: Vec<_> = (10..14).map(|a| backoff_delay(25, a, 1000)).collect();
        assert!(
            at_cap.windows(2).any(|w| w[0] != w[1]),
            "jitter never varied: {at_cap:?}"
        );
    }

    #[test]
    fn backoff_survives_zero_hint_and_huge_attempts() {
        assert!(backoff_delay(0, 1, 1000).as_millis() >= 1);
        let huge = backoff_delay(25, u32::MAX, 1000);
        assert!(huge.as_millis() <= 1250, "{huge:?}");
    }

    /// Satellite regression: a server `retry_after_ms` hint must take
    /// precedence over the client's local backoff schedule — in both
    /// directions (a small hint shortens the wait a large local default
    /// would impose, a large hint stretches it).
    #[test]
    fn server_hint_takes_precedence_over_local_schedule() {
        let cfg = ClientConfig {
            default_backoff_ms: 400,
            max_backoff_ms: 10_000,
            ..ClientConfig::default()
        };
        // Hinted: the 100ms hint wins over the 400ms local default.
        let hinted = retry_delay(Some(100), 1, &cfg);
        assert!(
            hinted.as_millis() >= 100 && hinted.as_millis() <= 125,
            "{hinted:?}"
        );
        // A hint larger than the local default also wins.
        let big_hint = retry_delay(Some(800), 1, &cfg);
        assert!(big_hint.as_millis() >= 800, "{big_hint:?}");
        // Hintless: the local default schedule applies.
        let local = retry_delay(None, 1, &cfg);
        assert!(
            local.as_millis() >= 400 && local.as_millis() <= 500,
            "{local:?}"
        );
    }

    /// Both bases escalate exponentially under repeated refusals and
    /// respect the cap.
    #[test]
    fn retry_delay_escalates_whichever_base_applies() {
        let cfg = ClientConfig {
            default_backoff_ms: 50,
            max_backoff_ms: 1000,
            ..ClientConfig::default()
        };
        assert!(retry_delay(Some(100), 2, &cfg) >= Duration::from_millis(200));
        assert!(retry_delay(None, 2, &cfg) >= Duration::from_millis(100));
        assert!(retry_delay(Some(100), 30, &cfg) <= Duration::from_millis(1250));
    }
}
