//! A small blocking client for the wire protocol, used by `l2q-client`
//! and the integration tests.

use crate::proto::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a harvest server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Client-side failure: transport or a server `ok:false`.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / serialization trouble.
    Io(String),
    /// The server answered but refused; retry hint included on overload.
    Refused {
        /// Server-provided error text.
        error: String,
        /// Backoff hint (overload only).
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Refused { error, .. } => write!(f, "server refused: {error}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request and read its response line. Transport errors and
    /// `ok:false` responses both surface as `Err`; use [`request_raw`] to
    /// inspect refusals (e.g. overload retry hints) yourself.
    ///
    /// [`request_raw`]: Client::request_raw
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let resp = self.request_raw(req)?;
        if resp.ok {
            Ok(resp)
        } else {
            Err(ClientError::Refused {
                error: resp.error.unwrap_or_else(|| "unspecified".into()),
                retry_after_ms: resp.retry_after_ms,
            })
        }
    }

    /// Send one request and return the raw response, `ok` or not.
    pub fn request_raw(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut line = serde_json::to_string(req).map_err(|e| ClientError::Io(e.to_string()))?;
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut resp_line = String::new();
        loop {
            resp_line.clear();
            match self.reader.read_line(&mut resp_line) {
                Ok(0) => return Err(ClientError::Io("server closed connection".into())),
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
        serde_json::from_str(&resp_line).map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Open a session; returns its id.
    pub fn create(
        &mut self,
        entity: u32,
        aspect: &str,
        selector: &str,
        n_queries: Option<u32>,
        domain_size: u32,
    ) -> Result<u64, ClientError> {
        let mut req = Request::op("create");
        req.entity = Some(entity);
        req.aspect = Some(aspect.into());
        req.selector = Some(selector.into());
        req.n_queries = n_queries;
        req.domain_size = Some(domain_size);
        let resp = self.request(&req)?;
        resp.session
            .ok_or_else(|| ClientError::Io("create response missing session id".into()))
    }

    /// Run a step batch, retrying on overload with the server's backoff
    /// hint (`max_retries` rejections before giving up).
    pub fn step(
        &mut self,
        session: u64,
        steps: u32,
        max_retries: usize,
    ) -> Result<Response, ClientError> {
        let mut req = Request::for_session("step", session);
        req.steps = Some(steps);
        let mut rejections = 0;
        loop {
            match self.request(&req) {
                Err(ClientError::Refused {
                    retry_after_ms: Some(ms),
                    error,
                }) => {
                    rejections += 1;
                    if rejections > max_retries {
                        return Err(ClientError::Refused {
                            error,
                            retry_after_ms: Some(ms),
                        });
                    }
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                other => return other,
            }
        }
    }

    /// Fetch a session's status.
    pub fn status(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("status", session))
    }

    /// Fetch a session's harvested pages and fired queries.
    pub fn snapshot(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("snapshot", session))
    }

    /// Close a session.
    pub fn close(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("close", session))
    }

    /// Fetch service-wide stats.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("stats"))
    }

    /// Fetch the server's metrics registry. `format` is `"json"` (the
    /// response's `metrics` field) or `"text"` (Prometheus exposition in
    /// `metrics_text`).
    pub fn metrics(&mut self, format: &str) -> Result<Response, ClientError> {
        let mut req = Request::op("metrics");
        req.format = Some(format.into());
        self.request(&req)
    }

    /// Force a durable snapshot of a session (server must run with
    /// `--data-dir`).
    pub fn persist(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("persist", session))
    }

    /// Restore a stored session into residency.
    pub fn restore(&mut self, session: u64) -> Result<Response, ClientError> {
        self.request(&Request::for_session("restore", session))
    }

    /// List every resident and durably stored session.
    pub fn list_sessions(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("list_sessions"))
    }

    /// Ask the server to shut down.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::op("shutdown"))
    }
}
