//! Session lifecycle: each session is one (entity, aspect, selector)
//! harvest, stepped incrementally against the shared bundle.
//!
//! The manager tracks sessions in a map of `Arc<Mutex<Session>>`; the
//! scheduler's workers lock a session only while executing its steps, so
//! different sessions progress in parallel while one session's steps stay
//! strictly ordered. Sessions die three ways: their query budget or
//! candidate pool runs out (`finished`), the client closes them, or the
//! idle sweeper evicts them.

use crate::bundle::ServingBundle;
use l2q_core::{
    DomainModel, HarvestState, Harvester, L2qConfig, L2qSelector, PortableCollective, Query,
    QuerySelector, SelectionInput, StepOutcome, StopReason,
};
use l2q_corpus::{AspectId, EntityId};
use l2q_retrieval::CachedSearch;
use l2q_store::{PortableSession, SessionStore, WalRecord, SESSION_FORMAT_VERSION};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which selector a session harvests with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectorKind {
    /// Precision-greedy (L2QP).
    L2qp,
    /// Recall-greedy (L2QR).
    L2qr,
    /// Balanced skyline (L2QBAL).
    L2qbal,
    /// Weighted interpolation L2QW(w).
    Weighted(f64),
    /// Diagnostic fault injector: panics on its first selection.
    PanicProbe,
    /// Diagnostic fault injector: sleeps the given milliseconds per
    /// selection, then yields no query.
    SleepProbe(u64),
}

impl SelectorKind {
    /// Parse a wire name: `l2qp`, `l2qr`, `l2qbal`, or `l2qw=<w>`.
    ///
    /// Two undocumented diagnostic names exist for fault-injection
    /// testing of the serving boundary: `panic` (panics on its first
    /// selection — proves worker panic isolation end-to-end) and
    /// `sleep=<ms>` (stalls each selection — proves request deadlines).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "l2qp" => Some(Self::L2qp),
            "l2qr" => Some(Self::L2qr),
            "l2qbal" => Some(Self::L2qbal),
            "panic" => Some(Self::PanicProbe),
            other => {
                if let Some(ms) = other.strip_prefix("sleep=") {
                    return ms.parse::<u64>().ok().map(Self::SleepProbe);
                }
                let w = other.strip_prefix("l2qw=")?.parse::<f64>().ok()?;
                (0.0..=1.0).contains(&w).then_some(Self::Weighted(w))
            }
        }
    }

    /// The canonical wire name ([`SelectorKind::parse`]'s inverse).
    pub fn wire_name(self) -> String {
        match self {
            Self::L2qp => "l2qp".into(),
            Self::L2qr => "l2qr".into(),
            Self::L2qbal => "l2qbal".into(),
            Self::Weighted(w) => format!("l2qw={w}"),
            Self::PanicProbe => "panic".into(),
            Self::SleepProbe(ms) => format!("sleep={ms}"),
        }
    }

    fn build(self) -> Box<dyn QuerySelector> {
        match self {
            Self::L2qp => Box::new(L2qSelector::l2qp()),
            Self::L2qr => Box::new(L2qSelector::l2qr()),
            Self::L2qbal => Box::new(L2qSelector::l2qbal()),
            Self::Weighted(w) => Box::new(L2qSelector::balanced_weighted(w)),
            Self::PanicProbe => Box::new(ProbeSelector::Panic),
            Self::SleepProbe(ms) => Box::new(ProbeSelector::Sleep(ms)),
        }
    }
}

/// Fault-injection selectors for serving-boundary tests (never pick a
/// real query). `Panic` exercises worker panic isolation; `Sleep` makes
/// a step batch reliably outlast a request deadline.
enum ProbeSelector {
    Panic,
    Sleep(u64),
}

impl QuerySelector for ProbeSelector {
    fn name(&self) -> String {
        match self {
            Self::Panic => "PANIC-PROBE".into(),
            Self::Sleep(ms) => format!("SLEEP-PROBE({ms}ms)"),
        }
    }

    fn select(&mut self, _input: &SelectionInput<'_>) -> Option<Query> {
        match self {
            Self::Panic => panic!("panic probe selector fired"),
            Self::Sleep(ms) => {
                std::thread::sleep(Duration::from_millis(*ms));
                None
            }
        }
    }
}

/// Parameters of a `create` request.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Selector family.
    pub selector: SelectorKind,
    /// Per-session query budget (None = bundle default `n_queries`).
    pub n_queries: Option<usize>,
    /// Peer entities for the domain phase: the first `domain_size` corpus
    /// entities excluding the target (0 disables domain awareness).
    pub domain_size: usize,
}

/// Service-level failure, carried back over the wire as `error`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Unknown entity index.
    BadEntity(u32),
    /// Unknown aspect name.
    BadAspect(String),
    /// Unknown selector name.
    BadSelector(String),
    /// Session id not found (never existed, closed, or evicted).
    NoSuchSession(u64),
    /// Invalid configuration (e.g. zero query budget).
    BadConfig(String),
    /// The step queue is full; retry after the hinted backoff.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The scheduler dropped the job (server shutting down).
    Canceled,
    /// The step batch missed its deadline (it keeps running in the
    /// background; poll `status` to see it land).
    Deadline {
        /// The deadline that was missed, in milliseconds.
        deadline_ms: u64,
    },
    /// The session is terminally failed: a step batch panicked and the
    /// session's state can no longer be trusted.
    SessionFailed {
        /// The captured panic message.
        message: String,
    },
    /// The durable store failed or holds unusable state for the session.
    Store(String),
    /// The op needs a durable store but the server runs without one
    /// (no `--data-dir`).
    NoStore,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadEntity(e) => write!(f, "unknown entity index {e}"),
            Self::BadAspect(a) => write!(f, "unknown aspect '{a}'"),
            Self::BadSelector(s) => write!(f, "unknown selector '{s}' (l2qp|l2qr|l2qbal|l2qw=<w>)"),
            Self::NoSuchSession(id) => write!(f, "no such session {id}"),
            Self::BadConfig(msg) => write!(f, "bad config: {msg}"),
            Self::Overloaded { retry_after_ms } => {
                write!(f, "step queue full; retry after {retry_after_ms}ms")
            }
            Self::Canceled => write!(f, "job canceled (server shutting down)"),
            Self::Deadline { deadline_ms } => write!(
                f,
                "deadline exceeded after {deadline_ms}ms (batch continues in the background)"
            ),
            Self::SessionFailed { message } => write!(f, "session failed: {message}"),
            Self::Store(msg) => write!(f, "store error: {msg}"),
            Self::NoStore => write!(f, "server has no durable store (start with --data-dir)"),
        }
    }
}

/// Point-in-time public view of a session.
#[derive(Clone, Debug)]
pub struct SessionStatus {
    /// Session id.
    pub id: u64,
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Selector iterations completed.
    pub steps_taken: usize,
    /// Pages gathered so far (seed included).
    pub gathered: usize,
    /// Why the session stopped, once it has.
    pub finished: Option<StopReason>,
    /// The panic message that terminally failed the session, if a step
    /// batch panicked (`state` renders as `"failed"`).
    pub failed: Option<String>,
}

/// Result of one scheduled step batch.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Steps that advanced (fired a query).
    pub advanced: usize,
    /// Previously unseen pages those queries added.
    pub new_pages: usize,
    /// Status after the batch.
    pub status: SessionStatus,
}

/// The domain model a session of `domain_size` uses: the first
/// `domain_size` corpus entities excluding the target. Deterministic in
/// (entity, domain_size), so create and restore agree.
fn domain_for(
    bundle: &ServingBundle,
    entity: EntityId,
    domain_size: usize,
) -> Option<Arc<DomainModel>> {
    if domain_size == 0 {
        return None;
    }
    let peers: Vec<EntityId> = bundle
        .corpus
        .entity_ids()
        .filter(|&e| e != entity)
        .take(domain_size)
        .collect();
    Some(bundle.domain_model(&peers))
}

/// One live harvest session.
pub struct Session {
    id: u64,
    bundle: Arc<ServingBundle>,
    state: HarvestState,
    selector: Box<dyn QuerySelector>,
    kind: SelectorKind,
    domain: Option<Arc<DomainModel>>,
    domain_size: usize,
    cfg: L2qConfig,
    store: Option<Arc<SessionStore>>,
    /// Step records already appended to the WAL (== the durable step
    /// count; new records start at this ordinal).
    logged_steps: usize,
    /// Whether the finish record has been appended.
    finish_logged: bool,
    /// Whether the WAL (or a snapshot) already holds a base for this
    /// session. False only for brand-new sessions before their first
    /// commit: the first batch then carries a genesis record.
    genesis_logged: bool,
    /// Set when a step batch panicked: the session is terminal and its
    /// state is suspect — steps refuse, spills refuse, eviction drops.
    failed: Option<String>,
    /// Set when the durable store rejected a write because another shard
    /// fenced the session away (failover/migration): this resident copy
    /// is deposed — steps surface the fencing error instead of silently
    /// advancing state the new owner will never see, spills refuse, and
    /// eviction drops the copy without writing.
    fenced: Option<String>,
    last_touched: Instant,
}

impl Session {
    fn new(
        id: u64,
        bundle: Arc<ServingBundle>,
        spec: &SessionSpec,
        store: Option<Arc<SessionStore>>,
    ) -> Result<Self, ServiceError> {
        let mut cfg = bundle.cfg;
        if let Some(n) = spec.n_queries {
            if n == 0 {
                return Err(ServiceError::BadConfig("n_queries must be positive".into()));
            }
            cfg = cfg.with_n_queries(n);
        }
        let domain = domain_for(&bundle, spec.entity, spec.domain_size);
        let mut selector = spec.selector.build();
        selector.reset();
        let harvester = Harvester {
            corpus: &bundle.corpus,
            engine: &bundle.engine,
            oracle: &bundle.oracle,
            domain: domain.as_deref(),
            cfg,
        };
        let backend = CachedSearch::new(&bundle.engine, bundle.retrieval_cache());
        let state = HarvestState::begin_with(&harvester, spec.entity, spec.aspect, &backend);
        Ok(Self {
            id,
            bundle,
            state,
            selector,
            kind: spec.selector,
            domain,
            domain_size: spec.domain_size,
            cfg,
            store,
            logged_steps: 0,
            finish_logged: false,
            genesis_logged: false,
            failed: None,
            fenced: None,
            last_touched: Instant::now(),
        })
    }

    /// Export the full session (envelope + harvest state) in portable
    /// form, with the selector's collective state captured bit-exactly.
    pub fn export(&self) -> PortableSession {
        PortableSession {
            version: SESSION_FORMAT_VERSION,
            id: self.id,
            selector: self.kind.wire_name(),
            domain_size: self.domain_size as u64,
            n_queries: self.cfg.n_queries as u64,
            state: self
                .state
                .export(&self.bundle.corpus, self.selector.collective_state()),
        }
    }

    /// Rebuild a live session from its portable form. The selector is
    /// reconstructed from its wire name and handed back its persisted
    /// collective state, and every derived cache rebuilds cold on the next
    /// step — so the restored session continues bit-identically (see
    /// `l2q_core::checkpoint`).
    pub fn restore(
        bundle: Arc<ServingBundle>,
        p: &PortableSession,
        store: Option<Arc<SessionStore>>,
    ) -> Result<Self, ServiceError> {
        if p.version != SESSION_FORMAT_VERSION {
            return Err(ServiceError::Store(format!(
                "unsupported session format version {}",
                p.version
            )));
        }
        let kind = SelectorKind::parse(&p.selector)
            .ok_or_else(|| ServiceError::Store(format!("unknown selector '{}'", p.selector)))?;
        if p.n_queries == 0 {
            return Err(ServiceError::Store(
                "zero n_queries in stored session".into(),
            ));
        }
        let cfg = bundle.cfg.with_n_queries(p.n_queries as usize);
        let (state, collective) = HarvestState::import(&p.state, &bundle.corpus)
            .map_err(|e| ServiceError::Store(e.to_string()))?;
        let mut selector = kind.build();
        selector.reset();
        if let Some(c) = collective {
            // Must come after reset: the restored recursion state IS the
            // context Φ the selector continues from.
            selector.restore_collective(c);
        }
        let domain = domain_for(&bundle, state.entity(), p.domain_size as usize);
        let logged_steps = state.steps_taken();
        let finish_logged = state.stop_reason().is_some();
        Ok(Self {
            id: p.id,
            bundle,
            state,
            selector,
            kind,
            domain,
            domain_size: p.domain_size as usize,
            cfg,
            store,
            logged_steps,
            finish_logged,
            // Restored sessions were loaded from a snapshot or a WAL
            // genesis — a durable base already exists.
            genesis_logged: true,
            failed: None,
            fenced: None,
            last_touched: Instant::now(),
        })
    }

    fn query_words(&self, q: &Query) -> Vec<String> {
        q.words()
            .iter()
            .map(|&w| self.bundle.corpus.symbols.resolve(w).to_owned())
            .collect()
    }

    /// The WAL record for the step just taken (the last iteration).
    fn step_record(&self) -> WalRecord {
        let it = self.state.iterations().last().expect("just advanced");
        WalRecord {
            session: self.id,
            step_index: self.state.steps_taken() as u64 - 1,
            query: self.query_words(&it.query),
            new_pages: it.new_pages.iter().map(|p| p.0).collect(),
            selection_time_nanos: self.state.selection_time().as_nanos() as u64,
            collective: self
                .selector
                .collective_state()
                .map(|s| PortableCollective::from_state(&s)),
            finished: None,
            genesis: None,
        }
    }

    /// Append this batch's records; take a compacting snapshot when due.
    /// Store failures never fail the harvest — they are counted
    /// (`service_store_io_errors_total`) and the session stays live.
    fn commit_wal(&mut self, mut records: Vec<WalRecord>) {
        let Some(store) = self.store.clone() else {
            return;
        };
        if records.is_empty() {
            return;
        }
        if !self.genesis_logged {
            // First durable write of this session: lead the batch with a
            // genesis record carrying the full current state, so recovery
            // has a base without a separate (two-fsync) snapshot write.
            records.insert(
                0,
                WalRecord {
                    session: self.id,
                    step_index: 0,
                    query: Vec::new(),
                    new_pages: Vec::new(),
                    selection_time_nanos: 0,
                    collective: None,
                    finished: None,
                    genesis: Some(
                        serde_json::to_string(&self.export()).expect("serializable session"),
                    ),
                },
            );
        }
        let steps = records
            .iter()
            .filter(|r| r.finished.is_none() && r.genesis.is_none())
            .count();
        let finished = records.iter().any(|r| r.finished.is_some());
        match store.append_steps(self.id, &records) {
            Ok(()) => {
                self.logged_steps += steps;
                self.finish_logged |= finished;
                self.genesis_logged = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                // Another shard fenced this session away (failover or
                // migration): this copy is deposed. Record why so the
                // step that triggered the write surfaces a clean error
                // instead of an `ok:true` the durable owner never sees.
                if self.fenced.is_none() {
                    self.fenced = Some(e.to_string());
                    session_obs().fenced.inc();
                }
                return;
            }
            Err(_) => {
                session_obs().store_io_errors.inc();
                return;
            }
        }
        // Snapshots follow the cadence only — a finish record is already
        // WAL-durable, so sealing a session needs no extra snapshot.
        if store.needs_snapshot(self.id) && store.snapshot(self.id, &self.export()).is_err() {
            session_obs().store_io_errors.inc();
        }
    }

    /// Mark the session terminally failed (first panic message wins).
    /// Failed sessions refuse further steps and are never spilled — the
    /// panic may have left the harvest state mid-mutation.
    pub fn mark_failed(&mut self, message: &str) {
        if self.failed.is_none() {
            self.failed = Some(message.to_owned());
            session_obs().failed.inc();
        }
    }

    /// The panic message that failed this session, if any.
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// The store's fencing rejection, if another shard has taken write
    /// ownership of this session away from this process.
    pub fn fenced(&self) -> Option<&str> {
        self.fenced.as_deref()
    }

    /// Force a compacting snapshot of the current state (idle-eviction
    /// spill and the `persist` op).
    pub fn spill(&mut self) -> Result<(), ServiceError> {
        if let Some(message) = &self.failed {
            return Err(ServiceError::SessionFailed {
                message: message.clone(),
            });
        }
        if let Some(message) = &self.fenced {
            // The durable state belongs to another shard now; writing a
            // snapshot over it would be rejected anyway.
            return Err(ServiceError::Store(message.clone()));
        }
        let Some(store) = self.store.clone() else {
            return Err(ServiceError::NoStore);
        };
        store
            .snapshot(self.id, &self.export())
            .map_err(|e| ServiceError::Store(e.to_string()))?;
        self.genesis_logged = true;
        Ok(())
    }

    /// Execute up to `max_steps` selector iterations (stops early when the
    /// session finishes). Queries are fired through the bundle's shared
    /// retrieval cache.
    pub fn run_steps(&mut self, max_steps: usize) -> StepReport {
        self.last_touched = Instant::now();
        if self.failed.is_some() {
            // Terminal: never touch the (suspect) harvest state again.
            return StepReport {
                advanced: 0,
                new_pages: 0,
                status: self.status(),
            };
        }
        let bundle = self.bundle.clone();
        let harvester = Harvester {
            corpus: &bundle.corpus,
            engine: &bundle.engine,
            oracle: &bundle.oracle,
            domain: self.domain.as_deref(),
            cfg: self.cfg,
        };
        let backend = CachedSearch::new(&bundle.engine, bundle.retrieval_cache());
        let mut advanced = 0usize;
        let mut new_pages = 0usize;
        let mut wal: Vec<WalRecord> = Vec::new();
        for _ in 0..max_steps {
            match self
                .state
                .step_with(&harvester, self.selector.as_mut(), &backend)
            {
                StepOutcome::Advanced { new_pages: n } => {
                    advanced += 1;
                    new_pages += n;
                    if self.store.is_some() {
                        // Capture per step: the record's collective state
                        // must be the post-THIS-step value so a torn tail
                        // restores bit-identically mid-batch.
                        wal.push(self.step_record());
                    }
                }
                StepOutcome::Finished(_) => break,
            }
        }
        if self.store.is_some() && !self.finish_logged {
            if let Some(reason) = self.state.stop_reason() {
                wal.push(WalRecord {
                    session: self.id,
                    step_index: self.state.steps_taken() as u64,
                    query: Vec::new(),
                    new_pages: Vec::new(),
                    selection_time_nanos: self.state.selection_time().as_nanos() as u64,
                    collective: self
                        .selector
                        .collective_state()
                        .map(|s| PortableCollective::from_state(&s)),
                    finished: Some(reason.as_str().to_owned()),
                    genesis: None,
                });
            }
        }
        self.commit_wal(wal);
        self.last_touched = Instant::now();
        StepReport {
            advanced,
            new_pages,
            status: self.status(),
        }
    }

    /// Current status (refreshes the idle clock).
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            id: self.id,
            entity: self.state.entity(),
            aspect: self.state.aspect(),
            steps_taken: self.state.steps_taken(),
            gathered: self.state.gathered().len(),
            finished: self.state.stop_reason(),
            failed: self.failed.clone(),
        }
    }

    /// Harvested pages (first-retrieval order) and fired queries rendered
    /// as text.
    pub fn snapshot(&mut self) -> (Vec<u32>, Vec<String>) {
        self.last_touched = Instant::now();
        let pages = self.state.gathered().iter().map(|p| p.0).collect();
        let queries = self
            .state
            .iterations()
            .iter()
            .map(|it| it.query.render(&self.bundle.corpus.symbols))
            .collect();
        (pages, queries)
    }

    /// Time since the last client interaction.
    pub fn idle_for(&self) -> Duration {
        self.last_touched.elapsed()
    }
}

/// Lock a shared session, recovering a poisoned mutex instead of
/// propagating the panic: the poison is cleared and the session is
/// marked terminally `Failed`, so one panicking batch can never brick
/// every later op that touches the session (the seed behavior of
/// `lock().expect("session poisoned")`).
pub fn lock_recover(slot: &Mutex<Session>) -> std::sync::MutexGuard<'_, Session> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            slot.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.mark_failed("session mutex poisoned by a worker panic");
            guard
        }
    }
}

/// [`lock_recover`]'s non-blocking twin: `None` only when the lock is
/// genuinely held (a poisoned-but-free mutex is recovered, not skipped).
pub fn try_lock_recover(slot: &Mutex<Session>) -> Option<std::sync::MutexGuard<'_, Session>> {
    match slot.try_lock() {
        Ok(guard) => Some(guard),
        Err(std::sync::TryLockError::Poisoned(poisoned)) => {
            slot.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.mark_failed("session mutex poisoned by a worker panic");
            Some(guard)
        }
        Err(std::sync::TryLockError::WouldBlock) => None,
    }
}

/// Service-wide counters surfaced by the `stats` endpoint.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Sessions ever created.
    pub sessions_created: AtomicU64,
    /// Sessions closed by clients.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the idle sweeper.
    pub sessions_evicted: AtomicU64,
    /// Selector iterations executed by workers.
    pub steps_executed: AtomicU64,
    /// Queries fired (seeds + advanced steps).
    pub queries_fired: AtomicU64,
    /// Step jobs rejected for backpressure.
    pub jobs_rejected: AtomicU64,
    /// Sessions spilled to the durable store by the idle sweeper.
    pub sessions_spilled: AtomicU64,
    /// Sessions restored from the durable store on touch.
    pub sessions_restored: AtomicU64,
    /// Idle evictions refused to avoid data loss (no store, session had
    /// stepped progress).
    pub eviction_refusals: AtomicU64,
}

impl ServiceMetrics {
    /// Relaxed load of one counter.
    pub fn load(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Relaxed add.
    pub fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

/// Process-global session-lifecycle metrics mirroring the per-manager
/// [`ServiceMetrics`] (which stays the exact source for the `stats` op).
struct SessionObs {
    active: Arc<l2q_obs::Gauge>,
    created: Arc<l2q_obs::Counter>,
    closed: Arc<l2q_obs::Counter>,
    evicted: Arc<l2q_obs::Counter>,
    spilled: Arc<l2q_obs::Counter>,
    restored: Arc<l2q_obs::Counter>,
    eviction_refusals: Arc<l2q_obs::Counter>,
    store_io_errors: Arc<l2q_obs::Counter>,
    failed: Arc<l2q_obs::Counter>,
    detached: Arc<l2q_obs::Counter>,
    fenced: Arc<l2q_obs::Counter>,
}

fn session_obs() -> &'static SessionObs {
    static M: std::sync::OnceLock<SessionObs> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        SessionObs {
            active: reg.gauge("service_sessions_active"),
            created: reg.counter("service_sessions_created_total"),
            closed: reg.counter("service_sessions_closed_total"),
            evicted: reg.counter("service_sessions_evicted_total"),
            spilled: reg.counter("service_sessions_spilled_total"),
            restored: reg.counter("service_sessions_restored_total"),
            eviction_refusals: reg.counter("service_eviction_refusals_total"),
            store_io_errors: reg.counter("service_store_io_errors_total"),
            failed: reg.counter("service_sessions_failed_total"),
            detached: reg.counter("service_sessions_detached_total"),
            fenced: reg.counter("service_sessions_fenced_total"),
        }
    })
}

/// One row of a `list_sessions` response: a session that is resident,
/// durably stored, or both.
#[derive(Clone, Debug)]
pub struct SessionEntry {
    /// Session id.
    pub id: u64,
    /// Whether the session is currently resident in memory.
    pub resident: bool,
    /// Steps taken (resident sessions only; stored-only sessions are not
    /// loaded just to list them).
    pub steps_taken: Option<u64>,
    /// Pages gathered (resident sessions only).
    pub gathered: Option<u64>,
    /// `"running"` / `"finished:<reason>"` (resident sessions only).
    pub state: Option<String>,
    /// Coarse restorability class: `"resident"` (live in memory),
    /// `"stored"` (durable only — restorable on touch), or `"failed"`
    /// (terminally failed; not restorable).
    pub health: String,
}

/// Owner of all live sessions.
pub struct SessionManager {
    bundle: Arc<ServingBundle>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    idle_timeout: Duration,
    metrics: Arc<ServiceMetrics>,
    store: Option<Arc<SessionStore>>,
}

impl SessionManager {
    /// Create a manager over a bundle (no durable store).
    pub fn new(
        bundle: Arc<ServingBundle>,
        idle_timeout: Duration,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        Self::with_store(bundle, idle_timeout, metrics, None)
    }

    /// Create a manager backed by a durable store. Ids resume above the
    /// highest stored session so recovered and new sessions never collide.
    pub fn with_store(
        bundle: Arc<ServingBundle>,
        idle_timeout: Duration,
        metrics: Arc<ServiceMetrics>,
        store: Option<Arc<SessionStore>>,
    ) -> Self {
        let first_id = store
            .as_ref()
            .and_then(|s| s.max_session_id())
            .map_or(1, |max| max + 1);
        Self {
            bundle,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(first_id),
            idle_timeout,
            metrics,
            store,
        }
    }

    /// The bundle sessions run against.
    pub fn bundle(&self) -> &Arc<ServingBundle> {
        &self.bundle
    }

    /// The durable store, when the server runs with one.
    pub fn store(&self) -> Option<&Arc<SessionStore>> {
        self.store.as_ref()
    }

    /// Validate a spec and open a session (fires the seed query). With a
    /// store, nothing is written yet: the session's first committed batch
    /// leads with a genesis record that carries the base state, so
    /// creation costs no fsync and recovery still has a replay base.
    pub fn create(&self, spec: &SessionSpec) -> Result<SessionStatus, ServiceError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.create_session(id, spec)
    }

    /// Open a session under a caller-chosen id (the router allocates fleet
    /// ids so shards' local counters never collide). Rejects ids that are
    /// already resident or durably stored, and keeps the local allocator
    /// ahead of the explicit id.
    pub fn create_with_id(
        &self,
        id: u64,
        spec: &SessionSpec,
    ) -> Result<SessionStatus, ServiceError> {
        if id == 0 {
            return Err(ServiceError::BadConfig(
                "session id must be positive".into(),
            ));
        }
        let taken = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .contains_key(&id)
            || self.store.as_ref().is_some_and(|s| s.contains(id));
        if taken {
            return Err(ServiceError::BadConfig(format!(
                "session id {id} already exists"
            )));
        }
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        self.create_session(id, spec)
    }

    fn create_session(&self, id: u64, spec: &SessionSpec) -> Result<SessionStatus, ServiceError> {
        if spec.entity.index() >= self.bundle.corpus.entities.len() {
            return Err(ServiceError::BadEntity(spec.entity.0));
        }
        let session = Session::new(id, self.bundle.clone(), spec, self.store.clone())?;
        let status = session.status();
        {
            let mut map = self.sessions.lock().expect("session map poisoned");
            if map.contains_key(&id) {
                // Two explicit-id creates raced past the pre-check; the
                // first insert wins.
                return Err(ServiceError::BadConfig(format!(
                    "session id {id} already exists"
                )));
            }
            map.insert(id, Arc::new(Mutex::new(session)));
        }
        ServiceMetrics::add(&self.metrics.sessions_created, 1);
        ServiceMetrics::add(&self.metrics.queries_fired, 1); // the seed
        let obs = session_obs();
        obs.created.inc();
        obs.active.inc();
        Ok(status)
    }

    /// Shared handle to a live session. A session that was spilled to the
    /// store (idle eviction or a server restart) is transparently restored
    /// on touch.
    pub fn get(&self, id: u64) -> Result<Arc<Mutex<Session>>, ServiceError> {
        if let Some(slot) = self.sessions.lock().expect("session map poisoned").get(&id) {
            return Ok(slot.clone());
        }
        let Some(store) = &self.store else {
            return Err(ServiceError::NoSuchSession(id));
        };
        if !store.contains(id) {
            return Err(ServiceError::NoSuchSession(id));
        }
        // Fence before loading: bumping the generation token first means
        // any other shard still writing this session over a shared data
        // dir is cut off, and everything it committed before the bump is
        // in the WAL scan below — so a fleet failover/migration restores
        // the exact durable state with no second writer behind its back.
        store
            .fence(id)
            .map_err(|e| ServiceError::Store(e.to_string()))?;
        // Rebuild outside the map lock: store.load + HarvestState::import
        // are slow (disk reads, full cache rebuild), and holding the global
        // lock across them would stall every create/step/status dispatch.
        // Concurrent touches may both rebuild; the insert below picks one
        // winner and the loser's copy is dropped.
        let recovered = match store
            .load(id)
            .map_err(|e| ServiceError::Store(e.to_string()))?
        {
            Some(r) => r,
            None => {
                // A concurrent close() deleted the session between the
                // contains check and the load; the fence recreated an
                // empty directory — clear it rather than leave a phantom.
                store.remove(id).ok();
                return Err(ServiceError::NoSuchSession(id));
            }
        };
        let session =
            Session::restore(self.bundle.clone(), &recovered.session, self.store.clone())?;
        let mut map = self.sessions.lock().expect("session map poisoned");
        if let Some(slot) = map.get(&id) {
            return Ok(slot.clone());
        }
        if !store.contains(id) {
            // close() deleted the durable state while we were rebuilding;
            // inserting now would resurrect a closed session.
            return Err(ServiceError::NoSuchSession(id));
        }
        let slot = Arc::new(Mutex::new(session));
        map.insert(id, slot.clone());
        ServiceMetrics::add(&self.metrics.sessions_restored, 1);
        let obs = session_obs();
        obs.restored.inc();
        obs.active.inc();
        Ok(slot)
    }

    /// Force a durable snapshot of a session (`persist` op). Restores the
    /// session first if it is stored but not resident.
    pub fn persist(&self, id: u64) -> Result<SessionStatus, ServiceError> {
        if self.store.is_none() {
            return Err(ServiceError::NoStore);
        }
        let slot = self.get(id)?;
        let mut guard = lock_recover(&slot);
        guard.spill()?;
        ServiceMetrics::add(&self.metrics.sessions_spilled, 1);
        session_obs().spilled.inc();
        Ok(guard.status())
    }

    /// Explicitly restore a stored session into residency (`restore` op);
    /// a no-op returning current status when already resident.
    pub fn restore(&self, id: u64) -> Result<SessionStatus, ServiceError> {
        if self.store.is_none() {
            return Err(ServiceError::NoStore);
        }
        let slot = self.get(id)?;
        let status = lock_recover(&slot).status();
        Ok(status)
    }

    /// Drain a session out of residency while keeping its durable state
    /// (the `detach` wire op — the router's migration drain hook).
    /// Waiting on the session's own lock drains any in-flight step batch;
    /// a final spill then captures the post-batch state, and the resident
    /// instance is dropped. Unlike `close`, the session stays restorable —
    /// the next `restore` (on any shard sharing the data dir) fences the
    /// store generation and continues bit-identically.
    pub fn detach(&self, id: u64) -> Result<SessionStatus, ServiceError> {
        let Some(store) = self.store.clone() else {
            return Err(ServiceError::NoStore);
        };
        let resident = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .get(&id)
            .cloned();
        let Some(slot) = resident else {
            // Already non-resident: idempotently report the durable status.
            let recovered = store
                .load(id)
                .map_err(|e| ServiceError::Store(e.to_string()))?
                .ok_or(ServiceError::NoSuchSession(id))?;
            return self.status_of_portable(&recovered.session);
        };
        let mut guard = lock_recover(&slot);
        guard.spill()?; // refuses failed sessions — their state is suspect
        let status = guard.status();
        drop(guard);
        if self
            .sessions
            .lock()
            .expect("session map poisoned")
            .remove(&id)
            .is_some()
        {
            ServiceMetrics::add(&self.metrics.sessions_spilled, 1);
            let obs = session_obs();
            obs.spilled.inc();
            obs.detached.inc();
            obs.active.dec();
        }
        Ok(status)
    }

    /// Every known session: resident ones with live status, stored-only
    /// ones by id.
    pub fn list(&self) -> Vec<SessionEntry> {
        let map = self.sessions.lock().expect("session map poisoned");
        let mut entries: Vec<SessionEntry> = Vec::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (&id, slot) in map.iter() {
            seen.insert(id);
            // A session locked by a worker is mid-step; list it without
            // blocking on its status.
            let status = try_lock_recover(slot).map(|g| g.status());
            let health = match &status {
                Some(s) if s.failed.is_some() => "failed",
                _ => "resident",
            };
            entries.push(SessionEntry {
                id,
                resident: true,
                steps_taken: status.as_ref().map(|s| s.steps_taken as u64),
                gathered: status.as_ref().map(|s| s.gathered as u64),
                state: status.as_ref().map(crate::proto::session_state_string),
                health: health.into(),
            });
        }
        if let Some(store) = &self.store {
            for id in store.list_sessions() {
                if seen.insert(id) {
                    entries.push(SessionEntry {
                        id,
                        resident: false,
                        steps_taken: None,
                        gathered: None,
                        state: None,
                        health: "stored".into(),
                    });
                }
            }
        }
        entries.sort_by_key(|e| e.id);
        entries
    }

    /// Close a session, returning its final status. Removes both the
    /// resident session and any durable state (close means "done" — use
    /// `persist` + idle eviction to keep a session resumable).
    pub fn close(&self, id: u64) -> Result<SessionStatus, ServiceError> {
        let resident = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .remove(&id);
        let status = match resident {
            Some(slot) => {
                let status = lock_recover(&slot).status();
                session_obs().active.dec();
                Some(status)
            }
            None => match &self.store {
                Some(store) if store.contains(id) => {
                    // Stored but not resident: report its durable status
                    // straight from the portable form (no full restore).
                    let recovered = store
                        .load(id)
                        .map_err(|e| ServiceError::Store(e.to_string()))?;
                    recovered
                        .map(|r| self.status_of_portable(&r.session))
                        .transpose()?
                }
                _ => None,
            },
        };
        let status = status.ok_or(ServiceError::NoSuchSession(id))?;
        if let Some(store) = &self.store {
            store
                .remove(id)
                .map_err(|e| ServiceError::Store(e.to_string()))?;
            // A concurrent get() may have restored the session between the
            // status read and the durable delete. Drop any such resident
            // now (get() holds the map lock across its insert, so after
            // this sweep a racing restore either already landed — and is
            // removed here — or will see the store empty and give up).
            // Otherwise a later spill would resurrect the closed session.
            if self
                .sessions
                .lock()
                .expect("session map poisoned")
                .remove(&id)
                .is_some()
            {
                session_obs().active.dec();
            }
        }
        ServiceMetrics::add(&self.metrics.sessions_closed, 1);
        session_obs().closed.inc();
        Ok(status)
    }

    /// Evict sessions idle past the timeout. Sessions currently locked by
    /// a worker are by definition active and are skipped.
    ///
    /// With a durable store, eviction *spills*: the session is
    /// snapshotted and transparently restored on its next touch. Without
    /// one, a session with stepped progress is **refused** eviction
    /// (counted in `eviction_refusals`) — dropping it would silently
    /// discard its harvest context Φ.
    pub fn evict_idle(&self) -> usize {
        let mut evicted = 0usize;
        let mut spilled = 0u64;
        let mut refused = 0u64;

        // Pass 1, under the map lock and free of disk I/O: without a store,
        // drop or refuse idle sessions in place; with one, just collect the
        // candidates to spill. Failed sessions are dropped either way — the
        // panic left their state suspect, so spilling would persist garbage.
        let candidates: Vec<(u64, Arc<Mutex<Session>>)> = {
            let mut map = self.sessions.lock().expect("session map poisoned");
            if self.store.is_some() {
                let mut spill_candidates: Vec<(u64, Arc<Mutex<Session>>)> = Vec::new();
                map.retain(|&id, slot| {
                    let Some(s) = try_lock_recover(slot) else {
                        return true;
                    };
                    if s.idle_for() < self.idle_timeout {
                        return true;
                    }
                    if s.failure().is_some() || s.fenced().is_some() {
                        // Failed: state is suspect. Fenced: the durable
                        // copy belongs to another shard. Neither must be
                        // written back — drop the resident copy.
                        evicted += 1;
                        return false;
                    }
                    spill_candidates.push((id, slot.clone()));
                    true
                });
                spill_candidates
            } else {
                map.retain(|_, slot| {
                    let Some(s) = try_lock_recover(slot) else {
                        return true;
                    };
                    if s.idle_for() < self.idle_timeout {
                        return true;
                    }
                    if s.failure().is_none() && s.status().steps_taken > 0 {
                        refused += 1;
                        true
                    } else {
                        evicted += 1;
                        false
                    }
                });
                Vec::new()
            }
        };

        // Pass 2, with only each session's own lock held: snapshot fsyncs
        // here no longer stall create/step/status dispatch for everyone.
        for (id, slot) in candidates {
            let Some(mut s) = try_lock_recover(&slot) else {
                continue; // a worker grabbed it — active again
            };
            if s.idle_for() < self.idle_timeout {
                continue; // touched since pass 1
            }
            if s.spill().is_err() {
                // Spilling failed: keep the session resident rather than
                // lose it.
                refused += 1;
                continue;
            }
            drop(s);
            // Pass 3: remove under the map lock unless a touch raced the
            // spill. (Removing after a touch would still be durable — steps
            // after a spill are WAL-logged on top of its snapshot — but an
            // actively-used session should stay resident.)
            let mut map = self.sessions.lock().expect("session map poisoned");
            let still_idle = map.get(&id).is_some_and(|slot| {
                try_lock_recover(slot).is_some_and(|s| s.idle_for() >= self.idle_timeout)
            });
            if still_idle {
                map.remove(&id);
                spilled += 1;
                evicted += 1;
            }
        }

        ServiceMetrics::add(&self.metrics.sessions_evicted, evicted as u64);
        ServiceMetrics::add(&self.metrics.sessions_spilled, spilled);
        ServiceMetrics::add(&self.metrics.eviction_refusals, refused);
        let obs = session_obs();
        if evicted > 0 {
            obs.evicted.add(evicted as u64);
            obs.active.add(-(evicted as i64));
        }
        if spilled > 0 {
            obs.spilled.add(spilled);
        }
        if refused > 0 {
            obs.eviction_refusals.add(refused);
        }
        evicted
    }

    /// Number of live sessions.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session map poisoned").len()
    }

    /// A [`SessionStatus`] computed from stored state without rebuilding
    /// the live session.
    fn status_of_portable(&self, p: &PortableSession) -> Result<SessionStatus, ServiceError> {
        let s = &p.state;
        let aspect = self
            .bundle
            .corpus
            .aspect_by_name(&s.aspect)
            .ok_or_else(|| ServiceError::Store(format!("unknown aspect '{}'", s.aspect)))?;
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut gathered = 0usize;
        for &pg in &s.seed_results {
            if seen.insert(pg) {
                gathered += 1;
            }
        }
        gathered += s
            .iterations
            .iter()
            .map(|it| it.new_pages.len())
            .sum::<usize>();
        let finished = match &s.finished {
            None => None,
            Some(r) => Some(
                StopReason::parse(r)
                    .ok_or_else(|| ServiceError::Store(format!("unknown stop reason '{r}'")))?,
            ),
        };
        Ok(SessionStatus {
            id: p.id,
            entity: EntityId(s.entity),
            aspect,
            steps_taken: s.iterations.len(),
            gathered,
            finished,
            failed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleConfig;
    use l2q_aspect::RelevanceOracle;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn manager(idle: Duration) -> SessionManager {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let bundle = Arc::new(ServingBundle::with_oracle(
            corpus,
            Vec::new(),
            oracle,
            L2qConfig::default(),
            BundleConfig::default(),
        ));
        SessionManager::new(bundle, idle, Arc::new(ServiceMetrics::default()))
    }

    fn spec(m: &SessionManager) -> SessionSpec {
        SessionSpec {
            entity: EntityId(0),
            aspect: m.bundle().corpus.aspect_by_name("RESEARCH").unwrap(),
            selector: SelectorKind::L2qbal,
            n_queries: Some(3),
            domain_size: 3,
        }
    }

    #[test]
    fn selector_kind_parses_wire_names() {
        assert_eq!(SelectorKind::parse("L2QP"), Some(SelectorKind::L2qp));
        assert_eq!(SelectorKind::parse("l2qbal"), Some(SelectorKind::L2qbal));
        assert_eq!(
            SelectorKind::parse("l2qw=0.25"),
            Some(SelectorKind::Weighted(0.25))
        );
        assert_eq!(SelectorKind::parse("l2qw=7"), None);
        assert_eq!(SelectorKind::parse("ideal"), None);
    }

    #[test]
    fn probe_selectors_parse_and_roundtrip() {
        assert_eq!(SelectorKind::parse("panic"), Some(SelectorKind::PanicProbe));
        assert_eq!(
            SelectorKind::parse("sleep=250"),
            Some(SelectorKind::SleepProbe(250))
        );
        for kind in [SelectorKind::PanicProbe, SelectorKind::SleepProbe(42)] {
            assert_eq!(SelectorKind::parse(&kind.wire_name()), Some(kind));
        }
        assert_eq!(SelectorKind::parse("sleep=abc"), None);
    }

    #[test]
    fn failed_sessions_refuse_steps_and_evict_without_refusal() {
        let m = manager(Duration::from_millis(20));
        let status = m.create(&spec(&m)).unwrap();
        let slot = m.get(status.id).unwrap();
        slot.lock().unwrap().run_steps(1); // real progress first
        lock_recover(&slot).mark_failed("test failure");

        let report = lock_recover(&slot).run_steps(5);
        assert_eq!(report.advanced, 0, "failed session must not step");
        assert_eq!(report.status.failed.as_deref(), Some("test failure"));

        // Failed sessions evict freely despite stepped progress: their
        // state is suspect, so the data-loss refusal does not apply.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(m.evict_idle(), 1);
        assert!(matches!(
            m.get(status.id),
            Err(ServiceError::NoSuchSession(_))
        ));
    }

    #[test]
    fn lock_recover_clears_poison_and_marks_failed() {
        let m = manager(Duration::from_secs(300));
        let status = m.create(&spec(&m)).unwrap();
        let slot = m.get(status.id).unwrap();
        let poisoner = slot.clone();
        let _ = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = poisoner.lock().unwrap();
                panic!("deliberate poison");
            })
            .unwrap()
            .join();
        assert!(slot.is_poisoned());

        let guard = lock_recover(&slot);
        assert!(guard.failure().is_some(), "recovery must mark Failed");
        drop(guard);
        assert!(!slot.is_poisoned(), "poison must be cleared");
        assert!(slot.lock().is_ok(), "plain locking works again");
    }

    #[test]
    fn session_lifecycle_create_step_close() {
        let m = manager(Duration::from_secs(300));
        let status = m.create(&spec(&m)).unwrap();
        assert!(status.gathered > 0, "seed must gather pages");
        assert_eq!(status.steps_taken, 0);
        assert_eq!(m.active(), 1);

        let slot = m.get(status.id).unwrap();
        let report = slot.lock().unwrap().run_steps(100);
        assert!(report.advanced <= 3, "budget caps steps");
        assert!(report.status.finished.is_some());

        let (pages, queries) = slot.lock().unwrap().snapshot();
        assert_eq!(pages.len(), report.status.gathered);
        assert_eq!(queries.len(), report.status.steps_taken);

        m.close(status.id).unwrap();
        assert_eq!(m.active(), 0);
        assert!(matches!(
            m.get(status.id),
            Err(ServiceError::NoSuchSession(_))
        ));
    }

    #[test]
    fn bad_specs_are_rejected() {
        let m = manager(Duration::from_secs(300));
        let mut bad = spec(&m);
        bad.entity = EntityId(10_000);
        assert!(matches!(m.create(&bad), Err(ServiceError::BadEntity(_))));
        let mut zero = spec(&m);
        zero.n_queries = Some(0);
        assert!(matches!(m.create(&zero), Err(ServiceError::BadConfig(_))));
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let m = manager(Duration::from_millis(20));
        let status = m.create(&spec(&m)).unwrap();
        assert_eq!(m.evict_idle(), 0, "fresh session must survive");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(m.evict_idle(), 1);
        assert!(matches!(
            m.get(status.id),
            Err(ServiceError::NoSuchSession(_))
        ));
    }

    #[test]
    fn domain_sessions_share_memoized_solves() {
        let m = manager(Duration::from_secs(300));
        let mut s = spec(&m);
        // Two targets outside the first-3 peer window share one peer set.
        s.entity = EntityId(5);
        m.create(&s).unwrap();
        s.entity = EntityId(6);
        m.create(&s).unwrap();
        assert_eq!(m.bundle().domain_cache().misses(), 1);
        assert_eq!(m.bundle().domain_cache().hits(), 1);
    }
}
