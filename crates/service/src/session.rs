//! Session lifecycle: each session is one (entity, aspect, selector)
//! harvest, stepped incrementally against the shared bundle.
//!
//! The manager tracks sessions in a map of `Arc<Mutex<Session>>`; the
//! scheduler's workers lock a session only while executing its steps, so
//! different sessions progress in parallel while one session's steps stay
//! strictly ordered. Sessions die three ways: their query budget or
//! candidate pool runs out (`finished`), the client closes them, or the
//! idle sweeper evicts them.

use crate::bundle::ServingBundle;
use l2q_core::{
    DomainModel, HarvestState, Harvester, L2qConfig, L2qSelector, QuerySelector, StepOutcome,
    StopReason,
};
use l2q_corpus::{AspectId, EntityId};
use l2q_retrieval::CachedSearch;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which selector a session harvests with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectorKind {
    /// Precision-greedy (L2QP).
    L2qp,
    /// Recall-greedy (L2QR).
    L2qr,
    /// Balanced skyline (L2QBAL).
    L2qbal,
    /// Weighted interpolation L2QW(w).
    Weighted(f64),
}

impl SelectorKind {
    /// Parse a wire name: `l2qp`, `l2qr`, `l2qbal`, or `l2qw=<w>`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "l2qp" => Some(Self::L2qp),
            "l2qr" => Some(Self::L2qr),
            "l2qbal" => Some(Self::L2qbal),
            other => {
                let w = other.strip_prefix("l2qw=")?.parse::<f64>().ok()?;
                (0.0..=1.0).contains(&w).then_some(Self::Weighted(w))
            }
        }
    }

    fn build(self) -> Box<dyn QuerySelector> {
        match self {
            Self::L2qp => Box::new(L2qSelector::l2qp()),
            Self::L2qr => Box::new(L2qSelector::l2qr()),
            Self::L2qbal => Box::new(L2qSelector::l2qbal()),
            Self::Weighted(w) => Box::new(L2qSelector::balanced_weighted(w)),
        }
    }
}

/// Parameters of a `create` request.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Selector family.
    pub selector: SelectorKind,
    /// Per-session query budget (None = bundle default `n_queries`).
    pub n_queries: Option<usize>,
    /// Peer entities for the domain phase: the first `domain_size` corpus
    /// entities excluding the target (0 disables domain awareness).
    pub domain_size: usize,
}

/// Service-level failure, carried back over the wire as `error`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Unknown entity index.
    BadEntity(u32),
    /// Unknown aspect name.
    BadAspect(String),
    /// Unknown selector name.
    BadSelector(String),
    /// Session id not found (never existed, closed, or evicted).
    NoSuchSession(u64),
    /// Invalid configuration (e.g. zero query budget).
    BadConfig(String),
    /// The step queue is full; retry after the hinted backoff.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The scheduler dropped the job (server shutting down).
    Canceled,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadEntity(e) => write!(f, "unknown entity index {e}"),
            Self::BadAspect(a) => write!(f, "unknown aspect '{a}'"),
            Self::BadSelector(s) => write!(f, "unknown selector '{s}' (l2qp|l2qr|l2qbal|l2qw=<w>)"),
            Self::NoSuchSession(id) => write!(f, "no such session {id}"),
            Self::BadConfig(msg) => write!(f, "bad config: {msg}"),
            Self::Overloaded { retry_after_ms } => {
                write!(f, "step queue full; retry after {retry_after_ms}ms")
            }
            Self::Canceled => write!(f, "job canceled (server shutting down)"),
        }
    }
}

/// Point-in-time public view of a session.
#[derive(Clone, Debug)]
pub struct SessionStatus {
    /// Session id.
    pub id: u64,
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Selector iterations completed.
    pub steps_taken: usize,
    /// Pages gathered so far (seed included).
    pub gathered: usize,
    /// Why the session stopped, once it has.
    pub finished: Option<StopReason>,
}

/// Result of one scheduled step batch.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Steps that advanced (fired a query).
    pub advanced: usize,
    /// Previously unseen pages those queries added.
    pub new_pages: usize,
    /// Status after the batch.
    pub status: SessionStatus,
}

/// One live harvest session.
pub struct Session {
    id: u64,
    bundle: Arc<ServingBundle>,
    state: HarvestState,
    selector: Box<dyn QuerySelector>,
    domain: Option<Arc<DomainModel>>,
    cfg: L2qConfig,
    last_touched: Instant,
}

impl Session {
    fn new(id: u64, bundle: Arc<ServingBundle>, spec: &SessionSpec) -> Result<Self, ServiceError> {
        let mut cfg = bundle.cfg;
        if let Some(n) = spec.n_queries {
            if n == 0 {
                return Err(ServiceError::BadConfig("n_queries must be positive".into()));
            }
            cfg = cfg.with_n_queries(n);
        }
        let domain = if spec.domain_size == 0 {
            None
        } else {
            let peers: Vec<EntityId> = bundle
                .corpus
                .entity_ids()
                .filter(|&e| e != spec.entity)
                .take(spec.domain_size)
                .collect();
            Some(bundle.domain_model(&peers))
        };
        let mut selector = spec.selector.build();
        selector.reset();
        let harvester = Harvester {
            corpus: &bundle.corpus,
            engine: &bundle.engine,
            oracle: &bundle.oracle,
            domain: domain.as_deref(),
            cfg,
        };
        let backend = CachedSearch::new(&bundle.engine, bundle.retrieval_cache());
        let state = HarvestState::begin_with(&harvester, spec.entity, spec.aspect, &backend);
        Ok(Self {
            id,
            bundle,
            state,
            selector,
            domain,
            cfg,
            last_touched: Instant::now(),
        })
    }

    /// Execute up to `max_steps` selector iterations (stops early when the
    /// session finishes). Queries are fired through the bundle's shared
    /// retrieval cache.
    pub fn run_steps(&mut self, max_steps: usize) -> StepReport {
        self.last_touched = Instant::now();
        let bundle = self.bundle.clone();
        let harvester = Harvester {
            corpus: &bundle.corpus,
            engine: &bundle.engine,
            oracle: &bundle.oracle,
            domain: self.domain.as_deref(),
            cfg: self.cfg,
        };
        let backend = CachedSearch::new(&bundle.engine, bundle.retrieval_cache());
        let mut advanced = 0usize;
        let mut new_pages = 0usize;
        for _ in 0..max_steps {
            match self
                .state
                .step_with(&harvester, self.selector.as_mut(), &backend)
            {
                StepOutcome::Advanced { new_pages: n } => {
                    advanced += 1;
                    new_pages += n;
                }
                StepOutcome::Finished(_) => break,
            }
        }
        self.last_touched = Instant::now();
        StepReport {
            advanced,
            new_pages,
            status: self.status(),
        }
    }

    /// Current status (refreshes the idle clock).
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            id: self.id,
            entity: self.state.entity(),
            aspect: self.state.aspect(),
            steps_taken: self.state.steps_taken(),
            gathered: self.state.gathered().len(),
            finished: self.state.stop_reason(),
        }
    }

    /// Harvested pages (first-retrieval order) and fired queries rendered
    /// as text.
    pub fn snapshot(&mut self) -> (Vec<u32>, Vec<String>) {
        self.last_touched = Instant::now();
        let pages = self.state.gathered().iter().map(|p| p.0).collect();
        let queries = self
            .state
            .iterations()
            .iter()
            .map(|it| it.query.render(&self.bundle.corpus.symbols))
            .collect();
        (pages, queries)
    }

    /// Time since the last client interaction.
    pub fn idle_for(&self) -> Duration {
        self.last_touched.elapsed()
    }
}

/// Service-wide counters surfaced by the `stats` endpoint.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Sessions ever created.
    pub sessions_created: AtomicU64,
    /// Sessions closed by clients.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the idle sweeper.
    pub sessions_evicted: AtomicU64,
    /// Selector iterations executed by workers.
    pub steps_executed: AtomicU64,
    /// Queries fired (seeds + advanced steps).
    pub queries_fired: AtomicU64,
    /// Step jobs rejected for backpressure.
    pub jobs_rejected: AtomicU64,
}

impl ServiceMetrics {
    /// Relaxed load of one counter.
    pub fn load(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Relaxed add.
    pub fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

/// Process-global session-lifecycle metrics mirroring the per-manager
/// [`ServiceMetrics`] (which stays the exact source for the `stats` op).
struct SessionObs {
    active: Arc<l2q_obs::Gauge>,
    created: Arc<l2q_obs::Counter>,
    closed: Arc<l2q_obs::Counter>,
    evicted: Arc<l2q_obs::Counter>,
}

fn session_obs() -> &'static SessionObs {
    static M: std::sync::OnceLock<SessionObs> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        SessionObs {
            active: reg.gauge("service_sessions_active"),
            created: reg.counter("service_sessions_created_total"),
            closed: reg.counter("service_sessions_closed_total"),
            evicted: reg.counter("service_sessions_evicted_total"),
        }
    })
}

/// Owner of all live sessions.
pub struct SessionManager {
    bundle: Arc<ServingBundle>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    idle_timeout: Duration,
    metrics: Arc<ServiceMetrics>,
}

impl SessionManager {
    /// Create a manager over a bundle.
    pub fn new(
        bundle: Arc<ServingBundle>,
        idle_timeout: Duration,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        Self {
            bundle,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            idle_timeout,
            metrics,
        }
    }

    /// The bundle sessions run against.
    pub fn bundle(&self) -> &Arc<ServingBundle> {
        &self.bundle
    }

    /// Validate a spec and open a session (fires the seed query).
    pub fn create(&self, spec: &SessionSpec) -> Result<SessionStatus, ServiceError> {
        if spec.entity.index() >= self.bundle.corpus.entities.len() {
            return Err(ServiceError::BadEntity(spec.entity.0));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Session::new(id, self.bundle.clone(), spec)?;
        let status = session.status();
        self.sessions
            .lock()
            .expect("session map poisoned")
            .insert(id, Arc::new(Mutex::new(session)));
        ServiceMetrics::add(&self.metrics.sessions_created, 1);
        ServiceMetrics::add(&self.metrics.queries_fired, 1); // the seed
        let obs = session_obs();
        obs.created.inc();
        obs.active.inc();
        Ok(status)
    }

    /// Shared handle to a live session.
    pub fn get(&self, id: u64) -> Result<Arc<Mutex<Session>>, ServiceError> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .get(&id)
            .cloned()
            .ok_or(ServiceError::NoSuchSession(id))
    }

    /// Close a session, returning its final status.
    pub fn close(&self, id: u64) -> Result<SessionStatus, ServiceError> {
        let slot = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .remove(&id)
            .ok_or(ServiceError::NoSuchSession(id))?;
        ServiceMetrics::add(&self.metrics.sessions_closed, 1);
        let obs = session_obs();
        obs.closed.inc();
        obs.active.dec();
        let status = slot.lock().expect("session poisoned").status();
        Ok(status)
    }

    /// Evict sessions idle past the timeout. Sessions currently locked by
    /// a worker are by definition active and are skipped.
    pub fn evict_idle(&self) -> usize {
        let mut map = self.sessions.lock().expect("session map poisoned");
        let before = map.len();
        map.retain(|_, slot| match slot.try_lock() {
            Ok(s) => s.idle_for() < self.idle_timeout,
            Err(_) => true,
        });
        let evicted = before - map.len();
        ServiceMetrics::add(&self.metrics.sessions_evicted, evicted as u64);
        if evicted > 0 {
            let obs = session_obs();
            obs.evicted.add(evicted as u64);
            obs.active.add(-(evicted as i64));
        }
        evicted
    }

    /// Number of live sessions.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session map poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleConfig;
    use l2q_aspect::RelevanceOracle;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn manager(idle: Duration) -> SessionManager {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let bundle = Arc::new(ServingBundle::with_oracle(
            corpus,
            Vec::new(),
            oracle,
            L2qConfig::default(),
            BundleConfig::default(),
        ));
        SessionManager::new(bundle, idle, Arc::new(ServiceMetrics::default()))
    }

    fn spec(m: &SessionManager) -> SessionSpec {
        SessionSpec {
            entity: EntityId(0),
            aspect: m.bundle().corpus.aspect_by_name("RESEARCH").unwrap(),
            selector: SelectorKind::L2qbal,
            n_queries: Some(3),
            domain_size: 3,
        }
    }

    #[test]
    fn selector_kind_parses_wire_names() {
        assert_eq!(SelectorKind::parse("L2QP"), Some(SelectorKind::L2qp));
        assert_eq!(SelectorKind::parse("l2qbal"), Some(SelectorKind::L2qbal));
        assert_eq!(
            SelectorKind::parse("l2qw=0.25"),
            Some(SelectorKind::Weighted(0.25))
        );
        assert_eq!(SelectorKind::parse("l2qw=7"), None);
        assert_eq!(SelectorKind::parse("ideal"), None);
    }

    #[test]
    fn session_lifecycle_create_step_close() {
        let m = manager(Duration::from_secs(300));
        let status = m.create(&spec(&m)).unwrap();
        assert!(status.gathered > 0, "seed must gather pages");
        assert_eq!(status.steps_taken, 0);
        assert_eq!(m.active(), 1);

        let slot = m.get(status.id).unwrap();
        let report = slot.lock().unwrap().run_steps(100);
        assert!(report.advanced <= 3, "budget caps steps");
        assert!(report.status.finished.is_some());

        let (pages, queries) = slot.lock().unwrap().snapshot();
        assert_eq!(pages.len(), report.status.gathered);
        assert_eq!(queries.len(), report.status.steps_taken);

        m.close(status.id).unwrap();
        assert_eq!(m.active(), 0);
        assert!(matches!(
            m.get(status.id),
            Err(ServiceError::NoSuchSession(_))
        ));
    }

    #[test]
    fn bad_specs_are_rejected() {
        let m = manager(Duration::from_secs(300));
        let mut bad = spec(&m);
        bad.entity = EntityId(10_000);
        assert!(matches!(m.create(&bad), Err(ServiceError::BadEntity(_))));
        let mut zero = spec(&m);
        zero.n_queries = Some(0);
        assert!(matches!(m.create(&zero), Err(ServiceError::BadConfig(_))));
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let m = manager(Duration::from_millis(20));
        let status = m.create(&spec(&m)).unwrap();
        assert_eq!(m.evict_idle(), 0, "fresh session must survive");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(m.evict_idle(), 1);
        assert!(matches!(
            m.get(status.id),
            Err(ServiceError::NoSuchSession(_))
        ));
    }

    #[test]
    fn domain_sessions_share_memoized_solves() {
        let m = manager(Duration::from_secs(300));
        let mut s = spec(&m);
        // Two targets outside the first-3 peer window share one peer set.
        s.entity = EntityId(5);
        m.create(&s).unwrap();
        s.entity = EntityId(6);
        m.create(&s).unwrap();
        assert_eq!(m.bundle().domain_cache().misses(), 1);
        assert_eq!(m.bundle().domain_cache().hits(), 1);
    }
}
