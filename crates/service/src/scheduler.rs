//! The worker pool: a fixed set of threads draining step jobs from one
//! bounded crossbeam channel.
//!
//! The bounded channel is the backpressure mechanism — when it is full,
//! [`Scheduler::submit`] fails immediately with
//! [`ServiceError::Overloaded`] and a retry hint instead of queueing
//! unboundedly. Each job locks its session for the duration of the batch,
//! so steps of one session serialize while distinct sessions run on
//! distinct workers.
//!
//! Workers are panic-isolated: a batch that panics is caught with
//! `catch_unwind`, the session's poisoned mutex is recovered into a
//! terminal `Failed` state, the caller gets a
//! [`ServiceError::SessionFailed`] reply instead of a hang, and
//! `worker_panics_total` counts the event. The worker thread itself
//! survives (and an outer supervisor loop respawns the drain loop if a
//! panic ever escapes it), so one poisonous session cannot silently
//! shrink the pool for the rest of the process.

use crate::session::{lock_recover, ServiceError, ServiceMetrics, Session, StepReport};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work for the pool.
enum JobKind {
    /// Run up to `steps` selector iterations of one session and send the
    /// report to `reply`.
    Step {
        session: Arc<Mutex<Session>>,
        steps: usize,
        reply: Sender<Result<StepReport, ServiceError>>,
    },
    /// An opaque closure (the reactor's dispatch path). The closure owns
    /// its own reply channel; panics are caught so the worker survives.
    Task(Box<dyn FnOnce() + Send>),
}

struct Job {
    kind: JobKind,
    enqueued: Instant,
    /// Trace context captured on the submitting thread; the worker
    /// re-enters it so batch/step spans land in the caller's trace.
    trace: Option<l2q_obs::TraceContext>,
}

/// Global-registry handles shared by every scheduler in the process
/// (resolved once; the hot path pays only relaxed atomics).
struct SchedulerObs {
    queue_depth: Arc<l2q_obs::Gauge>,
    queue_wait_seconds: Arc<l2q_obs::Histogram>,
    batch_seconds: Arc<l2q_obs::Histogram>,
    jobs_total: Arc<l2q_obs::Counter>,
    jobs_rejected_total: Arc<l2q_obs::Counter>,
    worker_panics_total: Arc<l2q_obs::Counter>,
    worker_respawns_total: Arc<l2q_obs::Counter>,
}

fn scheduler_obs() -> &'static SchedulerObs {
    static M: OnceLock<SchedulerObs> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        SchedulerObs {
            queue_depth: reg.gauge("scheduler_queue_depth"),
            queue_wait_seconds: reg.histogram("scheduler_queue_wait_seconds"),
            batch_seconds: reg.histogram("scheduler_batch_seconds"),
            jobs_total: reg.counter("scheduler_jobs_total"),
            jobs_rejected_total: reg.counter("scheduler_jobs_rejected_total"),
            worker_panics_total: reg.counter("worker_panics_total"),
            worker_respawns_total: reg.counter("worker_respawns_total"),
        }
    })
}

/// Fixed worker pool over a bounded job queue.
pub struct Scheduler {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServiceMetrics>,
    retry_after_ms: u64,
}

impl Scheduler {
    /// Spawn `workers` threads draining a queue of capacity `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize, metrics: Arc<ServiceMetrics>) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(queue_cap > 0, "need a positive queue capacity");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::bounded(queue_cap);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("l2q-worker-{i}"))
                    .spawn(move || {
                        // Supervisor loop: per-job panics are caught inside
                        // worker_loop; should one ever escape it, respawn
                        // the drain loop instead of silently shrinking the
                        // pool. A clean return (channel disconnected) ends
                        // the thread.
                        loop {
                            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                worker_loop(rx.clone(), metrics.clone())
                            }));
                            match result {
                                Ok(()) => break,
                                Err(_) => scheduler_obs().worker_respawns_total.inc(),
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers: handles,
            metrics,
            retry_after_ms: 25,
        }
    }

    /// Enqueue a step batch. Returns a receiver for the report, or
    /// `Overloaded` when the queue is full (the caller should relay the
    /// retry hint and drop the request).
    pub fn submit(
        &self,
        session: Arc<Mutex<Session>>,
        steps: usize,
    ) -> Result<Receiver<Result<StepReport, ServiceError>>, ServiceError> {
        let (reply_tx, reply_rx) = channel::unbounded();
        self.enqueue(JobKind::Step {
            session,
            steps,
            reply: reply_tx,
        })?;
        Ok(reply_rx)
    }

    /// Enqueue an opaque closure on the same bounded queue (the
    /// reactor's dispatch path) — step batches and reactor tasks share
    /// one backpressure boundary, so overload behaves identically in
    /// both serve modes. The closure is responsible for delivering its
    /// own reply; a panic inside it is caught by the worker.
    pub fn submit_task(&self, task: Box<dyn FnOnce() + Send>) -> Result<(), ServiceError> {
        self.enqueue(JobKind::Task(task))
    }

    fn enqueue(&self, kind: JobKind) -> Result<(), ServiceError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServiceError::Canceled);
        };
        let job = Job {
            kind,
            enqueued: Instant::now(),
            trace: l2q_obs::trace::current(),
        };
        let obs = scheduler_obs();
        // Inc before the send so the gauge never under-reports a queued
        // job; undone on the failure paths below.
        obs.queue_depth.inc();
        match tx.try_send(job) {
            Ok(()) => {
                obs.jobs_total.inc();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                obs.queue_depth.dec();
                obs.jobs_rejected_total.inc();
                ServiceMetrics::add(&self.metrics.jobs_rejected, 1);
                Err(ServiceError::Overloaded {
                    retry_after_ms: self.retry_after_ms,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                obs.queue_depth.dec();
                Err(ServiceError::Canceled)
            }
        }
    }

    /// Enqueue and wait for the report (convenience over [`submit`]).
    ///
    /// [`submit`]: Scheduler::submit
    pub fn run(
        &self,
        session: Arc<Mutex<Session>>,
        steps: usize,
    ) -> Result<StepReport, ServiceError> {
        self.submit(session, steps)?
            .recv()
            .map_err(|_| ServiceError::Canceled)?
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.tx.as_ref().map(|tx| tx.len()).unwrap_or(0)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Drop the queue and join every worker. Queued jobs still drain;
    /// their reports go to any caller still holding a reply receiver.
    pub fn shutdown(&mut self) {
        self.tx.take(); // disconnects the channel once workers drain it
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Receiver<Job>, metrics: Arc<ServiceMetrics>) {
    let obs = scheduler_obs();
    while let Ok(job) = rx.recv() {
        obs.queue_depth.dec();
        // Adopt the submitter's trace context for the whole batch so the
        // queue-wait and batch spans (and everything under the harvest
        // step) join the caller's trace.
        let _trace_guard = job.trace.map(l2q_obs::trace::enter);
        let wait = job.enqueued.elapsed();
        match l2q_obs::trace::current() {
            Some(ctx) => {
                obs.queue_wait_seconds
                    .record_with_exemplar(wait.as_secs_f64(), ctx.trace_id);
                l2q_obs::trace::record_span("scheduler_queue_wait", wait);
            }
            None => obs.queue_wait_seconds.record_duration(wait),
        }
        match job.kind {
            JobKind::Step {
                session,
                steps,
                reply,
            } => {
                let result = execute_batch_spanned(&session, steps, &metrics);
                // The client may have hung up; a dead reply receiver is
                // not an error.
                let _ = reply.send(result);
            }
            JobKind::Task(task) => {
                // The closure delivers its own reply (step panics are
                // already converted inside execute_batch; this guard
                // only covers dispatch plumbing).
                if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                    obs.worker_panics_total.inc();
                }
            }
        }
    }
}

/// Run one step batch, converting a panic into a `SessionFailed` reply:
/// the poisoned session mutex is recovered, the session is marked
/// terminally `Failed`, and the panic stops here instead of killing the
/// worker. Shared by the thread-mode reply path and the reactor's
/// in-task step execution.
/// [`execute_batch`] under the scheduler's batch span, so thread-mode
/// and reactor-mode step batches record identical `scheduler_batch`
/// latency and tracing.
pub(crate) fn execute_batch_spanned(
    session: &Arc<Mutex<Session>>,
    steps: usize,
    metrics: &ServiceMetrics,
) -> Result<StepReport, ServiceError> {
    let _batch_span =
        l2q_obs::SpanTimer::start_named(scheduler_obs().batch_seconds.clone(), "scheduler_batch");
    execute_batch(session, steps, metrics)
}

pub(crate) fn execute_batch(
    session: &Arc<Mutex<Session>>,
    steps: usize,
    metrics: &ServiceMetrics,
) -> Result<StepReport, ServiceError> {
    {
        let guard = lock_recover(session);
        if let Some(message) = guard.failure().map(str::to_owned) {
            return Err(ServiceError::SessionFailed { message });
        }
        if let Some(message) = guard.fenced().map(str::to_owned) {
            return Err(ServiceError::Store(message));
        }
    }
    let outcome =
        std::panic::catch_unwind(AssertUnwindSafe(|| lock_recover(session).run_steps(steps)));
    match outcome {
        Ok(report) => {
            // The batch commits to the WAL under the session lock; if the
            // durable store fenced us mid-batch (another shard took the
            // session), surface that instead of an ok — the advance never
            // became durable and the new owner will not see it.
            if let Some(message) = lock_recover(session).fenced().map(str::to_owned) {
                return Err(ServiceError::Store(message));
            }
            ServiceMetrics::add(&metrics.steps_executed, report.advanced as u64);
            ServiceMetrics::add(&metrics.queries_fired, report.advanced as u64);
            Ok(report)
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            scheduler_obs().worker_panics_total.inc();
            lock_recover(session).mark_failed(&message);
            Err(ServiceError::SessionFailed { message })
        }
    }
}

/// Best-effort text of a panic payload (`panic!` emits `&str`/`String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "step batch panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{BundleConfig, ServingBundle};
    use crate::session::{SelectorKind, SessionManager, SessionSpec};
    use l2q_aspect::RelevanceOracle;
    use l2q_core::L2qConfig;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use std::time::Duration;

    fn setup() -> (SessionManager, Arc<ServiceMetrics>) {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let bundle = Arc::new(ServingBundle::with_oracle(
            corpus,
            Vec::new(),
            oracle,
            L2qConfig::default(),
            BundleConfig::default(),
        ));
        let metrics = Arc::new(ServiceMetrics::default());
        (
            SessionManager::new(bundle, Duration::from_secs(300), metrics.clone()),
            metrics,
        )
    }

    fn spec(m: &SessionManager, entity: u32) -> SessionSpec {
        SessionSpec {
            entity: EntityId(entity),
            aspect: m.bundle().corpus.aspect_by_name("RESEARCH").unwrap(),
            selector: SelectorKind::L2qbal,
            n_queries: Some(3),
            domain_size: 0,
        }
    }

    #[test]
    fn scheduler_executes_jobs_and_counts_steps() {
        let (manager, metrics) = setup();
        let scheduler = Scheduler::new(2, 8, metrics.clone());
        let ids: Vec<u64> = (0..4)
            .map(|e| manager.create(&spec(&manager, e)).unwrap().id)
            .collect();
        for &id in &ids {
            let report = scheduler.run(manager.get(id).unwrap(), 100).unwrap();
            assert!(report.status.finished.is_some(), "budget 3 must finish");
        }
        let executed = ServiceMetrics::load(&metrics.steps_executed);
        assert!(executed > 0 && executed <= 12, "executed {executed}");
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let (manager, metrics) = setup();
        let id = manager.create(&spec(&manager, 0)).unwrap().id;
        let session = manager.get(id).unwrap();

        // Hold the session lock so the single worker blocks on job #1,
        // leaving jobs #2 (queued) and #3 (rejected) to exercise the queue.
        let scheduler = Scheduler::new(1, 1, metrics.clone());
        let guard = session.lock().unwrap();
        let rx1 = scheduler.submit(manager.get(id).unwrap(), 1).unwrap();
        // Wait until the worker has pulled job #1 off the queue.
        while scheduler.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let rx2 = scheduler.submit(manager.get(id).unwrap(), 1).unwrap();
        let err = scheduler.submit(manager.get(id).unwrap(), 1).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { retry_after_ms } if retry_after_ms > 0));
        assert_eq!(ServiceMetrics::load(&metrics.jobs_rejected), 1);

        drop(guard);
        assert!(rx1.recv().unwrap().is_ok());
        assert!(rx2.recv().unwrap().is_ok());
    }

    #[test]
    fn panicking_batch_fails_its_session_but_pool_and_others_survive() {
        let (manager, metrics) = setup();
        let scheduler = Scheduler::new(2, 8, metrics);

        let mut panic_spec = spec(&manager, 0);
        panic_spec.selector = SelectorKind::PanicProbe;
        let panic_id = manager.create(&panic_spec).unwrap().id;

        // The panicking batch replies with SessionFailed, not a hang or a
        // propagated panic.
        let err = scheduler
            .run(manager.get(panic_id).unwrap(), 4)
            .unwrap_err();
        assert!(
            matches!(&err, ServiceError::SessionFailed { message } if message.contains("panic probe")),
            "got {err:?}"
        );

        // The session is terminally Failed and its mutex is usable again.
        let slot = manager.get(panic_id).unwrap();
        let status = crate::session::lock_recover(&slot).status();
        assert!(status.failed.is_some());
        assert!(!slot.is_poisoned());

        // Re-stepping the failed session refuses cheaply.
        let err = scheduler
            .run(manager.get(panic_id).unwrap(), 1)
            .unwrap_err();
        assert!(matches!(err, ServiceError::SessionFailed { .. }));

        // Both workers still execute jobs for healthy sessions: run more
        // sessions than one worker could interleave alone.
        for entity in 1..5 {
            let id = manager.create(&spec(&manager, entity)).unwrap().id;
            let report = scheduler.run(manager.get(id).unwrap(), 100).unwrap();
            assert!(report.status.finished.is_some(), "entity {entity} stuck");
        }
        assert_eq!(scheduler.workers(), 2);
    }

    #[test]
    fn shutdown_joins_workers_and_cancels_submissions() {
        let (manager, metrics) = setup();
        let id = manager.create(&spec(&manager, 0)).unwrap().id;
        let mut scheduler = Scheduler::new(2, 4, metrics);
        scheduler.shutdown();
        let err = scheduler.submit(manager.get(id).unwrap(), 1).unwrap_err();
        assert_eq!(err, ServiceError::Canceled);
        assert_eq!(scheduler.queue_depth(), 0);
    }
}
