//! The shared serving substrate: one immutable bundle of corpus, index,
//! aspect models and oracle, shared by every session via `Arc`, plus the
//! two memoization layers (retrieval results, domain-phase solves).

use l2q_aspect::{train_aspect_models, AspectModel, RelevanceOracle, TrainConfig};
use l2q_core::{learn_domain, DomainModel, L2qConfig};
use l2q_corpus::{Corpus, EntityId};
use l2q_retrieval::{SearchEngine, ShardedQueryCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing knobs for the bundle's caches.
#[derive(Clone, Copy, Debug)]
pub struct BundleConfig {
    /// Shards of the retrieval cache (locks).
    pub cache_shards: usize,
    /// Total retrieval-cache entries across shards.
    pub cache_capacity: usize,
}

impl Default for BundleConfig {
    fn default() -> Self {
        Self {
            cache_shards: 8,
            cache_capacity: 4096,
        }
    }
}

/// Everything sessions read, frozen at server start. All fields are
/// immutable after construction (the caches use interior locking), so one
/// `Arc<ServingBundle>` serves any number of concurrent sessions.
pub struct ServingBundle {
    /// The frozen corpus.
    pub corpus: Arc<Corpus>,
    /// The search engine over the corpus (shares the same `Arc`).
    pub engine: SearchEngine,
    /// Trained per-aspect classifiers (provenance of the oracle).
    pub models: Vec<AspectModel>,
    /// Materialized Y.
    pub oracle: RelevanceOracle,
    /// Default pipeline configuration for sessions that don't override.
    pub cfg: L2qConfig,
    retrieval_cache: ShardedQueryCache,
    domain_cache: DomainCache,
}

impl ServingBundle {
    /// Build a bundle by training aspect classifiers on the corpus and
    /// materializing the oracle from them — the paper's serving setup.
    pub fn build(corpus: Arc<Corpus>, cfg: L2qConfig, opts: BundleConfig) -> Self {
        let models = train_aspect_models(&corpus, &TrainConfig::default());
        let oracle = RelevanceOracle::from_models(&corpus, &models);
        Self::with_oracle(corpus, models, oracle, cfg, opts)
    }

    /// Build a bundle around an existing oracle (e.g. ground truth in
    /// tests, where classifier noise would obscure comparisons).
    pub fn with_oracle(
        corpus: Arc<Corpus>,
        models: Vec<AspectModel>,
        oracle: RelevanceOracle,
        cfg: L2qConfig,
        opts: BundleConfig,
    ) -> Self {
        let engine = SearchEngine::with_defaults(corpus.clone());
        Self {
            corpus,
            engine,
            models,
            oracle,
            cfg,
            retrieval_cache: ShardedQueryCache::new(opts.cache_shards, opts.cache_capacity),
            domain_cache: DomainCache::default(),
        }
    }

    /// The shared retrieval-results cache.
    pub fn retrieval_cache(&self) -> &ShardedQueryCache {
        &self.retrieval_cache
    }

    /// The shared domain-model cache.
    pub fn domain_cache(&self) -> &DomainCache {
        &self.domain_cache
    }

    /// Memoized domain-phase solve for a domain entity set (see
    /// [`DomainCache`]).
    pub fn domain_model(&self, domain_entities: &[EntityId]) -> Arc<DomainModel> {
        self.domain_cache
            .get_or_learn(&self.corpus, domain_entities, &self.oracle, &self.cfg)
    }
}

/// Memoized domain-phase solves.
///
/// One `learn_domain` call solves the reinforcement graph for *every*
/// aspect of the domain at once, so the cache key is the (sorted) domain
/// entity set; the per-(domain, aspect) utilities live inside the cached
/// [`DomainModel`] and are looked up there by sessions.
#[derive(Default)]
pub struct DomainCache {
    map: Mutex<HashMap<Vec<EntityId>, Arc<DomainModel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Process-global mirror counters for every [`DomainCache`] instance; the
/// per-instance atomics above stay the exact per-bundle source for `stats`.
struct DomainCacheCounters {
    hits: Arc<l2q_obs::Counter>,
    misses: Arc<l2q_obs::Counter>,
}

fn domain_cache_counters() -> &'static DomainCacheCounters {
    static C: std::sync::OnceLock<DomainCacheCounters> = std::sync::OnceLock::new();
    C.get_or_init(|| DomainCacheCounters {
        hits: l2q_obs::global().counter("domain_cache_hits_total"),
        misses: l2q_obs::global().counter("domain_cache_misses_total"),
    })
}

impl DomainCache {
    /// Fetch the model for a domain entity set, solving on first use.
    ///
    /// The solve runs outside the map lock, so concurrent first requests
    /// for the same set may solve twice (both arrive at identical models —
    /// the solve is deterministic — and one result wins).
    pub fn get_or_learn(
        &self,
        corpus: &Corpus,
        domain_entities: &[EntityId],
        oracle: &RelevanceOracle,
        cfg: &L2qConfig,
    ) -> Arc<DomainModel> {
        let mut key: Vec<EntityId> = domain_entities.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(hit) = self.map.lock().expect("domain cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            domain_cache_counters().hits.inc();
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        domain_cache_counters().misses.inc();
        let model = Arc::new(learn_domain(corpus, &key, oracle, cfg));
        self.map
            .lock()
            .expect("domain cache poisoned")
            .entry(key)
            .or_insert(model)
            .clone()
    }

    /// Solves served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Solves actually computed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct domain entity sets currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("domain cache poisoned").len()
    }

    /// Whether no solve is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn tiny_bundle() -> ServingBundle {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        ServingBundle::with_oracle(
            corpus,
            Vec::new(),
            oracle,
            L2qConfig::default(),
            BundleConfig::default(),
        )
    }

    #[test]
    fn domain_solves_are_memoized_per_entity_set() {
        let bundle = tiny_bundle();
        let a: Vec<EntityId> = bundle.corpus.entity_ids().take(3).collect();
        let shuffled: Vec<EntityId> = a.iter().rev().copied().collect();
        let b: Vec<EntityId> = bundle.corpus.entity_ids().skip(1).take(3).collect();

        let m1 = bundle.domain_model(&a);
        let m2 = bundle.domain_model(&shuffled); // same set, different order
        let m3 = bundle.domain_model(&b);
        assert!(Arc::ptr_eq(&m1, &m2), "order must not defeat memoization");
        assert!(!Arc::ptr_eq(&m1, &m3));
        assert_eq!(bundle.domain_cache().hits(), 1);
        assert_eq!(bundle.domain_cache().misses(), 2);
        assert_eq!(bundle.domain_cache().len(), 2);
    }

    #[test]
    fn bundle_is_shareable_across_threads() {
        let bundle = Arc::new(tiny_bundle());
        let e = EntityId(0);
        let seed = bundle.corpus.seed_query(e).to_vec();
        // Warm the cache so the concurrent lookups below are guaranteed hits.
        let expect = bundle.retrieval_cache().search(&bundle.engine, e, &seed);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let bundle = bundle.clone();
                let seed = seed.clone();
                let expect = expect.clone();
                s.spawn(move || {
                    let got = bundle.retrieval_cache().search(&bundle.engine, e, &seed);
                    assert_eq!(got, expect);
                });
            }
        });
        let cache = bundle.retrieval_cache();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }
}
