//! The line-delimited JSON wire protocol.
//!
//! One request JSON object per line in, one response object per line out.
//! Requests are a single flat struct with an `op` discriminator plus
//! optional fields (only those the op needs are read); responses mirror
//! that shape. Ops:
//!
//! | op         | consumes                                             |
//! |------------|------------------------------------------------------|
//! | `ping`     | —                                                    |
//! | `create`   | `entity`, `aspect`, `selector`, `n_queries?`, `domain_size?` |
//! | `step`     | `session`, `steps?`                                  |
//! | `status`   | `session`                                            |
//! | `snapshot` | `session`                                            |
//! | `close`    | `session`                                            |
//! | `stats`    | —                                                    |
//! | `metrics`  | `format?` (`"json"` default, or `"text"` for Prometheus exposition) |
//! | `persist`  | `session` — force a durable snapshot (needs `--data-dir`) |
//! | `restore`  | `session` — load a stored session into residency     |
//! | `detach`   | `session` — drain + spill + drop residency, keeping durable state (migration drain hook) |
//! | `list_sessions` | — every resident and durably stored session     |
//! | `trace`    | `trace_id` (fetch one span tree), or `mode` (`"recent"`/`"slow"`) + `limit?` |
//! | `shutdown` | —                                                    |
//!
//! Any request may set `trace: true` to have the edge root a distributed
//! trace for it (the assigned id comes back in the response `trace_id`);
//! `trace_id` + `parent_span_id` carry an existing context across hops.
//!
//! The `l2q-router` front door speaks the same protocol and adds fleet
//! admin ops on top: `fleet_status` (topology + health), `join_shard`
//! (`shard`, `shard_addr`), `drain_shard` (`shard`), `migrate`
//! (`session`, optional `shard` target), `fleet_metrics` (every
//! healthy shard's registry merged under a `shard` label, histograms
//! bucket-wise), `supervisor_status` (one row per supervised child
//! process), and `rolling_restart` (drain → restart → rejoin each
//! shard in turn, aborting below quorum). Routed session ops
//! additionally carry the serving
//! shard's name back in the response's `shard` field; the router's
//! `trace` op fans `by_id` out to all shards and stitches the subtrees.

use crate::session::{ServiceError, SessionStatus};
use l2q_core::StopReason;
use serde::{Deserialize, Serialize};

/// A client request (one JSON line).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Request {
    /// Operation name (see module docs).
    pub op: String,
    /// Target session id (`step`/`status`/`snapshot`/`close`).
    pub session: Option<u64>,
    /// Entity index (`create`).
    pub entity: Option<u32>,
    /// Aspect name, e.g. `"RESEARCH"` (`create`).
    pub aspect: Option<String>,
    /// Selector name: `l2qp`, `l2qr`, `l2qbal`, `l2qw=<w>` (`create`).
    pub selector: Option<String>,
    /// Steps to run in this batch (`step`; default 1, server-capped).
    pub steps: Option<u32>,
    /// Per-session query budget override (`create`).
    pub n_queries: Option<u32>,
    /// Domain peer-set size, 0 = no domain phase (`create`).
    pub domain_size: Option<u32>,
    /// Output format for `metrics`: `"json"` (default) or `"text"`.
    pub format: Option<String>,
    /// Client-chosen correlation id, echoed verbatim in the response
    /// (any op; lets a pipelining client match responses to requests).
    pub request_id: Option<u64>,
    /// Per-request deadline in milliseconds (`step`). When the batch
    /// misses it the server answers `ok:false` with a deadline error and
    /// the batch finishes in the background; 0 or absent falls back to
    /// the server's `--request-deadline-ms` default.
    pub deadline_ms: Option<u64>,
    /// Shard name (`join_shard`/`drain_shard`, and the optional explicit
    /// target of `migrate`). Router-only; ignored by `l2q-serve`.
    pub shard: Option<String>,
    /// Shard address, `host:port` (`join_shard`). Router-only.
    pub shard_addr: Option<String>,
    /// Ask the edge (router, or server when addressed directly) to trace
    /// this request: a fresh trace is rooted and its id echoed back in
    /// the response's `trace_id`.
    pub trace: Option<bool>,
    /// Propagated trace id: set together with `parent_span_id` by an
    /// upstream hop (the router), or alone by the `trace` op to fetch a
    /// span tree by id.
    pub trace_id: Option<u64>,
    /// The upstream span the receiver's spans attach under (set by the
    /// hop that forwarded this request).
    pub parent_span_id: Option<u64>,
    /// `trace` op mode: `"by_id"` (default when `trace_id` is set),
    /// `"recent"`, or `"slow"` (slowest root spans).
    pub mode: Option<String>,
    /// Max spans returned by the `trace` op (`recent`/`slow`).
    pub limit: Option<u64>,
}

impl Request {
    /// A request with only the op set.
    pub fn op(op: &str) -> Self {
        Self {
            op: op.into(),
            ..Self::default()
        }
    }

    /// A request targeting one session.
    pub fn for_session(op: &str, session: u64) -> Self {
        Self {
            op: op.into(),
            session: Some(session),
            ..Self::default()
        }
    }
}

/// A server response (one JSON line).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Echo of the request's `request_id`, when it carried one.
    pub request_id: Option<u64>,
    /// Human-readable failure description when `ok` is false.
    pub error: Option<String>,
    /// Backoff hint in milliseconds (set on overload rejections).
    pub retry_after_ms: Option<u64>,
    /// Session id (`create` and session-targeted ops).
    pub session: Option<u64>,
    /// `"running"` or `"finished:<reason>"`.
    pub state: Option<String>,
    /// Entity the session harvests for.
    pub entity: Option<u32>,
    /// Aspect name the session harvests for.
    pub aspect: Option<String>,
    /// Selector iterations completed so far.
    pub steps_taken: Option<u64>,
    /// Pages gathered so far.
    pub gathered: Option<u64>,
    /// Steps that advanced in this batch (`step`).
    pub advanced: Option<u64>,
    /// Previously unseen pages added in this batch (`step`).
    pub new_pages: Option<u64>,
    /// Harvested page ids in first-retrieval order (`snapshot`).
    pub pages: Option<Vec<u32>>,
    /// Fired queries rendered as text, seed excluded (`snapshot`).
    pub queries: Option<Vec<String>>,
    /// Service-wide counters (`stats`).
    pub stats: Option<StatsBody>,
    /// Known sessions, resident and stored (`list_sessions`).
    pub sessions: Option<Vec<SessionEntryBody>>,
    /// Full metrics-registry snapshot (`metrics` with `format: "json"`).
    pub metrics: Option<serde_json::Value>,
    /// Prometheus-style text exposition (`metrics` with `format: "text"`).
    pub metrics_text: Option<String>,
    /// Name of the shard that served a routed session op (router only).
    pub shard: Option<String>,
    /// Fleet topology + per-shard health (`fleet_status`, router only).
    pub fleet: Option<FleetStatusBody>,
    /// Sessions moved by a `drain_shard`/`migrate` (router only).
    pub migrated: Option<u64>,
    /// Shards cycled by a `rolling_restart` (router only).
    pub restarted: Option<u64>,
    /// Supervised child processes (`supervisor_status`, router only).
    pub supervised: Option<Vec<SupervisedShardBody>>,
    /// The trace id assigned to (or fetched by) this request, when the
    /// request was traced or used the `trace` op.
    pub trace_id: Option<u64>,
    /// Span records of the fetched trace(s) (`trace` op).
    pub spans: Option<Vec<SpanBody>>,
}

/// One span of a `trace` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SpanBody {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// Parent span, absent for a root.
    pub parent_span_id: Option<u64>,
    /// Span name (`router_dispatch`, `harvest_step`, ...).
    pub name: String,
    /// Rendered labels, `k=v` space-joined (absent when unlabeled).
    pub labels: Option<String>,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_unix_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// `"ok"` unless marked otherwise by the recording site.
    pub status: String,
    /// Which process recorded the span: a shard id, or `"router"`.
    pub source: Option<String>,
}

impl SpanBody {
    /// Wire form of a recorded span, stamped with the recording process's
    /// identity (`--shard-id`, or `"router"`).
    pub fn from_record(rec: &l2q_obs::SpanRecord, source: &str) -> Self {
        let labels = if rec.labels.is_empty() {
            None
        } else {
            Some(
                rec.labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        };
        Self {
            trace_id: rec.trace_id,
            span_id: rec.span_id,
            parent_span_id: rec.parent_span_id,
            name: rec.name.to_string(),
            labels,
            start_unix_ns: rec.start_unix_ns,
            dur_ns: rec.dur_ns,
            status: rec.status.to_string(),
            source: Some(source.to_string()),
        }
    }
}

/// One row of a `list_sessions` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SessionEntryBody {
    /// Session id.
    pub session: u64,
    /// Whether the session is resident in memory (vs stored-only).
    pub resident: bool,
    /// Steps taken (omitted for stored-only or mid-step sessions).
    pub steps_taken: Option<u64>,
    /// Pages gathered (omitted for stored-only or mid-step sessions).
    pub gathered: Option<u64>,
    /// `"running"` / `"finished:<reason>"` (omitted when unknown).
    pub state: Option<String>,
    /// Restorability class: `"resident"` / `"stored"` / `"failed"`.
    /// Lets router failover and operators tell restorable sessions from
    /// terminally failed ones. (`resident`/`state` stay for backward
    /// compat; absent when talking to a pre-fleet server.)
    pub health: Option<String>,
}

impl From<&crate::session::SessionEntry> for SessionEntryBody {
    fn from(e: &crate::session::SessionEntry) -> Self {
        Self {
            session: e.id,
            resident: e.resident,
            steps_taken: e.steps_taken,
            gathered: e.gathered,
            state: e.state.clone(),
            health: Some(e.health.clone()),
        }
    }
}

/// Payload of a router `fleet_status` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FleetStatusBody {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u64,
    /// One row per registered shard.
    pub shards: Vec<ShardStatusBody>,
}

/// One shard row of a `fleet_status` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardStatusBody {
    /// Shard name (stable ring identity).
    pub name: String,
    /// `host:port` the shard serves on.
    pub addr: String,
    /// `"healthy"` / `"suspect"` / `"dead"` / `"draining"`.
    pub health: String,
    /// Resident sessions on the shard (absent when unreachable).
    pub active_sessions: Option<u64>,
}

/// One row of a router `supervisor_status` response: a shard child
/// process under supervision.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SupervisedShardBody {
    /// Shard name (stable ring identity).
    pub name: String,
    /// `host:port` the child serves on.
    pub addr: String,
    /// OS pid of the running child (absent while down / breaker open).
    pub pid: Option<u64>,
    /// Times the supervisor respawned this child.
    pub restarts: u64,
    /// Consecutive rapid crashes (resets after a stable run).
    pub crash_streak: u64,
    /// Whether the crash-loop circuit breaker gave up on this child.
    pub breaker_open: bool,
    /// Shard health as the router sees it (`"healthy"` / ... ).
    pub health: String,
    /// Last observed exit status, e.g. `"exit code 1"` / `"signal 9"`.
    pub last_exit: Option<String>,
    /// Milliseconds until the next respawn attempt, when backing off.
    pub next_respawn_ms: Option<u64>,
}

/// Payload of a `stats` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Live sessions.
    pub active_sessions: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions closed by clients.
    pub sessions_closed: u64,
    /// Sessions evicted for idleness.
    pub sessions_evicted: u64,
    /// Selector iterations executed.
    pub steps_executed: u64,
    /// Queries fired (seeds + steps).
    pub queries_fired: u64,
    /// Step jobs rejected for backpressure.
    pub jobs_rejected: u64,
    /// Jobs waiting in the scheduler queue.
    pub queue_depth: u64,
    /// Worker threads.
    pub workers: u64,
    /// Retrieval-cache hits.
    pub retrieval_cache_hits: u64,
    /// Retrieval-cache misses.
    pub retrieval_cache_misses: u64,
    /// hits / (hits + misses), 0 when empty.
    pub retrieval_cache_hit_rate: f64,
    /// Domain-solve cache hits.
    pub domain_cache_hits: u64,
    /// Domain-solve cache misses.
    pub domain_cache_misses: u64,
    /// Whether the server runs with a durable store (`--data-dir`).
    pub store_enabled: bool,
    /// Sessions spilled to the durable store.
    pub sessions_spilled: u64,
    /// Sessions restored from the durable store.
    pub sessions_restored: u64,
    /// Idle evictions refused to avoid data loss (no store).
    pub eviction_refusals: u64,
    /// The serving shard's `--shard-id`, when it runs as a fleet member.
    pub shard_id: Option<String>,
}

/// Render a stop reason for the `state` field.
pub fn state_string(finished: Option<StopReason>) -> String {
    match finished {
        None => "running".into(),
        Some(reason) => format!("finished:{}", reason.as_str()),
    }
}

/// The `state` string for a full status: `"failed"` dominates (a session
/// whose step batch panicked is terminal regardless of its stop reason).
pub fn session_state_string(status: &SessionStatus) -> String {
    if status.failed.is_some() {
        "failed".into()
    } else {
        state_string(status.finished)
    }
}

impl Response {
    /// A bare success.
    pub fn ok() -> Self {
        Self {
            ok: true,
            ..Self::default()
        }
    }

    /// A failure carrying the error text (and retry hint on overload).
    pub fn err(e: &ServiceError) -> Self {
        Self {
            ok: false,
            error: Some(e.to_string()),
            retry_after_ms: match e {
                ServiceError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                _ => None,
            },
            ..Self::default()
        }
    }

    /// A success describing a session's status.
    pub fn from_status(status: &SessionStatus, aspect_name: &str) -> Self {
        Self {
            ok: true,
            session: Some(status.id),
            state: Some(session_state_string(status)),
            entity: Some(status.entity.0),
            aspect: Some(aspect_name.to_string()),
            steps_taken: Some(status.steps_taken as u64),
            gathered: Some(status.gathered as u64),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let mut req = Request::op("create");
        req.entity = Some(7);
        req.aspect = Some("RESEARCH".into());
        req.selector = Some("l2qbal".into());
        req.domain_size = Some(4);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.op, "create");
        assert_eq!(back.entity, Some(7));
        assert_eq!(back.aspect.as_deref(), Some("RESEARCH"));
        assert_eq!(back.selector.as_deref(), Some("l2qbal"));
        assert_eq!(back.n_queries, None);
        assert_eq!(back.domain_size, Some(4));
    }

    #[test]
    fn missing_optional_fields_deserialize_to_none() {
        let back: Request = serde_json::from_str(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(back.op, "ping");
        assert_eq!(back.session, None);
        assert_eq!(back.steps, None);
    }

    #[test]
    fn overload_response_carries_retry_hint() {
        let resp = Response::err(&ServiceError::Overloaded { retry_after_ms: 25 });
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.retry_after_ms, Some(25));
        assert!(back.error.unwrap().contains("retry"));
    }

    #[test]
    fn request_id_and_deadline_roundtrip() {
        let mut req = Request::for_session("step", 3);
        req.request_id = Some(41);
        req.deadline_ms = Some(250);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.request_id, Some(41));
        assert_eq!(back.deadline_ms, Some(250));
        // Absent on the wire stays absent.
        let bare: Request = serde_json::from_str(r#"{"op":"step","session":3}"#).unwrap();
        assert_eq!(bare.request_id, None);
        assert_eq!(bare.deadline_ms, None);

        let mut resp = Response::ok();
        resp.request_id = Some(41);
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.request_id, Some(41));
    }

    #[test]
    fn deadline_error_renders_and_failed_state_dominates() {
        let resp = Response::err(&ServiceError::Deadline { deadline_ms: 50 });
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("deadline"));

        let mut status = SessionStatus {
            id: 1,
            entity: l2q_corpus::EntityId(0),
            aspect: l2q_corpus::AspectId(0),
            steps_taken: 2,
            gathered: 3,
            finished: None,
            failed: Some("boom".into()),
        };
        assert_eq!(session_state_string(&status), "failed");
        status.failed = None;
        assert_eq!(session_state_string(&status), "running");
    }

    #[test]
    fn trace_fields_roundtrip_exactly() {
        // Ids are 48-bit by construction so they survive JSON's f64.
        let tid = l2q_obs::trace::next_id();
        let mut req = Request::for_session("step", 3);
        req.trace = Some(true);
        req.trace_id = Some(tid);
        req.parent_span_id = Some(0x1234_5678_9abc);
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back.trace, Some(true));
        assert_eq!(back.trace_id, Some(tid));
        assert_eq!(back.parent_span_id, Some(0x1234_5678_9abc));
        let bare: Request = serde_json::from_str(r#"{"op":"step","session":3}"#).unwrap();
        assert_eq!(bare.trace, None);
        assert_eq!(bare.trace_id, None);

        let mut resp = Response::ok();
        resp.trace_id = Some(tid);
        resp.spans = Some(vec![SpanBody {
            trace_id: tid,
            span_id: 7,
            parent_span_id: None,
            name: "harvest_step".into(),
            labels: Some("op=step".into()),
            start_unix_ns: 1_700_000_000_000_000_000,
            dur_ns: 1234,
            status: "ok".into(),
            source: Some("alpha".into()),
        }]);
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.trace_id, Some(tid));
        let spans = back.spans.unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "harvest_step");
        assert_eq!(spans[0].parent_span_id, None);
        assert_eq!(spans[0].source.as_deref(), Some("alpha"));
    }

    #[test]
    fn span_body_from_record_renders_labels() {
        let rec = l2q_obs::SpanRecord {
            trace_id: 1,
            span_id: 2,
            parent_span_id: Some(3),
            name: "router_forward",
            labels: vec![
                ("shard".into(), "alpha".into()),
                ("op".into(), "step".into()),
            ],
            start_unix_ns: 10,
            dur_ns: 20,
            status: "ok",
        };
        let body = SpanBody::from_record(&rec, "router");
        assert_eq!(body.labels.as_deref(), Some("shard=alpha op=step"));
        assert_eq!(body.source.as_deref(), Some("router"));
        assert_eq!(body.parent_span_id, Some(3));
    }

    #[test]
    fn state_strings_cover_every_stop_reason() {
        assert_eq!(state_string(None), "running");
        assert_eq!(
            state_string(Some(StopReason::BudgetExhausted)),
            "finished:budget_exhausted"
        );
        assert_eq!(
            state_string(Some(StopReason::SelectorExhausted)),
            "finished:selector_exhausted"
        );
        assert_eq!(
            state_string(Some(StopReason::BarrenBudget)),
            "finished:barren_budget"
        );
    }
}
