//! # l2q-service — concurrent multi-session harvest serving
//!
//! The batch crates answer "run one harvest to completion". This crate
//! answers "serve many harvests at once over one corpus": a session
//! manager tracks live (entity, aspect, selector) harvests, a fixed
//! worker pool executes their steps from a bounded queue, every session
//! reads one shared [`ServingBundle`] (corpus + index + oracle behind a
//! single `Arc`), and a line-delimited JSON protocol over TCP exposes the
//! whole thing (`l2q-serve` / `l2q-client` binaries).
//!
//! Layers, bottom-up:
//!
//! * [`bundle`] — the immutable shared substrate plus two memoization
//!   layers: a sharded LRU cache of retrieval results and memoized
//!   domain-phase solves keyed by entity set.
//! * [`session`] — per-harvest lifecycle (create → step* → snapshot →
//!   close), budgets, idle-timeout eviction.
//! * [`scheduler`] — the crossbeam worker pool; a full queue rejects
//!   with a retry hint instead of buffering unboundedly, and a panicking
//!   step batch fails only its own session (the worker survives).
//! * [`framing`] — bounded, timeout-tolerant line framing shared by both
//!   ends of the wire.
//! * [`proto`] / [`server`] / [`client`] — the wire front end, hardened
//!   against slow, oversized, and misbehaving peers (see `server` docs).
//!
//! Concurrency does not change harvest outcomes: sessions only share
//! immutable state and caches whose hits are bit-identical to their
//! misses, so a session's gathered pages match a single-threaded
//! [`l2q_core::Harvester`] run with the same inputs exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod client;
pub mod framing;
pub mod proto;
pub mod reactor;
pub mod scheduler;
pub mod server;
pub mod session;

pub use bundle::{BundleConfig, DomainCache, ServingBundle};
pub use client::{Client, ClientConfig, ClientError};
pub use framing::{Frame, LineBuffer, LineReader, ReadOutcome};
pub use proto::{
    FleetStatusBody, Request, Response, SessionEntryBody, ShardStatusBody, StatsBody,
    SupervisedShardBody,
};
pub use scheduler::Scheduler;
pub use server::{HarvestServer, ServeMode, ServerConfig, ServerHandle};
pub use session::{
    SelectorKind, ServiceError, ServiceMetrics, Session, SessionEntry, SessionManager, SessionSpec,
    SessionStatus, StepReport,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time audit that every type shared across server threads is
    /// `Send + Sync` — the properties the `Arc`-based serving design
    /// depends on (no `Rc`, no `RefCell`, no thread-bound interior state
    /// anywhere in the shared graph).
    #[test]
    fn shared_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}

        // Upstream building blocks.
        assert_send_sync::<l2q_corpus::Corpus>();
        assert_send_sync::<l2q_retrieval::SearchEngine>();
        assert_send_sync::<l2q_retrieval::ShardedQueryCache>();
        assert_send_sync::<l2q_aspect::AspectModel>();
        assert_send_sync::<l2q_aspect::RelevanceOracle>();
        assert_send_sync::<l2q_core::DomainModel>();

        // Service layers.
        assert_send_sync::<ServingBundle>();
        assert_send_sync::<DomainCache>();
        // A session owns its selector (`Box<dyn QuerySelector>`, `Send`
        // but deliberately not `Sync`); it crosses threads only inside
        // `Arc<Mutex<_>>`, which needs exactly `Send`.
        assert_send::<Session>();
        assert_send_sync::<SessionManager>();
        assert_send_sync::<Scheduler>();
        assert_send_sync::<ServiceMetrics>();
        assert_send_sync::<ServerHandle>();
    }
}
