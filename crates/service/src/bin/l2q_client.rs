//! `l2q-client` — drive a running harvest server from the command line.
//!
//! ```text
//! l2q-client --addr HOST:PORT ping
//! l2q-client --addr HOST:PORT harvest --entity N --aspect NAME
//!            [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
//! l2q-client --addr HOST:PORT create --entity N --aspect NAME [...]
//! l2q-client --addr HOST:PORT step --session ID [--steps N]
//! l2q-client --addr HOST:PORT snapshot --session ID
//! l2q-client --addr HOST:PORT persist --session ID
//! l2q-client --addr HOST:PORT restore --session ID
//! l2q-client --addr HOST:PORT sessions
//! l2q-client --addr HOST:PORT stats
//! l2q-client --addr HOST:PORT metrics [--json]
//! l2q-client --addr HOST:PORT shutdown
//! ```
//!
//! `harvest` runs one full session — create, step until finished,
//! snapshot, close — and prints the fired queries and harvested pages.
//! The `create`/`step`/`snapshot` commands expose the same session ops
//! individually, leaving the session open between invocations (pair with
//! a server running `--data-dir` to survive restarts); `persist`,
//! `restore`, and `sessions` drive the durable store directly.
//! `metrics` prints the server's metrics registry as Prometheus-style
//! text (or the full JSON snapshot with `--json`).

use l2q_service::Client;
use std::process::ExitCode;

const USAGE: &str = "\
l2q-client — wire client for l2q-serve

USAGE:
  l2q-client --addr HOST:PORT ping
  l2q-client --addr HOST:PORT harvest --entity N --aspect NAME
             [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
  l2q-client --addr HOST:PORT create --entity N --aspect NAME
             [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
  l2q-client --addr HOST:PORT step --session ID [--steps N]
  l2q-client --addr HOST:PORT snapshot --session ID
  l2q-client --addr HOST:PORT persist --session ID
  l2q-client --addr HOST:PORT restore --session ID
  l2q-client --addr HOST:PORT sessions
  l2q-client --addr HOST:PORT stats
  l2q-client --addr HOST:PORT metrics [--json]
  l2q-client --addr HOST:PORT shutdown
";

fn parse(key: &str, args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(key: &str, args: &[String]) -> Result<Option<T>, String> {
    match parse(key, args) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let addr = parse("--addr", &args).ok_or("--addr is required")?;
    let command = args
        .iter()
        .find(|a| {
            matches!(
                a.as_str(),
                "ping"
                    | "harvest"
                    | "create"
                    | "step"
                    | "snapshot"
                    | "persist"
                    | "restore"
                    | "sessions"
                    | "stats"
                    | "metrics"
                    | "shutdown"
            )
        })
        .cloned()
        .ok_or(
            "missing command (ping|harvest|create|step|snapshot|persist|restore|sessions|stats|metrics|shutdown)",
        )?;

    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    match command.as_str() {
        "ping" => {
            client
                .request(&l2q_service::Request::op("ping"))
                .map_err(|e| e.to_string())?;
            println!("pong");
        }
        "harvest" => {
            let entity: u32 = parse_num("--entity", &args)?.ok_or("--entity is required")?;
            let aspect = parse("--aspect", &args).ok_or("--aspect is required")?;
            let selector = parse("--selector", &args).unwrap_or_else(|| "l2qbal".into());
            let n_queries: Option<u32> = parse_num("--queries", &args)?;
            let domain_size: u32 = parse_num("--domain-size", &args)?.unwrap_or(0);

            let session = client
                .create(entity, &aspect, &selector, n_queries, domain_size)
                .map_err(|e| e.to_string())?;
            loop {
                let resp = client.step(session, 8, 40).map_err(|e| e.to_string())?;
                let state = resp.state.as_deref().unwrap_or("running");
                if state != "running" {
                    println!(
                        "{state}: {} queries, {} pages",
                        resp.steps_taken.unwrap_or(0),
                        resp.gathered.unwrap_or(0)
                    );
                    break;
                }
            }
            let snap = client.snapshot(session).map_err(|e| e.to_string())?;
            for q in snap.queries.unwrap_or_default() {
                println!("query: {q}");
            }
            println!("pages: {:?}", snap.pages.unwrap_or_default());
            client.close(session).map_err(|e| e.to_string())?;
        }
        "create" => {
            let entity: u32 = parse_num("--entity", &args)?.ok_or("--entity is required")?;
            let aspect = parse("--aspect", &args).ok_or("--aspect is required")?;
            let selector = parse("--selector", &args).unwrap_or_else(|| "l2qbal".into());
            let n_queries: Option<u32> = parse_num("--queries", &args)?;
            let domain_size: u32 = parse_num("--domain-size", &args)?.unwrap_or(0);
            let session = client
                .create(entity, &aspect, &selector, n_queries, domain_size)
                .map_err(|e| e.to_string())?;
            println!("session: {session}");
        }
        "step" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let steps: u32 = parse_num("--steps", &args)?.unwrap_or(1);
            let resp = client.step(session, steps, 40).map_err(|e| e.to_string())?;
            println!(
                "{}: {} queries, {} pages (+{} steps, +{} pages)",
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0),
                resp.advanced.unwrap_or(0),
                resp.new_pages.unwrap_or(0),
            );
        }
        "snapshot" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let snap = client.snapshot(session).map_err(|e| e.to_string())?;
            for q in snap.queries.unwrap_or_default() {
                println!("query: {q}");
            }
            println!("pages: {:?}", snap.pages.unwrap_or_default());
        }
        "persist" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let resp = client.persist(session).map_err(|e| e.to_string())?;
            println!(
                "persisted session {session}: {} queries, {} pages",
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0)
            );
        }
        "restore" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let resp = client.restore(session).map_err(|e| e.to_string())?;
            println!(
                "restored session {session}: {}: {} queries, {} pages",
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0)
            );
        }
        "sessions" => {
            let resp = client.list_sessions().map_err(|e| e.to_string())?;
            let entries = resp.sessions.unwrap_or_default();
            if entries.is_empty() {
                println!("no sessions");
            }
            for e in entries {
                let place = if e.resident { "resident" } else { "stored" };
                match (e.steps_taken, e.gathered, e.state.as_deref()) {
                    (Some(steps), Some(pages), Some(state)) => println!(
                        "session {}: {place} {state} {steps} queries {pages} pages",
                        e.session
                    ),
                    _ => println!("session {}: {place}", e.session),
                }
            }
        }
        "stats" => {
            let resp = client.stats().map_err(|e| e.to_string())?;
            let body = serde_json::to_string_pretty(&resp.stats.unwrap_or_default())
                .map_err(|e| e.to_string())?;
            println!("{body}");
        }
        "metrics" => {
            if args.iter().any(|a| a == "--json") {
                let resp = client.metrics("json").map_err(|e| e.to_string())?;
                let body = resp.metrics.ok_or("metrics response missing body")?;
                println!(
                    "{}",
                    serde_json::to_string_pretty(&body).map_err(|e| e.to_string())?
                );
            } else {
                let resp = client.metrics("text").map_err(|e| e.to_string())?;
                print!("{}", resp.metrics_text.unwrap_or_default());
            }
        }
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server shutting down");
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
