//! `l2q-client` — drive a running harvest server from the command line.
//!
//! ```text
//! l2q-client --addr HOST:PORT ping
//! l2q-client --addr HOST:PORT harvest --entity N --aspect NAME
//!            [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
//! l2q-client --addr HOST:PORT create --entity N --aspect NAME [...]
//! l2q-client --addr HOST:PORT step --session ID [--steps N] [--trace]
//! l2q-client --addr HOST:PORT status --session ID
//! l2q-client --addr HOST:PORT snapshot --session ID
//! l2q-client --addr HOST:PORT persist --session ID
//! l2q-client --addr HOST:PORT restore --session ID
//! l2q-client --addr HOST:PORT sessions
//! l2q-client --addr HOST:PORT stats
//! l2q-client --addr HOST:PORT metrics [--json] [--local]
//! l2q-client --addr HOST:PORT trace --id TRACE_ID
//! l2q-client --addr HOST:PORT trace --slow|--recent [--limit N]
//! l2q-client --addr HOST:PORT probe [--battery all|oversized|garbage|panic|deadline|slowloris|capacity]
//!            [--line-bytes N] [--connections N] [--slow-conns N] [--hold-ms MS]
//! l2q-client --addr HOST:PORT shutdown
//! l2q-client --router HOST:PORT fleet status
//! l2q-client --router HOST:PORT fleet join --shard NAME --shard-addr HOST:PORT
//! l2q-client --router HOST:PORT fleet drain --shard NAME
//! l2q-client --router HOST:PORT fleet migrate --session ID [--target NAME]
//! l2q-client --router HOST:PORT fleet rolling-restart
//! l2q-client --router HOST:PORT fleet supervise
//! ```
//!
//! `--router` is an alias for `--addr`: an `l2q-router` front door speaks
//! the same protocol, so every command above works against a fleet
//! unchanged (routed responses additionally name the serving shard). The
//! `fleet` subcommands drive the router's admin ops: topology + health,
//! runtime shard join, drain (migrate everything off a shard), and live
//! migration of one session.
//!
//! `harvest` runs one full session — create, step until finished,
//! snapshot, close — and prints the fired queries and harvested pages.
//! The `create`/`step`/`snapshot` commands expose the same session ops
//! individually, leaving the session open between invocations (pair with
//! a server running `--data-dir` to survive restarts); `persist`,
//! `restore`, and `sessions` drive the durable store directly.
//! `metrics` prints the server's metrics registry as Prometheus-style
//! text (or the full JSON snapshot with `--json`). Against a `--router`
//! target, `metrics` defaults to the fleet-merged plane (`fleet_metrics`
//! op: counters/gauges per shard, histograms merged for fleet
//! percentiles); `--local` asks for the router's own registry instead.
//!
//! `step --trace` requests a distributed trace for the batch and prints
//! the trace id; `trace --id` fetches that trace (stitched across the
//! router and every shard when the target is a router) and renders it as
//! an indented duration tree. `trace --slow`/`--recent` list the slowest
//! root spans / newest spans in the target's ring buffer.
//!
//! `probe` runs adversarial batteries against a live server and fails
//! loudly if the server mishandles any of them: an oversized request
//! line must come back as a polite `ok:false` (not a hang or an OOM),
//! garbage before valid JSON must not poison the connection, a
//! panic-injected session must fail terminally while the server keeps
//! serving, a missed deadline must return a deadline error, and
//! connections past `--connections` must be refused with
//! `"server at capacity"`.

use l2q_service::Client;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
l2q-client — wire client for l2q-serve

USAGE:
  l2q-client --addr HOST:PORT ping
  l2q-client --addr HOST:PORT harvest --entity N --aspect NAME
             [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
  l2q-client --addr HOST:PORT create --entity N --aspect NAME
             [--selector l2qp|l2qr|l2qbal|l2qw=W] [--queries N] [--domain-size N]
  l2q-client --addr HOST:PORT step --session ID [--steps N] [--trace]
  l2q-client --addr HOST:PORT status --session ID
  l2q-client --addr HOST:PORT snapshot --session ID
  l2q-client --addr HOST:PORT persist --session ID
  l2q-client --addr HOST:PORT restore --session ID
  l2q-client --addr HOST:PORT sessions
  l2q-client --addr HOST:PORT stats
  l2q-client --addr HOST:PORT metrics [--json] [--local]
  l2q-client --addr HOST:PORT trace --id TRACE_ID
  l2q-client --addr HOST:PORT trace --slow|--recent [--limit N]
  l2q-client --addr HOST:PORT probe [--battery all|oversized|garbage|panic|deadline|slowloris|capacity]
             [--line-bytes N] [--connections N] [--slow-conns N] [--hold-ms MS]
  l2q-client --addr HOST:PORT shutdown
  l2q-client --router HOST:PORT fleet status
  l2q-client --router HOST:PORT fleet join --shard NAME --shard-addr HOST:PORT
  l2q-client --router HOST:PORT fleet drain --shard NAME
  l2q-client --router HOST:PORT fleet migrate --session ID [--target NAME]
  l2q-client --router HOST:PORT fleet rolling-restart
  l2q-client --router HOST:PORT fleet supervise

`--router` is an alias for `--addr` (any command works against an
l2q-router front door; `fleet` subcommands need one). Against a
`--router` target, `metrics` shows the fleet-merged plane by default;
pass `--local` for the router's own registry. `step --trace` prints a
trace id for `trace --id` (stitched across router and shards).
";

fn parse(key: &str, args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(key: &str, args: &[String]) -> Result<Option<T>, String> {
    match parse(key, args) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let addr = parse("--addr", &args)
        .or_else(|| parse("--router", &args))
        .ok_or("--addr (or --router) is required")?;
    let command = args
        .iter()
        .find(|a| {
            matches!(
                a.as_str(),
                "ping"
                    | "harvest"
                    | "create"
                    | "step"
                    | "status"
                    | "snapshot"
                    | "persist"
                    | "restore"
                    | "sessions"
                    | "stats"
                    | "metrics"
                    | "trace"
                    | "probe"
                    | "fleet"
                    | "shutdown"
            )
        })
        .cloned()
        .ok_or(
            "missing command (ping|harvest|create|step|status|snapshot|persist|restore|sessions|stats|metrics|trace|probe|fleet|shutdown)",
        )?;

    if command == "probe" {
        return run_probes(&addr, &args);
    }

    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    match command.as_str() {
        "ping" => {
            client
                .request(&l2q_service::Request::op("ping"))
                .map_err(|e| e.to_string())?;
            println!("pong");
        }
        "harvest" => {
            let entity: u32 = parse_num("--entity", &args)?.ok_or("--entity is required")?;
            let aspect = parse("--aspect", &args).ok_or("--aspect is required")?;
            let selector = parse("--selector", &args).unwrap_or_else(|| "l2qbal".into());
            let n_queries: Option<u32> = parse_num("--queries", &args)?;
            let domain_size: u32 = parse_num("--domain-size", &args)?.unwrap_or(0);

            let session = client
                .create(entity, &aspect, &selector, n_queries, domain_size)
                .map_err(|e| e.to_string())?;
            loop {
                let resp = client.step(session, 8, 40).map_err(|e| e.to_string())?;
                let state = resp.state.as_deref().unwrap_or("running");
                if state != "running" {
                    println!(
                        "{state}: {} queries, {} pages",
                        resp.steps_taken.unwrap_or(0),
                        resp.gathered.unwrap_or(0)
                    );
                    break;
                }
            }
            let snap = client.snapshot(session).map_err(|e| e.to_string())?;
            for q in snap.queries.unwrap_or_default() {
                println!("query: {q}");
            }
            println!("pages: {:?}", snap.pages.unwrap_or_default());
            client.close(session).map_err(|e| e.to_string())?;
        }
        "create" => {
            let entity: u32 = parse_num("--entity", &args)?.ok_or("--entity is required")?;
            let aspect = parse("--aspect", &args).ok_or("--aspect is required")?;
            let selector = parse("--selector", &args).unwrap_or_else(|| "l2qbal".into());
            let n_queries: Option<u32> = parse_num("--queries", &args)?;
            let domain_size: u32 = parse_num("--domain-size", &args)?.unwrap_or(0);
            let session = client
                .create(entity, &aspect, &selector, n_queries, domain_size)
                .map_err(|e| e.to_string())?;
            println!("session: {session}");
        }
        "step" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let steps: u32 = parse_num("--steps", &args)?.unwrap_or(1);
            let traced = args.iter().any(|a| a == "--trace");
            let resp = if traced {
                client.step_traced(session, steps, 40)
            } else {
                client.step(session, steps, 40)
            }
            .map_err(|e| e.to_string())?;
            println!(
                "{}: {} queries, {} pages (+{} steps, +{} pages){}",
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0),
                resp.advanced.unwrap_or(0),
                resp.new_pages.unwrap_or(0),
                shard_suffix(&resp),
            );
            if let Some(tid) = resp.trace_id {
                println!("trace: {:#x}", tid);
            } else if traced {
                println!("trace: none (server did not echo a trace id)");
            }
        }
        "status" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let resp = client.status(session).map_err(|e| e.to_string())?;
            println!(
                "session {session}: {} {} queries, {} pages{}",
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0),
                shard_suffix(&resp),
            );
        }
        "snapshot" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let snap = client.snapshot(session).map_err(|e| e.to_string())?;
            for q in snap.queries.unwrap_or_default() {
                println!("query: {q}");
            }
            println!("pages: {:?}", snap.pages.unwrap_or_default());
        }
        "persist" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let resp = client.persist(session).map_err(|e| e.to_string())?;
            println!(
                "persisted session {session}: {} queries, {} pages",
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0)
            );
        }
        "restore" => {
            let session: u64 = parse_num("--session", &args)?.ok_or("--session is required")?;
            let resp = client.restore(session).map_err(|e| e.to_string())?;
            println!(
                "restored session {session}: {}: {} queries, {} pages",
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0)
            );
        }
        "sessions" => {
            let resp = client.list_sessions().map_err(|e| e.to_string())?;
            let entries = resp.sessions.unwrap_or_default();
            if entries.is_empty() {
                println!("no sessions");
            }
            for e in entries {
                // Prefer the restorability class from fleet-aware servers;
                // fall back to the legacy resident flag.
                let place = e
                    .health
                    .clone()
                    .unwrap_or_else(|| if e.resident { "resident" } else { "stored" }.into());
                match (e.steps_taken, e.gathered, e.state.as_deref()) {
                    (Some(steps), Some(pages), Some(state)) => println!(
                        "session {}: {place} {state} {steps} queries {pages} pages",
                        e.session
                    ),
                    _ => println!("session {}: {place}", e.session),
                }
            }
        }
        "fleet" => {
            let sub = args
                .iter()
                .position(|a| a == "fleet")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .ok_or("fleet needs a subcommand (status|join|drain|migrate|rolling-restart|supervise)")?;
            run_fleet(&mut client, &sub, &args)?;
        }
        "stats" => {
            let resp = client.stats().map_err(|e| e.to_string())?;
            let body = serde_json::to_string_pretty(&resp.stats.unwrap_or_default())
                .map_err(|e| e.to_string())?;
            println!("{body}");
        }
        "metrics" => {
            // A --router target gets the fleet-merged plane by default;
            // --local asks for the target's own registry (the only
            // behavior --addr targets have).
            let fleet = parse("--router", &args).is_some() && !args.iter().any(|a| a == "--local");
            let format = if args.iter().any(|a| a == "--json") {
                "json"
            } else {
                "text"
            };
            let resp = if fleet {
                client.fleet_metrics(format)
            } else {
                client.metrics(format)
            }
            .map_err(|e| e.to_string())?;
            if format == "json" {
                let body = resp.metrics.ok_or("metrics response missing body")?;
                println!(
                    "{}",
                    serde_json::to_string_pretty(&body).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", resp.metrics_text.unwrap_or_default());
            }
        }
        "trace" => run_trace(&mut client, &args)?,
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server shutting down");
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

/// Parse a trace id: hex with an `0x` prefix or plain decimal.
fn parse_trace_id(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("--id expects a trace id (0x hex or decimal), got '{s}'"))
}

/// A span duration, humanized.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

/// One rendered span line (shared by the tree and the flat listings).
fn span_line(s: &l2q_service::proto::SpanBody) -> String {
    let mut line = format!("{} {}", s.name, fmt_dur(s.dur_ns));
    if let Some(src) = s.source.as_deref() {
        line.push_str(&format!(" [{src}]"));
    }
    if let Some(labels) = s.labels.as_deref().filter(|l| !l.is_empty()) {
        line.push_str(&format!(" {{{labels}}}"));
    }
    if s.status != "ok" {
        line.push_str(&format!(" status={}", s.status));
    }
    line
}

/// The `trace` command: fetch one stitched trace (`--id`) and render it
/// as an indented duration tree, or list the slowest roots (`--slow`) /
/// newest spans (`--recent`) from the target's ring buffer.
fn run_trace(client: &mut Client, args: &[String]) -> Result<(), String> {
    let limit: u64 = parse_num("--limit", args)?.unwrap_or(16);
    if args.iter().any(|a| a == "--slow") || args.iter().any(|a| a == "--recent") {
        let slow = args.iter().any(|a| a == "--slow");
        let resp = if slow {
            client.trace_slow(limit)
        } else {
            client.trace_recent(limit)
        }
        .map_err(|e| e.to_string())?;
        let spans = resp.spans.unwrap_or_default();
        if spans.is_empty() {
            println!("no spans buffered");
            return Ok(());
        }
        for s in &spans {
            println!("{:#014x} {}", s.trace_id, span_line(s));
        }
        println!(
            "{} {} span(s); fetch a tree with: trace --id 0x<id>",
            if slow { "slowest" } else { "newest" },
            spans.len()
        );
        return Ok(());
    }
    let id_arg = parse("--id", args).ok_or("trace needs --id TRACE_ID (or --slow/--recent)")?;
    let trace_id = parse_trace_id(&id_arg)?;
    let resp = client.trace_by_id(trace_id).map_err(|e| e.to_string())?;
    let spans = resp.spans.unwrap_or_default();
    if spans.is_empty() {
        return Err(format!(
            "no spans found for trace {trace_id:#x} (ring buffer may have wrapped)"
        ));
    }
    // Index spans and bucket children under their parents. A span whose
    // parent is not in the buffer (wrapped away) renders as an orphan at
    // top level, counted in the summary line.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut top: Vec<usize> = Vec::new();
    let mut roots = 0usize;
    let mut orphans = 0usize;
    for (i, s) in spans.iter().enumerate() {
        match s.parent_span_id {
            None => {
                roots += 1;
                top.push(i);
            }
            Some(p) => match spans.iter().position(|c| c.span_id == p) {
                Some(pi) => children[pi].push(i),
                None => {
                    orphans += 1;
                    top.push(i);
                }
            },
        }
    }
    println!(
        "trace {:#014x}: spans={} roots={} orphans={}",
        trace_id,
        spans.len(),
        roots,
        orphans
    );
    fn render(
        idx: usize,
        depth: usize,
        spans: &[l2q_service::proto::SpanBody],
        children: &[Vec<usize>],
    ) {
        println!("{}{}", "  ".repeat(depth + 1), span_line(&spans[idx]));
        for &c in &children[idx] {
            render(c, depth + 1, spans, children);
        }
    }
    for &i in &top {
        render(i, 0, &spans, &children);
    }
    Ok(())
}

/// ` [shard NAME]` when the response came through a router, else empty.
fn shard_suffix(resp: &l2q_service::Response) -> String {
    resp.shard
        .as_deref()
        .map(|s| format!(" [shard {s}]"))
        .unwrap_or_default()
}

/// The router admin surface: `fleet status|join|drain|migrate`.
fn run_fleet(client: &mut Client, sub: &str, args: &[String]) -> Result<(), String> {
    match sub {
        "status" => {
            let resp = client.fleet_status().map_err(|e| e.to_string())?;
            let fleet = resp.fleet.ok_or("fleet_status response missing body")?;
            println!(
                "fleet: {} shard(s), {} vnodes",
                fleet.shards.len(),
                fleet.vnodes
            );
            for s in fleet.shards {
                match s.active_sessions {
                    Some(n) => println!("  {} at {}: {} ({n} resident)", s.name, s.addr, s.health),
                    None => println!("  {} at {}: {} (unreachable)", s.name, s.addr, s.health),
                }
            }
        }
        "join" => {
            let shard = parse("--shard", args).ok_or("--shard is required")?;
            let addr = parse("--shard-addr", args).ok_or("--shard-addr is required")?;
            client
                .join_shard(&shard, &addr)
                .map_err(|e| e.to_string())?;
            println!("shard {shard} joined at {addr}");
        }
        "drain" => {
            let shard = parse("--shard", args).ok_or("--shard is required")?;
            let resp = client.drain_shard(&shard).map_err(|e| e.to_string())?;
            println!(
                "shard {shard} draining: {} session(s) migrated",
                resp.migrated.unwrap_or(0)
            );
            if let Some(err) = resp.error {
                println!("warning: {err}");
            }
        }
        "migrate" => {
            let session: u64 = parse_num("--session", args)?.ok_or("--session is required")?;
            let target = parse("--target", args);
            let resp = client
                .migrate(session, target.as_deref())
                .map_err(|e| e.to_string())?;
            println!(
                "session {session} migrated to shard {}: {} {} queries, {} pages",
                resp.shard.as_deref().unwrap_or("?"),
                resp.state.as_deref().unwrap_or("running"),
                resp.steps_taken.unwrap_or(0),
                resp.gathered.unwrap_or(0)
            );
        }
        "rolling-restart" => {
            let resp = client.rolling_restart().map_err(|e| e.to_string())?;
            let cycled = resp.restarted.unwrap_or(0);
            if resp.ok {
                println!("rolling restart completed: {cycled} shard(s) cycled");
            } else {
                return Err(format!(
                    "rolling restart {} after {cycled} shard(s): {}",
                    resp.state.as_deref().unwrap_or("failed"),
                    resp.error.unwrap_or_else(|| "unspecified".into())
                ));
            }
        }
        "supervise" => {
            let resp = client.supervisor_status().map_err(|e| e.to_string())?;
            if !resp.ok {
                return Err(resp.error.unwrap_or_else(|| "unspecified".into()));
            }
            let rows = resp.supervised.unwrap_or_default();
            println!("supervisor: {} child(ren)", rows.len());
            for r in rows {
                let pid = r
                    .pid
                    .map(|p| format!("pid {p}"))
                    .unwrap_or_else(|| "down".into());
                let mut extras = format!("{} restarts", r.restarts);
                if r.breaker_open {
                    extras.push_str(", breaker OPEN");
                }
                if let Some(ms) = r.next_respawn_ms {
                    extras.push_str(&format!(", respawn in {ms}ms"));
                }
                if let Some(exit) = r.last_exit {
                    extras.push_str(&format!(", last exit: {exit}"));
                }
                println!(
                    "  {} at {}: {} ({}; {})",
                    r.name, r.addr, r.health, pid, extras
                );
            }
        }
        other => {
            return Err(format!(
                "unknown fleet subcommand '{other}' \
                 (status|join|drain|migrate|rolling-restart|supervise)"
            ))
        }
    }
    Ok(())
}

/// Read one newline-terminated response off a raw socket (bounded wait).
fn read_raw_line(stream: &mut TcpStream, timeout: Duration) -> Result<String, String> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed before a response line".into()),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    return Ok(String::from_utf8_lossy(&buf[..pos]).into_owned());
                }
                if buf.len() > 1 << 20 {
                    return Err("response line unreasonably large".into());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err("timed out waiting for a response line".into())
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// An oversized request line must get a polite `ok:false` (and a close),
/// not a hang, an OOM, or a reset that eats the error.
fn probe_oversized(addr: &str, line_bytes: usize) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut line = vec![b'x'; line_bytes];
    line.push(b'\n');
    stream.write_all(&line).map_err(|e| e.to_string())?;
    let resp = read_raw_line(&mut stream, Duration::from_secs(10))?;
    if resp.contains("\"ok\":false") && resp.contains("exceeds") {
        println!("probe oversized: ok ({line_bytes}-byte line refused politely)");
        Ok(())
    } else {
        Err(format!("oversized probe got unexpected response: {resp}"))
    }
}

/// Garbage before valid JSON must produce a bad-request error without
/// poisoning the connection for the valid request that follows.
fn probe_garbage(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(b"this is not json\n")
        .map_err(|e| e.to_string())?;
    let first = read_raw_line(&mut stream, Duration::from_secs(10))?;
    if !first.contains("\"ok\":false") || !first.contains("bad request") {
        return Err(format!("garbage line got unexpected response: {first}"));
    }
    stream
        .write_all(b"{\"op\":\"ping\",\"request_id\":7}\n")
        .map_err(|e| e.to_string())?;
    let second = read_raw_line(&mut stream, Duration::from_secs(10))?;
    if second.contains("\"ok\":true") && second.contains("\"request_id\":7") {
        println!("probe garbage: ok (bad request reported, connection stayed usable)");
        Ok(())
    } else {
        Err(format!(
            "ping after garbage got unexpected response: {second}"
        ))
    }
}

/// A panic-injected session must fail terminally while the server keeps
/// answering (the worker pool survives the panic).
fn probe_panic(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let session = client
        .create(0, "RESEARCH", "panic", Some(4), 0)
        .map_err(|e| format!("create with panic selector failed: {e}"))?;
    match client.step(session, 1, 0) {
        Err(e) if e.to_string().contains("failed") => {}
        other => {
            return Err(format!(
                "panic step expected a session-failed error, got {other:?}"
            ))
        }
    }
    let status = client.status(session).map_err(|e| e.to_string())?;
    if status.state.as_deref() != Some("failed") {
        return Err(format!("panicked session state: {:?}", status.state));
    }
    // The server must still be healthy enough to run a real harvest.
    let healthy = client
        .create(1, "RESEARCH", "l2qbal", Some(2), 0)
        .map_err(|e| format!("create after panic failed: {e}"))?;
    client
        .step(healthy, 4, 10)
        .map_err(|e| format!("step after panic failed: {e}"))?;
    println!("probe panic: ok (session failed terminally, server survived)");
    Ok(())
}

/// A step batch that outlives its deadline must return a deadline error
/// while the batch finishes in the background.
fn probe_deadline(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let session = client
        .create(2, "RESEARCH", "sleep=400", Some(4), 0)
        .map_err(|e| format!("create with sleep selector failed: {e}"))?;
    match client.step_with_deadline(session, 1, 0, 50) {
        Err(e) if e.to_string().contains("deadline") => {
            println!("probe deadline: ok (50ms deadline cut a 400ms batch short)");
            Ok(())
        }
        other => Err(format!(
            "deadline step expected a deadline error, got {other:?}"
        )),
    }
}

/// Slowloris: a herd of byte-at-a-time writers hold connections open
/// for seconds. The server must keep answering fresh clients promptly
/// the whole time — no serving thread may sit pinned on a slow reader —
/// and every dribbled request must still complete correctly once its
/// newline finally lands.
fn probe_slowloris(addr: &str, conns: usize, hold_ms: u64) -> Result<(), String> {
    let request = b"{\"op\":\"ping\",\"request_id\":41}\n";
    let pause = Duration::from_millis((hold_ms / request.len() as u64).max(1));
    let mut writers = Vec::new();
    for _ in 0..conns {
        let addr = addr.to_owned();
        writers.push(std::thread::spawn(move || -> Result<(), String> {
            let mut stream = TcpStream::connect(&addr).map_err(|e| e.to_string())?;
            for &b in request.iter() {
                stream.write_all(&[b]).map_err(|e| e.to_string())?;
                std::thread::sleep(pause);
            }
            let resp = read_raw_line(&mut stream, Duration::from_secs(10))?;
            if resp.contains("\"ok\":true") && resp.contains("\"request_id\":41") {
                Ok(())
            } else {
                Err(format!("dribbled ping got unexpected response: {resp}"))
            }
        }));
    }

    // While the herd dribbles, a well-behaved client must see prompt
    // service: the slow sockets are parked on readiness, not holding a
    // thread each out of the serving path.
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let held_until = std::time::Instant::now() + Duration::from_millis(hold_ms);
    let mut pings = 0u32;
    let mut worst = Duration::ZERO;
    while std::time::Instant::now() < held_until {
        let started = std::time::Instant::now();
        client
            .request(&l2q_service::Request::op("ping"))
            .map_err(|e| format!("ping starved behind {conns} slow writers: {e}"))?;
        worst = worst.max(started.elapsed());
        pings += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    if worst > Duration::from_secs(2) {
        return Err(format!(
            "service degraded under slowloris: worst ping took {worst:?}"
        ));
    }

    for w in writers {
        w.join().map_err(|_| "slow writer thread panicked")??;
    }
    println!(
        "probe slowloris: ok ({conns} dribbling connections held {hold_ms}ms; \
         {pings} concurrent pings served, worst {worst:?}; all dribbles completed)"
    );
    Ok(())
}

/// Connections past the server's cap must be refused with a one-line
/// `"server at capacity"` rather than queued or dropped silently.
fn probe_capacity(addr: &str, cap: usize) -> Result<(), String> {
    // Fill the admission slots with idle connections...
    let mut held = Vec::new();
    for _ in 0..cap {
        held.push(TcpStream::connect(addr).map_err(|e| e.to_string())?);
    }
    // ...then the next one must be politely refused. The refusal races
    // the accept loop's slot accounting, so allow a few tries.
    let mut last = String::new();
    for _ in 0..20 {
        let mut extra = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let _ = extra.write_all(b"{\"op\":\"ping\"}\n");
        match read_raw_line(&mut extra, Duration::from_secs(2)) {
            Ok(resp) if resp.contains("server at capacity") => {
                println!(
                    "probe capacity: ok (connection {} refused politely)",
                    cap + 1
                );
                return Ok(());
            }
            Ok(resp) => last = resp,
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(format!("capacity probe never saw a refusal; last: {last}"))
}

fn run_probes(addr: &str, args: &[String]) -> Result<(), String> {
    let battery = parse("--battery", args).unwrap_or_else(|| "all".into());
    let line_bytes: usize = parse_num("--line-bytes", args)?.unwrap_or(512 * 1024);
    let connections: Option<usize> = parse_num("--connections", args)?;
    let mut ran = 0;
    if matches!(battery.as_str(), "all" | "oversized") {
        probe_oversized(addr, line_bytes)?;
        ran += 1;
    }
    if matches!(battery.as_str(), "all" | "garbage") {
        probe_garbage(addr)?;
        ran += 1;
    }
    if matches!(battery.as_str(), "all" | "panic") {
        probe_panic(addr)?;
        ran += 1;
    }
    if matches!(battery.as_str(), "all" | "deadline") {
        probe_deadline(addr)?;
        ran += 1;
    }
    if matches!(battery.as_str(), "all" | "slowloris") {
        let conns: usize = parse_num("--slow-conns", args)?.unwrap_or(8);
        let hold_ms: u64 = parse_num("--hold-ms", args)?.unwrap_or(3000);
        probe_slowloris(addr, conns, hold_ms)?;
        ran += 1;
    }
    // Capacity needs to know the server's cap, so it only runs when
    // --connections says what to fill.
    if battery == "capacity" || (battery == "all" && connections.is_some()) {
        let cap = connections.ok_or("--connections is required for the capacity battery")?;
        probe_capacity(addr, cap)?;
        ran += 1;
    }
    if ran == 0 {
        return Err(format!(
            "unknown battery '{battery}' (all|oversized|garbage|panic|deadline|slowloris|capacity)"
        ));
    }
    println!("probe: {ran} batteries passed");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
