//! `l2q-serve` — stand up a harvest server over a synthetic corpus.
//!
//! ```text
//! l2q-serve [--domain researchers|cars] [--entities N] [--pages N] [--seed N]
//!           [--port P] [--workers N] [--queue-cap N] [--idle-timeout SECS]
//!           [--max-connections N] [--max-line-bytes N]
//!           [--request-deadline-ms MS] [--metrics-interval SECS]
//!           [--data-dir PATH] [--fsync always|never|every=N] [--snapshot-every N]
//!           [--shard-id NAME] [--serve-mode threads|reactor]
//! ```
//!
//! Prints `listening on <addr>` once ready (`--port 0` picks an
//! ephemeral port), then serves until a client sends `{"op":"shutdown"}`.
//! With `--metrics-interval N`, a one-line summary (active sessions, qps,
//! p95 step latency) is logged to stderr every N seconds.
//!
//! With `--data-dir`, every session is durably checkpointed (WAL +
//! snapshots) and sessions from a previous run of the same directory are
//! recovered on boot — resumable transparently on first touch. The
//! corpus parameters must match the previous run's for recovered state
//! to make sense.

use l2q_corpus::{cars_domain, generate, researchers_domain, CorpusConfig};
use l2q_service::{BundleConfig, HarvestServer, ServerConfig, ServingBundle};
use l2q_store::{FsyncPolicy, SessionStore, StoreConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
l2q-serve — concurrent harvest server (Learning to Query)

USAGE:
  l2q-serve [--domain researchers|cars] [--entities N] [--pages N] [--seed N]
            [--port P] [--workers N] [--queue-cap N] [--idle-timeout SECS]
            [--max-connections N] [--max-line-bytes N]
            [--request-deadline-ms MS] [--metrics-interval SECS]
            [--data-dir PATH] [--fsync always|never|every=N] [--snapshot-every N]
            [--shard-id NAME] [--trace-buffer N] [--no-prune]
            [--serve-mode threads|reactor]

  --no-prune disables the bound-and-prune selection path (certified
  early-stopped walk solves); selections are bit-identical either way.
  --serve-mode picks the connection engine: 'reactor' (default) serves
  every connection from one epoll readiness loop; 'threads' keeps the
  thread-per-connection path for A/B comparison.
";

fn parse(key: &str, args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(key: &str, args: &[String], default: T) -> Result<T, String> {
    match parse(key, args) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }

    let domain = parse("--domain", &args).unwrap_or_else(|| "researchers".into());
    let spec = match domain.as_str() {
        "researchers" => researchers_domain(),
        "cars" => cars_domain(),
        other => return Err(format!("unknown domain '{other}' (researchers|cars)")),
    };
    let corpus_cfg = CorpusConfig {
        n_entities: parse_num("--entities", &args, 40)?,
        pages_per_entity: parse_num("--pages", &args, 20)?,
        seed: parse_num("--seed", &args, 42u64)?,
        ..CorpusConfig::default()
    };
    let port: u16 = parse_num("--port", &args, 4417)?;
    let defaults = ServerConfig::default();
    let server_cfg = ServerConfig {
        workers: parse_num("--workers", &args, 4usize)?.max(1),
        queue_cap: parse_num("--queue-cap", &args, 64usize)?.max(1),
        idle_timeout: Duration::from_secs(parse_num("--idle-timeout", &args, 300u64)?),
        max_connections: parse_num("--max-connections", &args, defaults.max_connections)?.max(1),
        max_line_bytes: parse_num("--max-line-bytes", &args, defaults.max_line_bytes)?.max(64),
        request_deadline_ms: parse_num("--request-deadline-ms", &args, 0u64)?,
        shard_id: parse("--shard-id", &args),
        serve_mode: match parse("--serve-mode", &args) {
            None => defaults.serve_mode,
            Some(v) => l2q_service::ServeMode::parse(&v)
                .ok_or_else(|| format!("--serve-mode expects threads|reactor, got '{v}'"))?,
        },
        ..defaults
    };

    eprintln!(
        "building corpus: domain={domain} entities={} pages={} seed={}",
        corpus_cfg.n_entities, corpus_cfg.pages_per_entity, corpus_cfg.seed
    );
    let corpus = Arc::new(generate(&spec, &corpus_cfg).map_err(|e| e.to_string())?);
    eprintln!("training aspect models + building serving bundle...");
    let no_prune = args.iter().any(|a| a == "--no-prune");
    let bundle = Arc::new(ServingBundle::build(
        corpus,
        l2q_core::L2qConfig::default().with_prune(!no_prune),
        BundleConfig::default(),
    ));

    let metrics_interval: u64 = parse_num("--metrics-interval", &args, 0u64)?;

    // Size the trace ring buffer before the first traced request touches
    // it (the capacity freezes on first use; 0 keeps the default).
    let trace_buffer: usize = parse_num("--trace-buffer", &args, 0usize)?;
    if trace_buffer > 0 {
        l2q_obs::trace::configure_capacity(trace_buffer);
    }

    let store = match parse("--data-dir", &args) {
        None => None,
        Some(dir) => {
            let fsync = match parse("--fsync", &args) {
                None => FsyncPolicy::default(),
                Some(v) => FsyncPolicy::parse(&v)
                    .ok_or_else(|| format!("--fsync expects always|never|every=N, got '{v}'"))?,
            };
            let store_cfg = StoreConfig {
                fsync,
                snapshot_every: parse_num("--snapshot-every", &args, 8usize)?.max(1),
                ..StoreConfig::default()
            };
            let store = SessionStore::open(&dir, store_cfg)
                .map_err(|e| format!("cannot open data dir '{dir}': {e}"))?;
            let stored = store.list_sessions();
            eprintln!(
                "durable store at {dir}: {} stored session(s) recoverable{}",
                stored.len(),
                if stored.is_empty() {
                    String::new()
                } else {
                    format!(" (ids {:?})", stored)
                }
            );
            Some(Arc::new(store))
        }
    };

    let mut handle =
        HarvestServer::spawn_with_store(bundle, server_cfg, store, ("127.0.0.1", port))
            .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", handle.addr());

    // Serve until a client requests shutdown (or the process is killed),
    // logging a metrics summary every --metrics-interval seconds.
    let mut last_report = std::time::Instant::now();
    let mut last_queries = 0u64;
    while !handle.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
        if metrics_interval > 0 && last_report.elapsed() >= Duration::from_secs(metrics_interval) {
            let reg = l2q_obs::global();
            let queries = reg.counter("harvest_queries_fired_total").get();
            let qps = (queries - last_queries) as f64 / last_report.elapsed().as_secs_f64();
            let step_p95 = reg.histogram("harvest_step_seconds").quantile(0.95);
            eprintln!(
                "metrics: sessions={} qps={qps:.1} step_p95={:.1}ms queue_depth={}",
                reg.gauge("service_sessions_active").get(),
                step_p95 * 1e3,
                reg.gauge("scheduler_queue_depth").get(),
            );
            last_queries = queries;
            last_report = std::time::Instant::now();
        }
    }
    handle.shutdown();
    eprintln!("server stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
