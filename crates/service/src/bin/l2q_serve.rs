//! `l2q-serve` — stand up a harvest server over a synthetic corpus.
//!
//! ```text
//! l2q-serve [--domain researchers|cars] [--entities N] [--pages N] [--seed N]
//!           [--port P] [--workers N] [--queue-cap N] [--idle-timeout SECS]
//! ```
//!
//! Prints `listening on <addr>` once ready (`--port 0` picks an
//! ephemeral port), then serves until a client sends `{"op":"shutdown"}`.

use l2q_corpus::{cars_domain, generate, researchers_domain, CorpusConfig};
use l2q_service::{BundleConfig, HarvestServer, ServerConfig, ServingBundle};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
l2q-serve — concurrent harvest server (Learning to Query)

USAGE:
  l2q-serve [--domain researchers|cars] [--entities N] [--pages N] [--seed N]
            [--port P] [--workers N] [--queue-cap N] [--idle-timeout SECS]
";

fn parse(key: &str, args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(key: &str, args: &[String], default: T) -> Result<T, String> {
    match parse(key, args) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects a number, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }

    let domain = parse("--domain", &args).unwrap_or_else(|| "researchers".into());
    let spec = match domain.as_str() {
        "researchers" => researchers_domain(),
        "cars" => cars_domain(),
        other => return Err(format!("unknown domain '{other}' (researchers|cars)")),
    };
    let corpus_cfg = CorpusConfig {
        n_entities: parse_num("--entities", &args, 40)?,
        pages_per_entity: parse_num("--pages", &args, 20)?,
        seed: parse_num("--seed", &args, 42u64)?,
        ..CorpusConfig::default()
    };
    let port: u16 = parse_num("--port", &args, 4417)?;
    let server_cfg = ServerConfig {
        workers: parse_num("--workers", &args, 4usize)?.max(1),
        queue_cap: parse_num("--queue-cap", &args, 64usize)?.max(1),
        idle_timeout: Duration::from_secs(parse_num("--idle-timeout", &args, 300u64)?),
        ..ServerConfig::default()
    };

    eprintln!(
        "building corpus: domain={domain} entities={} pages={} seed={}",
        corpus_cfg.n_entities, corpus_cfg.pages_per_entity, corpus_cfg.seed
    );
    let corpus = Arc::new(generate(&spec, &corpus_cfg).map_err(|e| e.to_string())?);
    eprintln!("training aspect models + building serving bundle...");
    let bundle = Arc::new(ServingBundle::build(
        corpus,
        l2q_core::L2qConfig::default(),
        BundleConfig::default(),
    ));

    let mut handle = HarvestServer::spawn(bundle, server_cfg, ("127.0.0.1", port))
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", handle.addr());

    // Serve until a client requests shutdown (or the process is killed).
    while !handle.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.shutdown();
    eprintln!("server stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
