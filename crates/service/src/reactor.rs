//! The event-driven serving engine: one reactor thread multiplexing
//! every connection over an epoll readiness loop (vendored `mio`
//! subset), replacing thread-per-connection at scale.
//!
//! Each connection is a nonblocking state machine: readable bytes feed
//! the bounded [`LineBuffer`] incrementally, complete request lines
//! dispatch either inline (cheap never-blocking ops, on the reactor
//! thread itself) or to the CPU worker pool via a [`WireHandler`], and
//! responses complete back through the reactor's completion queue — a
//! worker never blocks on a slow peer's socket. Writes are buffered;
//! `WouldBlock` re-registers the connection for write readiness and the
//! flush resumes on the next readiness event.
//!
//! Every PR-5 hardening semantic carries over:
//!
//! * **Per-request deadlines** — the reactor owns the timer: an expired
//!   in-flight request gets its `Deadline` error written immediately,
//!   the eventual worker completion is tombstoned, and the batch keeps
//!   running in the background exactly like the thread path.
//! * **Oversized lines** — the same `ok:false` error line, then a
//!   bounded drain to the line's terminating newline so the close is a
//!   graceful FIN.
//! * **Admission control** — refused connections are handed to the
//!   reactor with a one-shot refusal response written through the same
//!   nonblocking writer (no thread, no blocking write), and admitted
//!   connections carry their [`ConnSlot`-style] guard, released when
//!   the reactor closes them — on socket error included.
//! * **Bounded drain on shutdown** — in-flight requests finish and
//!   flush within the drain timeout; everything else closes.
//! * **Panic isolation** — pool dispatch runs under the scheduler's
//!   `catch_unwind`, and a reply handle dropped without completing
//!   (any backstop path) still delivers an internal-error response
//!   instead of hanging the connection.
//!
//! Backpressure: at most one pool request per connection is in flight
//! (pipelined requests wait in the socket, mirroring the thread path's
//! serialized reads), and parsing pauses while more than
//! [`MAX_OUT_BUFFER`] response bytes await a slow reader — the
//! registration drops read interest so level-triggered epoll does not
//! spin on the unread socket.

use crate::framing::{Frame, LineBuffer};
use crate::proto::{Request, Response};
use crate::session::ServiceError;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use mio::net::TcpStream;
use mio::{Events, Interest, Poll, Token, Waker};
use std::any::Any;
use std::io::{self, ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const WAKER_TOKEN: Token = Token(0);
/// Idle poll tick: the upper bound on how stale a deadline/stop check
/// can get when no readiness events arrive.
const TICK: Duration = Duration::from_millis(200);
/// Per-read granularity off a ready socket.
const READ_CHUNK: usize = 4096;
/// Response bytes buffered for a slow reader before parsing pauses.
const MAX_OUT_BUFFER: usize = 256 * 1024;
/// How long an oversized-line drain may wait for the terminator.
const OVERSIZED_DRAIN: Duration = Duration::from_secs(2);
/// How long a capacity-refusal line may take to flush before the
/// socket is closed anyway.
const REFUSAL_LINGER: Duration = Duration::from_millis(500);

/// Reactor metrics, registered once per process.
struct ReactorObs {
    registered: Arc<l2q_obs::Gauge>,
    readiness_events: Arc<l2q_obs::Counter>,
    wakeups: Arc<l2q_obs::Counter>,
    write_stalls: Arc<l2q_obs::Counter>,
}

fn reactor_obs() -> &'static ReactorObs {
    static OBS: OnceLock<ReactorObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = l2q_obs::global();
        ReactorObs {
            registered: reg.gauge("reactor_registered_connections"),
            readiness_events: reg.counter("reactor_readiness_events_total"),
            wakeups: reg.counter("reactor_wakeups_total"),
            write_stalls: reg.counter("reactor_write_stalls_total"),
        }
    })
}

/// Protocol glue the engine serves: the service and the router each
/// implement this over their own dispatch core.
pub trait WireHandler: Send + Sync + 'static {
    /// Handle an op inline on the reactor thread if (and only if) it
    /// never blocks — no session locks, no disk, no network. `None`
    /// sends the request to [`WireHandler::dispatch`].
    fn run_inline(&self, req: &Request) -> Option<Response>;

    /// Effective deadline for a pool-dispatched request in milliseconds
    /// (0 = none). The reactor enforces it: on expiry the caller gets a
    /// `Deadline` error while the dispatched work keeps running.
    fn deadline_ms(&self, req: &Request) -> u64;

    /// Execute `req` off the reactor thread and complete `reply` with
    /// the response. Must not block the calling (reactor) thread: hand
    /// the work to a pool and return. On queue overload, complete the
    /// reply immediately with the overload error.
    fn dispatch(&self, req: Request, reply: ReplyHandle);

    /// A request line exceeded the configured cap (metrics hook).
    fn on_oversized(&self) {}

    /// A dispatched request missed its deadline (metrics hook).
    fn on_deadline(&self) {}
}

struct Completion {
    token: usize,
    gen: u64,
    seq: u64,
    resp: Response,
}

/// A connection handed to the reactor by an accept loop.
struct Incoming {
    stream: std::net::TcpStream,
    /// Held until the reactor closes the connection (admission slot /
    /// connection counter); released on every close path, socket
    /// errors included.
    guard: Option<Box<dyn Any + Send>>,
    /// `Some` = refuse: write exactly this response (nonblocking,
    /// bounded linger) and close. The connection holds no guard slot.
    refusal: Option<Response>,
}

struct Shared {
    injections: Mutex<Vec<Incoming>>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Shared {
    fn wake(&self) {
        let _ = self.waker.wake();
    }

    fn complete(&self, token: usize, gen: u64, seq: u64, resp: Response) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion {
                token,
                gen,
                seq,
                resp,
            });
        self.wake();
    }
}

/// One in-flight dispatched request's reply path back into the reactor.
/// Completing (or dropping — the backstop sends an internal error so a
/// lost reply can never hang the connection) wakes the reactor, which
/// writes the response on the owning connection.
pub struct ReplyHandle {
    shared: Arc<Shared>,
    token: usize,
    gen: u64,
    seq: u64,
    done: bool,
}

impl ReplyHandle {
    /// Deliver the response for this request.
    pub fn complete(mut self, resp: Response) {
        self.done = true;
        self.shared.complete(self.token, self.gen, self.seq, resp);
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.done {
            let resp = Response {
                ok: false,
                error: Some("internal error: reply dropped".into()),
                ..Response::default()
            };
            self.shared.complete(self.token, self.gen, self.seq, resp);
        }
    }
}

/// Cloneable handoff side of an engine: what accept loops hold.
#[derive(Clone)]
pub struct Injector {
    shared: Arc<Shared>,
}

impl Injector {
    /// Hand an accepted connection to the reactor. `guard` is dropped
    /// when the reactor closes the connection; `refusal` short-circuits
    /// the connection to one response line and a close.
    pub fn hand_off(
        &self,
        stream: std::net::TcpStream,
        guard: Option<Box<dyn Any + Send>>,
        refusal: Option<Response>,
    ) {
        self.shared
            .injections
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Incoming {
                stream,
                guard,
                refusal,
            });
        self.shared.wake();
    }

    /// Nudge the reactor (e.g. after flipping the stop flag).
    pub fn wake(&self) {
        self.shared.wake();
    }
}

/// Engine sizing and policy.
pub struct EngineConfig {
    /// Reactor thread name.
    pub name: String,
    /// Request-line byte cap (same meaning as the thread path).
    pub max_line_bytes: usize,
    /// Shutdown drain bound: in-flight requests get this long to finish
    /// and flush before their connections are closed anyway.
    pub drain_timeout: Duration,
    /// Shared stop flag; the engine drains and exits once it is set.
    pub stop: Arc<AtomicBool>,
}

/// A running reactor engine; join via [`EngineHandle::join`] after
/// setting the stop flag.
pub struct EngineHandle {
    injector: Injector,
    thread: Option<JoinHandle<()>>,
}

impl EngineHandle {
    /// The handoff handle for accept loops.
    pub fn injector(&self) -> Injector {
        self.injector.clone()
    }

    /// Wake the reactor so it notices external state (stop flag).
    pub fn wake(&self) {
        self.injector.wake();
    }

    /// Join the reactor thread (idempotent). The engine exits on its
    /// own once the stop flag is set and the drain completes.
    pub fn join(&mut self) {
        self.wake();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.join();
    }
}

/// Spawn the reactor thread serving `handler` under `cfg`.
pub fn spawn_engine(handler: Arc<dyn WireHandler>, cfg: EngineConfig) -> io::Result<EngineHandle> {
    let poll = Poll::new()?;
    let waker = Waker::new(poll.registry(), WAKER_TOKEN)?;
    let shared = Arc::new(Shared {
        injections: Mutex::new(Vec::new()),
        completions: Mutex::new(Vec::new()),
        waker,
    });
    let injector = Injector {
        shared: shared.clone(),
    };
    let name = cfg.name.clone();
    let mut engine = Engine {
        poll,
        handler,
        shared,
        conns: Vec::new(),
        free: Vec::new(),
        next_gen: 1,
        max_line_bytes: cfg.max_line_bytes.max(1),
        drain_timeout: cfg.drain_timeout,
        stop: cfg.stop,
        drain_deadline: None,
    };
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || engine.run())?;
    Ok(EngineHandle {
        injector,
        thread: Some(thread),
    })
}

enum ConnState {
    /// Serving requests.
    Open,
    /// An oversized line was rejected; discarding until its terminator
    /// (bounded by `deadline`), then the connection closes gracefully.
    Draining { deadline: Instant },
    /// Flush whatever is buffered, then close.
    Closing,
    /// Capacity refusal: flush the one refusal line (bounded by
    /// `deadline`), then close. Never reads.
    Refusal { deadline: Instant },
}

struct Pending {
    seq: u64,
    deadline: Option<Instant>,
    deadline_ms: u64,
    request_id: Option<u64>,
}

struct Conn {
    stream: TcpStream,
    buf: LineBuffer,
    out: Vec<u8>,
    written: usize,
    state: ConnState,
    /// The one in-flight dispatched request (parsing pauses until it
    /// completes or its deadline fires).
    pending: Option<Pending>,
    /// Highest seq whose completion must be discarded (deadline fired
    /// first and the error response already went out).
    discard_through: u64,
    seq: u64,
    gen: u64,
    /// Peer sent FIN; close once in-flight work and writes finish.
    eof: bool,
    interest: Interest,
    _guard: Option<Box<dyn Any + Send>>,
}

impl Conn {
    fn backlogged(&self) -> bool {
        self.out.len() - self.written >= MAX_OUT_BUFFER
    }

    fn has_output(&self) -> bool {
        self.written < self.out.len()
    }

    fn desired_interest(&self) -> Interest {
        let want_write = self.has_output();
        let want_read = match self.state {
            ConnState::Open => self.pending.is_none() && !self.backlogged() && !self.eof,
            ConnState::Draining { .. } => true,
            ConnState::Closing | ConnState::Refusal { .. } => false,
        };
        match (want_read, want_write) {
            (true, true) => Interest::READABLE | Interest::WRITABLE,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // Parked: hangup/error notifications only. Level-triggered
            // epoll would spin if read interest stayed on while parsing
            // is paused with unread socket bytes.
            (false, false) => Interest::NONE,
        }
    }
}

struct Engine {
    poll: Poll,
    handler: Arc<dyn WireHandler>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    max_line_bytes: usize,
    drain_timeout: Duration,
    stop: Arc<AtomicBool>,
    drain_deadline: Option<Instant>,
}

impl Engine {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        let mut ready: Vec<(usize, bool, bool)> = Vec::new();
        loop {
            if self.shutdown_pass() {
                break;
            }
            let timeout = self.next_timeout();
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                // A failing selector is unrecoverable; drain and exit so
                // the process does not serve half-dead sockets forever.
                self.stop.store(true, Ordering::SeqCst);
                continue;
            }
            let obs = reactor_obs();
            ready.clear();
            for ev in &events {
                if ev.token() == WAKER_TOKEN {
                    obs.wakeups.inc();
                    continue;
                }
                obs.readiness_events.inc();
                ready.push((ev.token().0 - 1, ev.is_readable(), ev.is_writable()));
            }
            for &(idx, readable, writable) in &ready {
                if self.conns.get(idx).map(Option::is_some) != Some(true) {
                    continue; // closed earlier in this same batch
                }
                if writable {
                    self.flush(idx);
                }
                if readable && self.conns[idx].is_some() {
                    self.read_ready(idx);
                }
                self.settle(idx);
            }
            self.drain_injections();
            self.drain_completions();
            self.check_deadlines();
        }
    }

    /// Stop-flag handling: start the bounded drain, close connections
    /// with nothing left in flight, and report whether the engine is
    /// done. In-flight requests get until the drain deadline to finish
    /// and flush.
    fn shutdown_pass(&mut self) -> bool {
        if !self.stop.load(Ordering::SeqCst) {
            return false;
        }
        let deadline = *self
            .drain_deadline
            .get_or_insert_with(|| Instant::now() + self.drain_timeout);
        let expired = Instant::now() >= deadline;
        for idx in 0..self.conns.len() {
            let Some(conn) = &self.conns[idx] else {
                continue;
            };
            let in_flight = conn.pending.is_some() || conn.has_output();
            if expired || !in_flight {
                self.close(idx);
            }
        }
        let live = self.conns.iter().flatten().count();
        if live == 0 {
            for idx in 0..self.conns.len() {
                self.close(idx);
            }
            return true;
        }
        false
    }

    fn next_timeout(&self) -> Duration {
        let mut next: Option<Instant> = self.drain_deadline;
        let mut consider = |d: Instant| match next {
            Some(n) if n <= d => {}
            _ => next = Some(d),
        };
        for conn in self.conns.iter().flatten() {
            if let Some(p) = &conn.pending {
                if let Some(d) = p.deadline {
                    consider(d);
                }
            }
            match conn.state {
                ConnState::Draining { deadline } | ConnState::Refusal { deadline } => {
                    consider(deadline)
                }
                _ => {}
            }
        }
        match next {
            Some(d) => d.saturating_duration_since(Instant::now()).min(TICK),
            None => TICK,
        }
    }

    fn register_incoming(&mut self, incoming: Incoming) {
        let Incoming {
            stream,
            guard,
            refusal,
        } = incoming;
        let Ok(stream) = TcpStream::from_std(stream) else {
            return; // guard drops, slot freed
        };
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let gen = self.next_gen;
        self.next_gen += 1;
        let mut conn = Conn {
            stream,
            buf: LineBuffer::new(self.max_line_bytes),
            out: Vec::new(),
            written: 0,
            state: ConnState::Open,
            pending: None,
            discard_through: 0,
            seq: 0,
            gen,
            eof: false,
            interest: Interest::READABLE,
            _guard: guard,
        };
        if let Some(resp) = refusal {
            conn.state = ConnState::Refusal {
                deadline: Instant::now() + REFUSAL_LINGER,
            };
            push_response(&mut conn.out, &resp);
            conn.interest = Interest::WRITABLE;
        }
        let interest = conn.interest;
        if self
            .poll
            .registry()
            .register(&mut conn.stream, Token(idx + 1), interest)
            .is_err()
        {
            self.free.push(idx);
            return; // conn (and guard) drop here
        }
        self.conns[idx] = Some(conn);
        reactor_obs().registered.inc();
        // Refusal lines usually flush in one write; try immediately.
        self.flush(idx);
        self.settle(idx);
    }

    fn drain_injections(&mut self) {
        loop {
            let batch: Vec<Incoming> = {
                let mut q = self
                    .shared
                    .injections
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *q)
            };
            if batch.is_empty() {
                return;
            }
            for incoming in batch {
                self.register_incoming(incoming);
            }
        }
    }

    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut q = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *q)
        };
        for completion in batch {
            self.deliver(completion);
        }
    }

    fn deliver(&mut self, completion: Completion) {
        let idx = completion.token;
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return; // connection already closed
        };
        if conn.gen != completion.gen || completion.seq <= conn.discard_through {
            return; // stale generation or tombstoned by a deadline
        }
        let Some(pending) = conn.pending.take_if(|p| p.seq == completion.seq) else {
            return;
        };
        let mut resp = completion.resp;
        resp.request_id = pending.request_id;
        let shutting_down = resp.state.as_deref() == Some("shutting_down");
        push_response(&mut conn.out, &resp);
        if shutting_down {
            conn.state = ConnState::Closing;
            self.stop.store(true, Ordering::SeqCst);
        }
        self.process_frames(idx);
        self.flush(idx);
        self.settle(idx);
    }

    fn check_deadlines(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            match conn.state {
                ConnState::Draining { deadline } if now >= deadline => {
                    // The oversized line never terminated in time; the
                    // error response is flushed (or never will be).
                    conn.state = ConnState::Closing;
                }
                ConnState::Refusal { deadline } if now >= deadline => {
                    self.close(idx);
                    continue;
                }
                _ => {}
            }
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            let expired = conn
                .pending
                .as_ref()
                .and_then(|p| p.deadline)
                .is_some_and(|d| now >= d);
            if expired {
                let pending = conn.pending.take().expect("checked above");
                conn.discard_through = pending.seq;
                self.handler.on_deadline();
                let mut resp = Response::err(&ServiceError::Deadline {
                    deadline_ms: pending.deadline_ms,
                });
                resp.request_id = pending.request_id;
                push_response(&mut conn.out, &resp);
                // The dispatched batch keeps running; only this caller's
                // wait is cut short. Parsing resumes now.
                self.process_frames(idx);
                self.flush(idx);
            }
            self.settle(idx);
        }
    }

    fn read_ready(&mut self, idx: usize) {
        if matches!(
            self.conns[idx].as_ref().map(|c| &c.state),
            Some(ConnState::Refusal { .. }) | Some(ConnState::Closing)
        ) {
            return;
        }
        if self.stop.load(Ordering::SeqCst) {
            return; // draining: no new requests
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            // Backpressure: pause reading while a request is in flight
            // or a slow reader has a full output backlog.
            let paused = match conn.state {
                ConnState::Open => conn.pending.is_some() || conn.backlogged(),
                ConnState::Draining { .. } => false,
                _ => true,
            };
            if paused || conn.eof {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    self.finish_eof(idx);
                    return;
                }
                Ok(n) => {
                    conn.buf.feed(&chunk[..n]);
                    self.advance(idx);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Post-feed progression: drain an overflow line or parse frames.
    fn advance(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        match conn.state {
            // Terminator found: the rejected line is fully consumed,
            // close gracefully after the flush.
            ConnState::Draining { .. } if conn.buf.discard_to_newline() => {
                conn.state = ConnState::Closing;
            }
            ConnState::Open => self.process_frames(idx),
            _ => {}
        }
    }

    /// Peer FIN: deliver any unterminated trailing line, then close
    /// once in-flight work and buffered output finish.
    fn finish_eof(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if matches!(conn.state, ConnState::Open) && conn.pending.is_none() {
            if let Some(line) = conn.buf.finish() {
                self.handle_line(idx, line);
            }
        }
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if matches!(conn.state, ConnState::Open) && conn.pending.is_none() {
            conn.state = ConnState::Closing;
        }
    }

    /// Parse and dispatch buffered frames until input runs dry, a
    /// request goes in flight, or the connection leaves `Open`.
    fn process_frames(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if !matches!(conn.state, ConnState::Open) || conn.pending.is_some() || conn.backlogged()
            {
                return;
            }
            match conn.buf.next_frame() {
                None => {
                    if conn.eof {
                        conn.state = ConnState::Closing;
                    }
                    return;
                }
                Some(Frame::Overflow { buffered }) => {
                    self.handler.on_oversized();
                    let max = self.max_line_bytes;
                    let Some(conn) = self.conns[idx].as_mut() else {
                        return;
                    };
                    let resp = Response {
                        ok: false,
                        error: Some(format!(
                            "request line exceeds {max} bytes ({buffered} read); closing connection"
                        )),
                        ..Response::default()
                    };
                    push_response(&mut conn.out, &resp);
                    conn.state = ConnState::Draining {
                        deadline: Instant::now() + OVERSIZED_DRAIN,
                    };
                    // Whatever is already buffered may hold the newline.
                    if conn.buf.discard_to_newline() {
                        conn.state = ConnState::Closing;
                    }
                    return;
                }
                Some(Frame::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line(idx, line);
                }
            }
        }
    }

    fn handle_line(&mut self, idx: usize, line: String) {
        let req = match serde_json::from_str::<Request>(&line) {
            Ok(req) => req,
            Err(e) => {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                let resp = Response {
                    ok: false,
                    error: Some(format!("bad request: {e}")),
                    ..Response::default()
                };
                push_response(&mut conn.out, &resp);
                return;
            }
        };
        if let Some(mut resp) = self.handler.run_inline(&req) {
            resp.request_id = req.request_id;
            let shutting_down = resp.state.as_deref() == Some("shutting_down");
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            push_response(&mut conn.out, &resp);
            if shutting_down {
                conn.state = ConnState::Closing;
                self.stop.store(true, Ordering::SeqCst);
            }
            return;
        }
        let deadline_ms = self.handler.deadline_ms(&req);
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        conn.seq += 1;
        conn.pending = Some(Pending {
            seq: conn.seq,
            deadline: (deadline_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(deadline_ms)),
            deadline_ms,
            request_id: req.request_id,
        });
        let reply = ReplyHandle {
            shared: self.shared.clone(),
            token: idx,
            gen: conn.gen,
            seq: conn.seq,
            done: false,
        };
        self.handler.dispatch(req, reply);
    }

    /// Write buffered output until done or `WouldBlock`.
    fn flush(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    reactor_obs().write_stalls.inc();
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.written = 0;
        // Output drained: a paused parser may resume.
        self.process_frames(idx);
    }

    /// Reconcile registration interest with the connection's state and
    /// close connections that have finished.
    fn settle(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let done = !conn.has_output()
            && matches!(conn.state, ConnState::Closing | ConnState::Refusal { .. });
        if done {
            self.close(idx);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.interest {
            conn.interest = desired;
            if self
                .poll
                .registry()
                .reregister(&mut conn.stream, Token(idx + 1), desired)
                .is_err()
            {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(mut conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poll.registry().deregister(&mut conn.stream);
        reactor_obs().registered.dec();
        self.free.push(idx);
        // conn drops here: socket closes, guard releases the slot.
    }
}

fn push_response(out: &mut Vec<u8>, resp: &Response) {
    let line = serde_json::to_string(resp).unwrap_or_else(|_| "{\"ok\":false}".into());
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

/// A small blocking-work pool for handlers whose dispatch does I/O (the
/// router's shard forwards): fixed threads over a bounded queue, the
/// same backpressure shape as the scheduler. Used where the scheduler's
/// CPU-bound pool would be the wrong place to park blocking calls.
pub struct TaskPool {
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    retry_after_ms: u64,
}

/// A queued unit of blocking work.
type Task = Box<dyn FnOnce() + Send>;

impl TaskPool {
    /// Spawn `workers` threads draining a queue of capacity `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize, name: &str) -> Self {
        let workers = workers.max(1);
        let (tx, rx): (Sender<Task>, Receiver<Task>) = channel::bounded(queue_cap.max(1));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            // A panicking task must not shrink the pool.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn task pool worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers: handles,
            retry_after_ms: 25,
        }
    }

    /// Enqueue a task; `Overloaded` with a retry hint when the queue is
    /// full (the task is dropped — callers keep their reply handle
    /// outside the closure to deliver the error).
    pub fn submit(&self, task: Box<dyn FnOnce() + Send>) -> Result<(), ServiceError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(ServiceError::Canceled);
        };
        match tx.try_send(task) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Overloaded {
                retry_after_ms: self.retry_after_ms,
            }),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Canceled),
        }
    }

    /// Disconnect the queue and join the workers; queued tasks drain.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
