//! Durable-store integration: spill-on-evict with Φ intact, refuse-evict
//! without a store, server restart over the same data dir, and the
//! `persist`/`restore`/`list_sessions` wire ops.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig, EntityId};
use l2q_service::{
    BundleConfig, Client, HarvestServer, SelectorKind, ServerConfig, ServerHandle, ServiceMetrics,
    ServingBundle, SessionManager, SessionSpec,
};
use l2q_store::{FsyncPolicy, SessionStore, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-durability-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bundle() -> Arc<ServingBundle> {
    let corpus: Arc<Corpus> = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 12,
                pages_per_entity: 10,
                seed: 11,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ))
}

fn manager(
    b: &Arc<ServingBundle>,
    idle: Duration,
    store: Option<Arc<SessionStore>>,
) -> SessionManager {
    SessionManager::with_store(b.clone(), idle, Arc::new(ServiceMetrics::default()), store)
}

fn spec(b: &Arc<ServingBundle>) -> SessionSpec {
    SessionSpec {
        entity: EntityId(1),
        aspect: b.corpus.aspect_by_name("RESEARCH").unwrap(),
        selector: SelectorKind::L2qbal,
        n_queries: Some(6),
        domain_size: 3,
    }
}

/// The satellite regression: a session evicted for idleness and then
/// touched again resumes with its full prior context Φ (fired queries and
/// gathered pages) intact — the store made eviction a spill, not a loss.
#[test]
fn evicted_session_resumes_with_prior_context_intact() {
    let dir = test_dir("spill-resume");
    let b = bundle();
    let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
    let m = manager(&b, Duration::from_millis(20), Some(store));

    let status = m.create(&spec(&b)).unwrap();
    let slot = m.get(status.id).unwrap();
    let report = slot.lock().unwrap().run_steps(2);
    assert!(report.advanced > 0, "session must make progress");
    let (pages_before, queries_before) = slot.lock().unwrap().snapshot();
    drop(slot);

    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(m.evict_idle(), 1, "idle session spills to the store");
    assert_eq!(m.active(), 0);

    // Touch restores transparently; Φ is intact.
    let slot = m.get(status.id).unwrap();
    let (pages_after, queries_after) = slot.lock().unwrap().snapshot();
    assert_eq!(pages_after, pages_before, "gathered pages survive eviction");
    assert_eq!(
        queries_after, queries_before,
        "fired queries survive eviction"
    );

    // And the restored session still steps (continues, not restarts).
    let resumed = slot.lock().unwrap().run_steps(8);
    assert!(resumed.status.finished.is_some(), "budget finishes the run");
    assert!(resumed.status.steps_taken >= report.status.steps_taken);
    std::fs::remove_dir_all(&dir).ok();
}

/// Without a store, evicting a session with stepped progress would lose
/// data — the sweeper must refuse (and still evict fresh sessions).
#[test]
fn eviction_without_store_refuses_sessions_with_progress() {
    let b = bundle();
    let m = manager(&b, Duration::from_millis(20), None);

    let stepped = m.create(&spec(&b)).unwrap();
    m.get(stepped.id).unwrap().lock().unwrap().run_steps(1);
    let fresh = m.create(&spec(&b)).unwrap();

    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(m.evict_idle(), 1, "only the fresh session is evictable");
    assert!(m.get(stepped.id).is_ok(), "stepped session must survive");
    assert!(m.get(fresh.id).is_err());
}

/// A second manager over the same data dir (a server restart) sees the
/// first manager's sessions, restores them, and hands out non-colliding
/// ids. High snapshot_every keeps steps in the WAL so the restart
/// exercises tail replay, not just snapshot reads.
#[test]
fn restart_recovers_sessions_from_wal_tail() {
    let dir = test_dir("restart");
    let b = bundle();
    let store_cfg = StoreConfig {
        fsync: FsyncPolicy::Always,
        snapshot_every: 1000, // never snapshot mid-run: recovery must replay the WAL
        keep_snapshots: 2,
    };

    let (id, pages_before, queries_before) = {
        let store = Arc::new(SessionStore::open(&dir, store_cfg).unwrap());
        let m = manager(&b, Duration::from_secs(300), Some(store));
        let status = m.create(&spec(&b)).unwrap();
        let slot = m.get(status.id).unwrap();
        slot.lock().unwrap().run_steps(3);
        let (p, q) = slot.lock().unwrap().snapshot();
        assert!(!q.is_empty(), "need WAL-logged steps for this test");
        (status.id, p, q)
        // Manager dropped: simulates the process going away. The WAL was
        // fsynced per batch, so everything survives.
    };

    let store = Arc::new(SessionStore::open(&dir, store_cfg).unwrap());
    let m2 = manager(&b, Duration::from_secs(300), Some(store));
    let entries = m2.list();
    assert!(
        entries.iter().any(|e| e.id == id && !e.resident),
        "restarted manager lists the stored session"
    );

    let slot = m2.get(id).unwrap();
    let (pages_after, queries_after) = slot.lock().unwrap().snapshot();
    assert_eq!(pages_after, pages_before, "WAL replay restores pages");
    assert_eq!(queries_after, queries_before, "WAL replay restores queries");

    // New ids start above every recovered one.
    let fresh = m2.create(&spec(&b)).unwrap();
    assert!(fresh.id > id);

    // Close removes the durable state too.
    m2.close(id).unwrap();
    let m3 = manager(
        &b,
        Duration::from_secs(300),
        Some(Arc::new(SessionStore::open(&dir, store_cfg).unwrap())),
    );
    assert!(m3.get(id).is_err(), "closed session is gone for good");
    std::fs::remove_dir_all(&dir).ok();
}

/// Fleet regression: a `restore` and a `step` racing on the same stored
/// id (a router retrying against a shard while another client touches the
/// session) must serialize onto ONE resident instance — both touches see
/// the same `Arc`, the restore is counted once, and the step lands on the
/// shared instance rather than a doomed duplicate rebuild.
#[test]
fn concurrent_restore_and_step_share_one_resident_instance() {
    let dir = test_dir("restore-step-race");
    let b = bundle();
    let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
    let metrics = Arc::new(ServiceMetrics::default());
    let m = Arc::new(SessionManager::with_store(
        b.clone(),
        Duration::from_secs(300),
        metrics.clone(),
        Some(store),
    ));

    let id = m.create(&spec(&b)).unwrap().id;
    m.get(id).unwrap().lock().unwrap().run_steps(2);
    m.detach(id).unwrap();
    assert_eq!(m.active(), 0, "detach dropped residency");
    let restored_before = ServiceMetrics::load(&metrics.sessions_restored);

    // Both threads touch the stored session through the same path the
    // wire ops use (`restore` and `step` both go through manager.get).
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let restorer = {
        let (m, barrier) = (m.clone(), barrier.clone());
        std::thread::spawn(move || {
            barrier.wait();
            m.get(id).expect("concurrent restore")
        })
    };
    let stepper = {
        let (m, barrier) = (m.clone(), barrier.clone());
        std::thread::spawn(move || {
            barrier.wait();
            let slot = m.get(id).expect("concurrent step touch");
            let report = slot.lock().unwrap().run_steps(1);
            (slot, report)
        })
    };
    let restored_slot = restorer.join().unwrap();
    let (stepped_slot, report) = stepper.join().unwrap();

    assert!(
        Arc::ptr_eq(&restored_slot, &stepped_slot),
        "both racers must share one resident instance"
    );
    assert!(Arc::ptr_eq(&restored_slot, &m.get(id).unwrap()));
    assert_eq!(m.active(), 1, "exactly one resident copy");
    assert_eq!(
        ServiceMetrics::load(&metrics.sessions_restored),
        restored_before + 1,
        "the race counts as one restore, not two"
    );
    assert!(
        report.status.steps_taken >= 3,
        "the step advanced the restored state (got {})",
        report.status.steps_taken
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn start_server(store: Option<Arc<SessionStore>>) -> ServerHandle {
    HarvestServer::spawn_with_store(
        bundle(),
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            ..ServerConfig::default()
        },
        store,
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port")
}

/// The wire surface: persist / restore / list_sessions round-trip over
/// TCP, and a second server over the same data dir serves the session
/// with identical results.
#[test]
fn wire_persist_restore_and_list_sessions() {
    let dir = test_dir("wire");
    let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
    let mut server = start_server(Some(store));
    let mut client = Client::connect(server.addr()).unwrap();

    let session = client.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    client.step(session, 2, 40).unwrap();
    let persisted = client.persist(session).unwrap();
    assert_eq!(persisted.steps_taken, Some(2));

    let listed = client.list_sessions().unwrap().sessions.unwrap();
    let entry = listed.iter().find(|e| e.session == session).unwrap();
    assert!(entry.resident);
    assert_eq!(entry.steps_taken, Some(2));

    let before = client.snapshot(session).unwrap();
    server.shutdown();

    // Second server, same data dir: the session is stored, restorable,
    // and bit-identical.
    let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
    let mut server2 = start_server(Some(store));
    let mut client2 = Client::connect(server2.addr()).unwrap();

    let listed = client2.list_sessions().unwrap().sessions.unwrap();
    let entry = listed.iter().find(|e| e.session == session).unwrap();
    assert!(!entry.resident, "not yet touched on the new server");

    let restored = client2.restore(session).unwrap();
    assert_eq!(restored.steps_taken, Some(2));
    let after = client2.snapshot(session).unwrap();
    assert_eq!(after.pages, before.pages);
    assert_eq!(after.queries, before.queries);

    // Stepping continues where the old server stopped.
    let resp = client2.step(session, 64, 40).unwrap();
    assert_ne!(resp.state.as_deref(), Some("running"));

    // Store metrics are reachable through the wire metrics op.
    let metrics = client2.metrics("text").unwrap().metrics_text.unwrap();
    assert!(metrics.contains("store_wal_appends_total"));
    assert!(metrics.contains("store_recoveries_total"));

    client2.close(session).unwrap();
    server2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// persist / restore / list_sessions against a store-less server: the two
/// session ops refuse cleanly; list still reports residents.
#[test]
fn wire_store_ops_without_data_dir() {
    let mut server = start_server(None);
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.create(1, "RESEARCH", "l2qbal", Some(3), 0).unwrap();

    let err = client.persist(session).unwrap_err();
    assert!(err.to_string().contains("--data-dir"), "got: {err}");
    let err = client.restore(session).unwrap_err();
    assert!(err.to_string().contains("--data-dir"), "got: {err}");

    let listed = client.list_sessions().unwrap().sessions.unwrap();
    assert!(listed.iter().any(|e| e.session == session && e.resident));
    server.shutdown();
}

/// A deposed shard surfaces fencing instead of lying: once another store
/// handle fences the session away (what a failover/migration restore
/// does), the old server's next step answers a clean `ok:false` error
/// naming the fence — not an `ok:true` whose advance silently never
/// became durable — and the fenced resident refuses spills.
#[test]
fn fenced_session_surfaces_clean_error_instead_of_silent_ok() {
    let dir = test_dir("fenced");
    let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
    let mut server = start_server(Some(store));
    let mut client = Client::connect(server.addr()).unwrap();

    let session = client.create(1, "RESEARCH", "l2qbal", Some(6), 3).unwrap();
    client.step(session, 2, 40).unwrap();

    // Another shard takes ownership: its own store handle over the same
    // directory bumps the fence generation (restore-side discipline).
    let usurper = SessionStore::open(&dir, StoreConfig::default()).unwrap();
    usurper.fence(session).expect("fence the session away");

    let fenced_before = l2q_obs::global()
        .counter("service_sessions_fenced_total")
        .get();
    let err = client
        .step(session, 1, 40)
        .expect_err("deposed shard must refuse the step");
    assert!(
        err.to_string().contains("fenced"),
        "error names the fence: {err}"
    );
    assert!(
        l2q_obs::global()
            .counter("service_sessions_fenced_total")
            .get()
            > fenced_before,
        "fence not accounted in metrics"
    );

    // The connection is not poisoned and the server keeps serving; the
    // fenced resident keeps refusing (and refuses persist too — a spill
    // would write over the new owner's state).
    let err = client.step(session, 1, 40).expect_err("still fenced");
    assert!(err.to_string().contains("fenced"), "got: {err}");
    let err = client.persist(session).expect_err("spill must refuse");
    assert!(err.to_string().contains("fenced"), "got: {err}");
    let healthy = client.create(2, "RESEARCH", "l2qbal", Some(3), 0).unwrap();
    client.step(healthy, 1, 40).expect("server keeps serving");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
