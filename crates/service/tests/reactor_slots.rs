//! Reactor connection-slot accounting: churning accept/refuse cycles
//! must leave no leaked slots — the `reactor_registered_connections`
//! gauge returns to zero, refusals carry the `retry_after_ms` hint, and
//! a fresh connection is admitted once the churn ends.
//!
//! This lives in its own test binary on purpose: the gauge is process
//! global, so the zero assertions need no other test holding reactor
//! connections open in parallel.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig};
use l2q_service::{BundleConfig, HarvestServer, ServerConfig, ServingBundle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bundle() -> Arc<ServingBundle> {
    let corpus: Arc<Corpus> = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 4,
                pages_per_entity: 8,
                seed: 11,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ))
}

fn read_line_raw(stream: &mut TcpStream, timeout: Duration) -> std::io::Result<String> {
    stream.set_read_timeout(Some(timeout))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed before newline",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            return Ok(String::from_utf8_lossy(&buf[..pos]).into_owned());
        }
    }
}

fn registered() -> i64 {
    l2q_obs::global()
        .gauge("reactor_registered_connections")
        .get()
}

/// Wait (bounded) for the registered-connections gauge to drain to the
/// expected value; the reactor notices peer closes on its next poll wake.
fn wait_registered(expect: i64, timeout: Duration) -> i64 {
    let deadline = Instant::now() + timeout;
    loop {
        let now = registered();
        if now == expect || Instant::now() > deadline {
            return now;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Churn accept/refuse cycles against a reactor-mode server with a tiny
/// connection cap: every cycle fills the slots, collects a polite
/// refusal with a retry hint, then drops everything. No slot may leak —
/// the gauge returns to zero and a fresh connection is admitted.
#[test]
fn conn_slot_churn_leaves_no_leaked_slots() {
    let mut handle = HarvestServer::spawn(
        bundle(),
        ServerConfig {
            workers: 2,
            queue_cap: 32,
            max_connections: 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();
    let refused_before = l2q_obs::global()
        .counter("wire_connections_refused_total")
        .get();

    for cycle in 0..15 {
        // Fill both admission slots and prove they are being served (the
        // ping round-trip also guarantees the reactor registered them).
        let mut held: Vec<TcpStream> = (0..2)
            .map(|_| TcpStream::connect(addr).expect("connect holder"))
            .collect();
        for conn in held.iter_mut() {
            conn.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
            let resp = read_line_raw(conn, Duration::from_secs(5)).expect("pong");
            assert!(resp.contains("\"ok\":true"), "holder not served: {resp}");
        }

        // The next connection gets the one-line refusal with a retry
        // hint, written by the nonblocking writer, then a graceful
        // close. The refusal races the accept loop's slot accounting
        // only in the other direction (a freed slot admitting), so with
        // both slots held this must refuse on the first try.
        let mut extra = TcpStream::connect(addr).expect("connect extra");
        let refusal = read_line_raw(&mut extra, Duration::from_secs(5)).expect("refusal line");
        assert!(
            refusal.contains("server at capacity"),
            "cycle {cycle}: expected capacity refusal, got: {refusal}"
        );
        assert!(
            refusal.contains("\"retry_after_ms\":"),
            "cycle {cycle}: refusal missing retry hint: {refusal}"
        );
        let mut rest = Vec::new();
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            extra.read_to_end(&mut rest).is_ok() && rest.is_empty(),
            "cycle {cycle}: refusal connection not closed gracefully"
        );

        // Drop the holders (one abruptly, via SO_LINGER-less close) and
        // the refusal socket; every slot must come back.
        drop(held);
        drop(extra);
        let now = wait_registered(0, Duration::from_secs(5));
        assert_eq!(now, 0, "cycle {cycle}: leaked reactor slots (gauge={now})");
    }

    let refused = l2q_obs::global()
        .counter("wire_connections_refused_total")
        .get();
    assert!(
        refused >= refused_before + 15,
        "refusals not accounted: before={refused_before} after={refused}"
    );

    // After all that churn a fresh connection is admitted and served.
    let mut conn = TcpStream::connect(addr).expect("connect after churn");
    conn.write_all(b"{\"op\":\"ping\",\"request_id\":99}\n")
        .expect("ping");
    let resp = read_line_raw(&mut conn, Duration::from_secs(5)).expect("pong");
    assert!(
        resp.contains("\"ok\":true"),
        "post-churn ping failed: {resp}"
    );
    drop(conn);

    handle.shutdown();
    assert_eq!(
        wait_registered(0, Duration::from_secs(5)),
        0,
        "shutdown left registered connections behind"
    );
}
