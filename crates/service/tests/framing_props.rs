//! Property tests for the incremental framing core: feeding a byte
//! stream to [`LineBuffer`] in arbitrary chunk splits (1-byte
//! granularity, mid-UTF-8, splits landing exactly on `\n`) must
//! reassemble bit-identically to reading the same stream whole, and the
//! oversized-line cap must trigger across chunk boundaries exactly as
//! it does within one read.

use l2q_service::{Frame, LineBuffer, LineReader, ReadOutcome};
use proptest::prelude::*;
use std::io::Cursor;

/// Line bodies mixing ASCII, multi-byte UTF-8 (é is 2 bytes, ✓ is 3,
/// 🦀 is 4) and bytes that stress the `\r\n` handling.
fn arb_line() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{0,6}|é|✓|🦀| ", 0..8).prop_map(|parts| parts.concat())
}

/// A stream of lines plus a per-line terminator choice (`\n` / `\r\n`)
/// and whether the final line is left unterminated.
fn arb_stream() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec((arb_line(), any::<bool>()), 0..12),
        any::<bool>(),
    )
        .prop_map(|(lines, unterminated_tail)| {
            let mut bytes = Vec::new();
            let n = lines.len();
            for (i, (line, crlf)) in lines.into_iter().enumerate() {
                bytes.extend_from_slice(line.as_bytes());
                if i + 1 == n && unterminated_tail {
                    break;
                }
                bytes.extend_from_slice(if crlf { b"\r\n" } else { b"\n" });
            }
            bytes
        })
}

/// Split `bytes` into chunks by cycling `sizes` (1-byte granularity is
/// common since sizes start at 1 — splits land mid-UTF-8 and exactly on
/// `\n` as the cycle happens to fall).
fn chunked<'a>(bytes: &'a [u8], sizes: &'a [usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < bytes.len() {
        let step = sizes[i % sizes.len()].max(1).min(bytes.len() - at);
        chunks.push(&bytes[at..at + step]);
        at += step;
        i += 1;
    }
    chunks
}

/// Run a byte stream through `LineBuffer` in the given chunking and
/// collect every frame plus the EOF tail.
fn frames_chunked(bytes: &[u8], sizes: &[usize], max_line: usize) -> (Vec<String>, Vec<usize>) {
    let mut buf = LineBuffer::new(max_line);
    let mut lines = Vec::new();
    let mut overflows = Vec::new();
    for chunk in chunked(bytes, sizes) {
        buf.feed(chunk);
        while let Some(frame) = buf.next_frame() {
            match frame {
                Frame::Line(l) => lines.push(l),
                Frame::Overflow { buffered } => {
                    overflows.push(buffered);
                    // Mirror the serving loop: after rejecting the line,
                    // drain to its terminator before framing resumes.
                    buf.discard_to_newline();
                }
            }
        }
    }
    if let Some(tail) = buf.finish() {
        lines.push(tail);
    }
    (lines, overflows)
}

/// Reference framing: the blocking `LineReader` pump over the whole
/// stream in one `Read` source.
fn frames_whole(bytes: &[u8], max_line: usize) -> (Vec<String>, Vec<usize>) {
    let mut reader = LineReader::new(Cursor::new(bytes.to_vec()), max_line);
    let mut lines = Vec::new();
    let mut overflows = Vec::new();
    loop {
        match reader.read_line().expect("cursor reads cannot fail") {
            ReadOutcome::Line(l) => lines.push(l),
            ReadOutcome::Eof => break,
            ReadOutcome::Idle => unreachable!("cursor never blocks"),
            ReadOutcome::Overflow { buffered } => {
                overflows.push(buffered);
                reader.discard_current_line(std::time::Duration::from_secs(1));
            }
        }
    }
    (lines, overflows)
}

proptest! {
    /// Any chunk split of any stream reassembles to exactly the lines a
    /// whole-stream read produces — bit-identical, terminators stripped
    /// the same way, unterminated tail included.
    #[test]
    fn chunked_feeding_matches_whole_stream_reads(
        bytes in arb_stream(),
        sizes in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let (chunked_lines, chunked_overflows) = frames_chunked(&bytes, &sizes, 64 * 1024);
        let (whole_lines, whole_overflows) = frames_whole(&bytes, 64 * 1024);
        prop_assert_eq!(chunked_lines, whole_lines);
        // Streams here are far under the cap: no overflow either way.
        prop_assert_eq!(chunked_overflows.len(), 0);
        prop_assert_eq!(whole_overflows.len(), 0);
    }

    /// A split landing exactly on every `\n` (chunk = one whole line
    /// with terminator) is just another chunking: identical output.
    #[test]
    fn newline_aligned_chunks_match(bytes in arb_stream()) {
        let mut aligned = Vec::new();
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                aligned.push(i + 1 - start);
                start = i + 1;
            }
        }
        if start < bytes.len() {
            aligned.push(bytes.len() - start);
        }
        if aligned.is_empty() {
            aligned.push(1);
        }
        let (chunked_lines, _) = frames_chunked(&bytes, &aligned, 64 * 1024);
        let (whole_lines, _) = frames_whole(&bytes, 64 * 1024);
        prop_assert_eq!(chunked_lines, whole_lines);
    }

    /// The oversized-line cap triggers across chunk boundaries: a line
    /// over the cap is rejected no matter how finely it is split, the
    /// rejected byte count is the full line, and framing resumes with
    /// the next line — matching the whole-stream read exactly.
    #[test]
    fn overflow_cap_triggers_across_chunk_boundaries(
        // Longer than both the cap and the blocking reader's 4096-byte
        // read granularity, so the cap fires in either mode.
        big_len in 5000usize..9000,
        sizes in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let cap = 64;
        let mut bytes = vec![b'x'; big_len];
        bytes.extend_from_slice(b"\nok\n");
        let (chunked_lines, chunked_overflows) = frames_chunked(&bytes, &sizes, cap);
        let (whole_lines, whole_overflows) = frames_whole(&bytes, cap);
        // The oversized line is rejected, the next line survives —
        // identically in both modes.
        prop_assert_eq!(chunked_lines.clone(), vec!["ok".to_string()]);
        prop_assert_eq!(chunked_lines, whole_lines);
        prop_assert!(!chunked_overflows.is_empty());
        prop_assert!(!whole_overflows.is_empty());
        prop_assert!(*chunked_overflows.last().unwrap() > cap);
        prop_assert!(*whole_overflows.last().unwrap() > cap);
    }
}
