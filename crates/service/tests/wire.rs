//! End-to-end wire-protocol tests: a real `HarvestServer` on an
//! ephemeral port, driven by concurrent TCP clients, checked for
//! bit-identical outcomes against single-threaded in-process harvests.

use l2q_aspect::RelevanceOracle;
use l2q_core::{learn_domain, Harvester, L2qConfig, L2qSelector};
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig, EntityId};
use l2q_retrieval::SearchEngine;
use l2q_service::{
    BundleConfig, Client, HarvestServer, Request, ServerConfig, ServerHandle, ServingBundle,
};
use std::sync::Arc;
use std::time::Duration;

const N_QUERIES: u32 = 4;
const DOMAIN_SIZE: u32 = 3;

fn corpus() -> Arc<Corpus> {
    Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 16,
                pages_per_entity: 12,
                seed: 7,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    )
}

fn start_server(corpus: Arc<Corpus>) -> ServerHandle {
    let oracle = RelevanceOracle::from_truth(&corpus);
    let bundle = Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ));
    HarvestServer::spawn(
        bundle,
        ServerConfig {
            workers: 2,
            queue_cap: 32,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port")
}

/// Drive one session over the wire to completion; returns its harvested
/// pages and fired queries.
fn harvest_over_wire(
    addr: std::net::SocketAddr,
    entity: u32,
    aspect: &str,
) -> (Vec<u32>, Vec<String>) {
    let mut client = Client::connect(addr).expect("connect");
    let session = client
        .create(entity, aspect, "l2qbal", Some(N_QUERIES), DOMAIN_SIZE)
        .expect("create session");
    loop {
        let resp = client.step(session, 2, 200).expect("step");
        if resp.state.as_deref() != Some("running") {
            break;
        }
    }
    let snap = client.snapshot(session).expect("snapshot");
    client.close(session).expect("close");
    (snap.pages.unwrap(), snap.queries.unwrap())
}

/// The same harvest, single-threaded and in-process, from scratch.
fn harvest_in_process(corpus: &Arc<Corpus>, entity: u32, aspect: &str) -> Vec<u32> {
    let oracle = RelevanceOracle::from_truth(corpus);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let target = EntityId(entity);
    let peers: Vec<EntityId> = corpus
        .entity_ids()
        .filter(|&e| e != target)
        .take(DOMAIN_SIZE as usize)
        .collect();
    // The server solves the domain phase with the bundle's default config
    // and applies the per-session budget only to the harvest itself.
    let domain = learn_domain(corpus, &peers, &oracle, &L2qConfig::default());
    let harvester = Harvester {
        corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg: L2qConfig::default().with_n_queries(N_QUERIES as usize),
    };
    let mut sel = L2qSelector::l2qbal();
    let rec = harvester.run(target, corpus.aspect_by_name(aspect).unwrap(), &mut sel);
    rec.gathered.iter().map(|p| p.0).collect()
}

#[test]
fn concurrent_wire_sessions_match_in_process_harvests_exactly() {
    let corpus = corpus();
    let mut handle = start_server(corpus.clone());
    let addr = handle.addr();

    // 8 concurrent sessions: entities 3..11, so every one shares the
    // same domain peer set {0,1,2} and alternating aspects force both
    // fresh and repeated retrieval work.
    let aspects = ["RESEARCH", "AWARD"];
    let specs: Vec<(u32, &str)> = (3u32..11).map(|e| (e, aspects[e as usize % 2])).collect();

    let wire_results: Vec<(u32, &str, Vec<u32>, Vec<String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|&(entity, aspect)| {
                s.spawn(move || {
                    let (pages, queries) = harvest_over_wire(addr, entity, aspect);
                    (entity, aspect, pages, queries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (entity, aspect, pages, queries) in &wire_results {
        assert!(!pages.is_empty(), "entity {entity}: no pages harvested");
        assert!(
            queries.len() <= N_QUERIES as usize,
            "entity {entity}: budget exceeded"
        );
        let reference = harvest_in_process(&corpus, *entity, aspect);
        assert_eq!(
            pages, &reference,
            "entity {entity}/{aspect}: concurrent serving changed the harvest outcome"
        );
    }

    // Service-wide stats after the fleet: every session created and
    // closed, real work executed, and the domain solve shared 8 ways.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats").stats.unwrap();
    assert_eq!(stats.sessions_created, 8);
    assert_eq!(stats.sessions_closed, 8);
    assert_eq!(stats.active_sessions, 0);
    assert!(stats.steps_executed > 0);
    assert!(stats.queries_fired >= 8, "at least one seed per session");
    assert_eq!(stats.workers, 2);
    // All 8 sessions share one domain peer set. Concurrent first
    // requests may each solve (the solve runs outside the cache lock),
    // so hit/miss split is timing-dependent — but every lookup is
    // accounted for and at least one solve happened.
    assert_eq!(stats.domain_cache_hits + stats.domain_cache_misses, 8);
    assert!(stats.domain_cache_misses >= 1);

    // A repeat of an already-served harvest re-fires identical queries:
    // they must all land in the retrieval cache.
    let misses_before = stats.retrieval_cache_misses;
    let (entity, aspect) = specs[0];
    let (pages, _) = harvest_over_wire(addr, entity, aspect);
    assert_eq!(pages, wire_results[0].2, "repeat harvest must match");
    let stats = client.stats().expect("stats").stats.unwrap();
    assert_eq!(
        stats.retrieval_cache_misses, misses_before,
        "repeat harvest must be served entirely from the retrieval cache"
    );
    assert!(stats.retrieval_cache_hits > 0);
    assert!(stats.retrieval_cache_hit_rate > 0.0);

    handle.shutdown();
}

#[test]
fn bad_requests_get_structured_errors_not_disconnects() {
    let corpus = corpus();
    let mut handle = start_server(corpus);
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.request(&Request::op("ping")).expect("ping");

    let err = client
        .create(9999, "RESEARCH", "l2qbal", None, 0)
        .unwrap_err();
    assert!(err.to_string().contains("unknown entity"));
    let err = client.create(0, "NOPE", "l2qbal", None, 0).unwrap_err();
    assert!(err.to_string().contains("unknown aspect"));
    let err = client.create(0, "RESEARCH", "bogus", None, 0).unwrap_err();
    assert!(err.to_string().contains("unknown selector"));
    let err = client.status(424242).unwrap_err();
    assert!(err.to_string().contains("no such session"));
    let err = client.request(&Request::op("frobnicate")).unwrap_err();
    assert!(err.to_string().contains("unknown op"));

    // The connection survived all five refusals.
    client.request(&Request::op("ping")).expect("ping again");
    handle.shutdown();
}

#[test]
fn client_shutdown_op_stops_the_server() {
    let corpus = corpus();
    let handle = start_server(corpus);
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown_server().expect("shutdown");
    for _ in 0..100 {
        if handle.is_stopped() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server did not observe the shutdown op");
}
