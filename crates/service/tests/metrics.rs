//! End-to-end observability test: a real server on an ephemeral port, one
//! wire harvest, then the `metrics` op in both formats.
//!
//! The metrics registry is process-global, so every assertion here is
//! `>=` / presence, never exact equality.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig};
use l2q_service::{
    BundleConfig, Client, HarvestServer, Request, ServerConfig, ServerHandle, ServingBundle,
};
use std::sync::Arc;

fn start_server() -> ServerHandle {
    let corpus: Arc<Corpus> = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 12,
                pages_per_entity: 10,
                seed: 11,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    let bundle = Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ));
    HarvestServer::spawn(
        bundle,
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port")
}

/// Run one full session so every instrumented layer records something.
fn run_one_harvest(client: &mut Client) {
    let session = client
        .create(0, "RESEARCH", "l2qbal", Some(3), 3)
        .expect("create session");
    loop {
        let resp = client.step(session, 2, 100).expect("step");
        if resp.state.as_deref() != Some("running") {
            break;
        }
    }
    client.close(session).expect("close");
}

fn counter(m: &serde_json::Value, series: &str) -> f64 {
    m.get("counters")
        .and_then(|c| c.get(series))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("counter '{series}' missing"))
}

fn histogram_field(m: &serde_json::Value, series: &str, field: &str) -> Option<f64> {
    m.get("histograms")?.get(series)?.get(field)?.as_f64()
}

#[test]
fn metrics_op_reports_harvest_and_wire_series() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    run_one_harvest(&mut client);

    let resp = client.metrics("json").expect("metrics op");
    let m = resp.metrics.expect("json body");

    // Per-step harvest counters flowed through the core loop.
    assert!(counter(&m, "harvest_steps_total") >= 1.0);
    assert!(counter(&m, "harvest_sessions_total") >= 1.0);
    assert!(
        counter(&m, "harvest_queries_fired_total") >= 2.0,
        "seed + at least one selected query"
    );
    // Retrieval- and domain-cache counters migrated onto the registry.
    assert!(counter(&m, "retrieval_cache_misses_total") >= 1.0);
    assert!(counter(&m, "domain_cache_misses_total") >= 1.0);
    // Session lifecycle counters from the serving layer.
    assert!(counter(&m, "service_sessions_created_total") >= 1.0);
    assert!(counter(&m, "service_sessions_closed_total") >= 1.0);
    assert!(counter(&m, "scheduler_jobs_total") >= 1.0);

    // The incremental entity-phase path is active behind the serving
    // layer: each session's first build is a rebuild, later steps reuse
    // the carried state, and warm-started solves record sweep savings.
    assert!(counter(&m, "entity_phase_rebuilds_total") >= 1.0);
    assert!(counter(&m, "entity_phase_incremental_reuses_total") >= 1.0);
    assert!(
        histogram_field(&m, "solver_warm_start_sweeps_saved", "count").unwrap_or(0.0) >= 1.0,
        "warm-started solves must record their sweep savings"
    );
    assert!(histogram_field(&m, "graph_solve_sweeps", "count").unwrap_or(0.0) >= 1.0);

    // Scheduler queue-depth gauge is registered (0 once drained).
    let depth = m
        .get("gauges")
        .and_then(|g| g.get("scheduler_queue_depth"))
        .and_then(|v| v.as_f64())
        .expect("queue depth gauge registered");
    assert!(depth >= 0.0);

    // Per-op wire latency histograms with quantiles.
    let step_series = "wire_request_seconds{op=\"step\"}";
    assert!(
        histogram_field(&m, step_series, "count").expect("step op histogram") >= 1.0,
        "step latency must have been recorded"
    );
    assert!(histogram_field(&m, step_series, "p50").is_some());
    assert!(histogram_field(&m, step_series, "p95").is_some());
    assert!(histogram_field(&m, "harvest_step_seconds", "count").unwrap_or(0.0) >= 1.0);
    assert!(histogram_field(&m, "scheduler_queue_wait_seconds", "count").unwrap_or(0.0) >= 1.0);
}

#[test]
fn metrics_op_text_format_and_bad_format() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    run_one_harvest(&mut client);

    let resp = client.metrics("text").expect("metrics text");
    let text = resp.metrics_text.expect("text body");
    assert!(text.contains("# TYPE harvest_steps_total counter"));
    assert!(text.contains("wire_request_seconds_bucket{"));
    assert!(text.contains("le=\"+Inf\""));

    let mut bad = Request::op("metrics");
    bad.format = Some("xml".into());
    let raw = client.request_raw(&bad).expect("transport ok");
    assert!(!raw.ok);
    assert!(raw.error.unwrap().contains("unknown metrics format"));

    // Unknown ops land in the "unknown" label bucket, not a new series.
    let _ = client.request_raw(&Request::op("definitely-not-an-op"));
    let resp = client.metrics("text").expect("metrics after unknown op");
    let text = resp.metrics_text.unwrap();
    assert!(text.contains("wire_requests_total{op=\"unknown\"}"));
    assert!(!text.contains("definitely-not-an-op"));
}
