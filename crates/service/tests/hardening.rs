//! Adversarial-client tests for the hardened serving boundary: slow
//! writers, oversized and garbage requests, missed deadlines, panicking
//! step batches, and connection-capacity refusals — all against a real
//! `HarvestServer` on an ephemeral port.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig};
use l2q_service::{
    BundleConfig, Client, ClientConfig, HarvestServer, Request, ServerConfig, ServerHandle,
    ServingBundle,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn corpus() -> Arc<Corpus> {
    Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 8,
                pages_per_entity: 10,
                seed: 11,
                ..CorpusConfig::tiny()
            },
        )
        .unwrap(),
    )
}

fn start_server(cfg: ServerConfig) -> ServerHandle {
    let corpus = corpus();
    let oracle = RelevanceOracle::from_truth(&corpus);
    let bundle = Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ));
    HarvestServer::spawn(bundle, cfg, "127.0.0.1:0").expect("bind ephemeral port")
}

fn default_cfg() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 32,
        ..ServerConfig::default()
    }
}

/// Read one newline-terminated line off a raw socket within `timeout`.
fn read_line_raw(stream: &mut TcpStream, timeout: Duration) -> std::io::Result<String> {
    stream.set_read_timeout(Some(timeout))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed before newline",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            return Ok(String::from_utf8_lossy(&buf[..pos]).into_owned());
        }
    }
}

/// The seed server cleared its line buffer on every read timeout, so a
/// request arriving slower than the 200ms read-timeout slices was
/// silently corrupted. A byte-at-a-time writer with 250ms pauses must
/// still get `ok:true`.
#[test]
fn slow_writer_request_survives_read_timeouts() {
    let mut handle = start_server(default_cfg());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");

    let request = b"{\"op\":\"ping\",\"request_id\":9}\n";
    // Pause between the first bytes (well past the server's 200ms read
    // timeout) to force several Idle cycles mid-line, then finish.
    for &b in &request[..4] {
        stream.write_all(&[b]).expect("write byte");
        std::thread::sleep(Duration::from_millis(250));
    }
    stream.write_all(&request[4..]).expect("write rest");

    let resp = read_line_raw(&mut stream, Duration::from_secs(5)).expect("response");
    assert!(
        resp.contains("\"ok\":true"),
        "slow-written ping was corrupted: {resp}"
    );
    assert!(
        resp.contains("\"request_id\":9"),
        "request_id not echoed: {resp}"
    );
    handle.shutdown();
}

/// A request line past `max_line_bytes` gets a polite structured error
/// and a graceful close — not unbounded buffering or a reset that eats
/// the error.
#[test]
fn oversized_request_line_is_refused_then_connection_closes() {
    let mut handle = start_server(ServerConfig {
        max_line_bytes: 4096,
        ..default_cfg()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");

    let mut line = vec![b'x'; 64 * 1024];
    line.push(b'\n');
    stream.write_all(&line).expect("write oversized line");

    let resp = read_line_raw(&mut stream, Duration::from_secs(5)).expect("error response");
    assert!(resp.contains("\"ok\":false"), "expected refusal: {resp}");
    assert!(resp.contains("exceeds"), "unexpected error text: {resp}");

    // The server hangs up after the refusal: the next read sees EOF.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    let closed = stream.read_to_end(&mut rest).is_ok();
    assert!(closed, "connection was reset, not closed gracefully");
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
    handle.shutdown();
}

/// Garbage before valid JSON yields a bad-request error without
/// poisoning the connection for the valid request that follows.
#[test]
fn garbage_then_valid_request_keeps_the_connection_usable() {
    let mut handle = start_server(default_cfg());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");

    stream.write_all(b"definitely not json\n").expect("garbage");
    let first = read_line_raw(&mut stream, Duration::from_secs(5)).expect("error response");
    assert!(first.contains("\"ok\":false"), "expected refusal: {first}");
    assert!(first.contains("bad request"), "unexpected error: {first}");

    stream
        .write_all(b"{\"op\":\"ping\",\"request_id\":3}\n")
        .expect("valid request");
    let second = read_line_raw(&mut stream, Duration::from_secs(5)).expect("ping response");
    assert!(
        second.contains("\"ok\":true"),
        "connection poisoned: {second}"
    );
    assert!(
        second.contains("\"request_id\":3"),
        "id not echoed: {second}"
    );
    handle.shutdown();
}

/// A step batch that misses its deadline returns a deadline error
/// immediately; the batch still completes in the background.
#[test]
fn deadline_exceeded_step_errors_while_batch_completes_in_background() {
    let mut handle = start_server(default_cfg());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The sleep probe selector stalls 300ms, then exhausts.
    let session = client
        .create(0, "RESEARCH", "sleep=300", Some(4), 0)
        .expect("create sleep session");
    let err = client
        .step_with_deadline(session, 1, 0, 50)
        .expect_err("50ms deadline must cut a 300ms batch short");
    assert!(
        err.to_string().contains("deadline"),
        "unexpected error: {err}"
    );

    // The batch keeps running server-side and finishes the session.
    let mut state = String::new();
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        state = client
            .status(session)
            .expect("status")
            .state
            .unwrap_or_default();
        if state != "running" {
            break;
        }
    }
    assert_eq!(
        state, "finished:selector_exhausted",
        "background batch never completed"
    );
    handle.shutdown();
}

/// A panicking step batch fails only its own session: the worker pool
/// keeps its full complement, other sessions keep harvesting, and the
/// panic is visible in `worker_panics_total`.
#[test]
fn panicking_batch_fails_session_but_server_keeps_serving() {
    let mut handle = start_server(default_cfg());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let doomed = client
        .create(0, "RESEARCH", "panic", Some(4), 0)
        .expect("create panic session");
    let err = client
        .step(doomed, 1, 0)
        .expect_err("panic batch must refuse");
    assert!(
        err.to_string().contains("failed"),
        "unexpected error: {err}"
    );
    let status = client.status(doomed).expect("status");
    assert_eq!(status.state.as_deref(), Some("failed"));

    // Re-stepping a failed session refuses without executing anything.
    let err = client.step(doomed, 1, 0).expect_err("failed session steps");
    assert!(err.to_string().contains("failed"), "unexpected: {err}");

    // The pool survived: full worker count, and a healthy session still
    // harvests to completion.
    let stats = client.stats().expect("stats").stats.unwrap();
    assert_eq!(stats.workers, 2, "worker died without respawn");
    let healthy = client
        .create(1, "RESEARCH", "l2qbal", Some(3), 0)
        .expect("create healthy session");
    loop {
        let resp = client.step(healthy, 4, 40).expect("healthy step");
        if resp.state.as_deref() != Some("running") {
            break;
        }
    }

    // The panic is accounted for in the metrics registry.
    let text = client
        .metrics("text")
        .expect("metrics")
        .metrics_text
        .unwrap();
    let panics = text
        .lines()
        .find(|l| l.starts_with("worker_panics_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(panics >= 1, "worker_panics_total not incremented:\n{text}");
    handle.shutdown();
}

/// Connections past `max_connections` get a one-line polite refusal; a
/// freed slot admits new connections again.
#[test]
fn connections_past_the_cap_are_politely_refused() {
    let mut handle = start_server(ServerConfig {
        max_connections: 2,
        ..default_cfg()
    });
    let addr = handle.addr();

    // Occupy both slots and prove they are being served.
    let mut held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for conn in held.iter_mut() {
        conn.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        let resp = read_line_raw(conn, Duration::from_secs(5)).expect("pong");
        assert!(resp.contains("\"ok\":true"), "holder not served: {resp}");
    }

    // The third connection is refused with the capacity error.
    let mut extra = TcpStream::connect(addr).expect("connect");
    let resp = read_line_raw(&mut extra, Duration::from_secs(5)).expect("refusal line");
    assert!(
        resp.contains("server at capacity"),
        "expected capacity refusal: {resp}"
    );
    assert!(resp.contains("retry_after_ms"), "no retry hint: {resp}");

    // Releasing a slot re-admits: drop one holder, then a fresh
    // connection gets served (allow the accept loop a few tries to
    // observe the freed slot).
    drop(held.pop());
    let mut admitted = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        match read_line_raw(&mut conn, Duration::from_secs(2)) {
            Ok(resp) if resp.contains("\"ok\":true") => {
                admitted = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(admitted, "freed slot never re-admitted a connection");
    handle.shutdown();
}

/// The client's response wait is bounded: a server that never answers
/// yields `ClientError::Timeout`, not an eternal hang.
#[test]
fn client_times_out_instead_of_hanging_forever() {
    // A bare listener that accepts and then stays silent.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (_conn, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
    });

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            response_timeout: Duration::from_millis(300),
            read_slice: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let started = std::time::Instant::now();
    let err = client
        .request(&Request::op("ping"))
        .expect_err("silent server must time out");
    assert!(
        err.to_string().contains("no response"),
        "unexpected error: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "timeout took {:?}",
        started.elapsed()
    );
    server.join().unwrap();
}

/// Deadline-semantics parity between serve modes: the `deadline_ms`
/// clock must start when the request enters the server, so time spent
/// *waiting for a worker* counts against the deadline identically in
/// both engines. Reactor mode stamps the deadline at parse time;
/// threads mode starts its clock at `handle_step` entry (session
/// lookup/restore and scheduler submit included) and gives
/// `recv_timeout` only the remaining budget. With one worker occupied
/// by a slow batch, a small-deadline step on another session must come
/// back as a deadline error on time — not wait out the whole queue —
/// under either mode, and the cut-short batch must still complete in
/// the background.
#[test]
fn queue_wait_counts_against_the_deadline_in_both_serve_modes() {
    for mode in [
        l2q_service::ServeMode::Reactor,
        l2q_service::ServeMode::Threads,
    ] {
        let mut handle = start_server(ServerConfig {
            workers: 1,
            queue_cap: 32,
            serve_mode: mode,
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");

        // Both sessions exist before the single worker gets busy.
        let blocker = client
            .create(0, "RESEARCH", "sleep=600", Some(4), 0)
            .expect("create blocker");
        let victim = client
            .create(1, "RESEARCH", "l2qbal", Some(3), 0)
            .expect("create victim");

        // Occupy the only worker with the 600ms sleeping batch.
        let blocker_thread = std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect blocker client");
            let _ = c.step(blocker, 1, 0);
        });
        std::thread::sleep(Duration::from_millis(100));

        let started = std::time::Instant::now();
        let err = client
            .step_with_deadline(victim, 1, 0, 100)
            .expect_err("queued step must miss its 100ms deadline");
        let elapsed = started.elapsed();
        assert!(
            err.to_string().contains("deadline"),
            "[{mode:?}] unexpected error: {err}"
        );
        assert!(
            elapsed < Duration::from_millis(450),
            "[{mode:?}] deadline ignored queue wait: errored only after {elapsed:?}"
        );

        // The victim's batch still runs once the worker frees up.
        let mut stepped = false;
        for _ in 0..150 {
            std::thread::sleep(Duration::from_millis(20));
            let status = client.status(victim).expect("status");
            if status.steps_taken.unwrap_or(0) >= 1 {
                stepped = true;
                break;
            }
        }
        assert!(
            stepped,
            "[{mode:?}] cut-short batch never ran in background"
        );

        blocker_thread.join().expect("blocker thread");
        handle.shutdown();
    }
}

/// A/B guard for the legacy path: with `--serve-mode threads` the
/// thread-per-connection engine must keep every boundary semantic the
/// reactor (now the default everywhere else in this suite) is tested
/// for — slow writers survive read-timeout slices, oversized lines get
/// a polite refusal + close, and garbage does not poison a connection.
#[test]
fn threads_mode_keeps_the_hardening_semantics() {
    let mut handle = start_server(ServerConfig {
        max_line_bytes: 4096,
        serve_mode: l2q_service::ServeMode::Threads,
        ..default_cfg()
    });
    let addr = handle.addr();

    // Slow writer: byte-at-a-time with pauses past the read slice.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = b"{\"op\":\"ping\",\"request_id\":9}\n";
    for &b in &request[..4] {
        stream.write_all(&[b]).expect("write byte");
        std::thread::sleep(Duration::from_millis(250));
    }
    stream.write_all(&request[4..]).expect("write rest");
    let resp = read_line_raw(&mut stream, Duration::from_secs(5)).expect("response");
    assert!(resp.contains("\"ok\":true"), "slow ping corrupted: {resp}");

    // Garbage, then a valid request on the same connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"not json\n").expect("garbage");
    let first = read_line_raw(&mut stream, Duration::from_secs(5)).expect("error");
    assert!(first.contains("bad request"), "unexpected: {first}");
    stream
        .write_all(b"{\"op\":\"ping\",\"request_id\":3}\n")
        .expect("valid request");
    let second = read_line_raw(&mut stream, Duration::from_secs(5)).expect("pong");
    assert!(second.contains("\"ok\":true"), "poisoned: {second}");

    // Oversized line: polite refusal, then EOF.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut line = vec![b'x'; 64 * 1024];
    line.push(b'\n');
    stream.write_all(&line).expect("write oversized");
    let resp = read_line_raw(&mut stream, Duration::from_secs(5)).expect("refusal");
    assert!(resp.contains("exceeds"), "unexpected: {resp}");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    assert!(
        stream.read_to_end(&mut rest).is_ok() && rest.is_empty(),
        "oversized connection not closed gracefully"
    );

    handle.shutdown();
}
