//! # l2q-baselines — every comparison method of the paper's evaluation
//!
//! * Sect. VI-B ablations: **RND** (random), **P+q**/**R+q** (domain
//!   queries without templates). The **P**, **R**, **P+t**, **R+t**
//!   ablations are configurations of [`l2q_core::L2qSelector`].
//! * Sect. VI-C independent baselines: **LM** (language feedback model),
//!   **AQ** (adaptive querying for text databases), **HR** (harvest rate
//!   for structured sources, template-averaged), **MQ** (manual queries
//!   from a user study — here a curated generic list).
//!
//! All implement [`l2q_core::QuerySelector`] and plug into the same
//! [`l2q_core::Harvester`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aq;
pub mod domain_q;
pub mod hr;
pub mod lm;
pub mod mq;
pub mod rnd;

pub use aq::AqSelector;
pub use domain_q::DomainQuerySelector;
pub use hr::HrSelector;
pub use lm::LmSelector;
pub use mq::MqSelector;
pub use rnd::RndSelector;
