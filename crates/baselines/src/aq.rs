//! AQ — the adaptive-querying baseline (paper Sect. VI-C), adapted from
//! Zerfos et al.'s keyword-query crawling of textual hidden-web databases:
//! "It was designed to crawl text databases, using query statistics
//! adaptive to the current results. As it lacks the notion of relevance,
//! to adopt it for our purpose, the query statistics are only computed
//! over relevant pages instead of all pages."
//!
//! The adaptive policy estimates, from the downloaded sample, which
//! keyword will return the most *new* documents per unit cost. Our
//! corpus-local analogue: score a candidate by its frequency in the
//! relevant gathered pages (the adaptive "returns" estimator, restricted
//! to relevance) discounted by how many gathered pages already contain it
//! (documents it would re-retrieve).

use l2q_core::{Query, QuerySelector, SelectionInput};
use l2q_text::Bow;

/// The adaptive-querying baseline.
#[derive(Default)]
pub struct AqSelector;

impl AqSelector {
    /// Create the selector.
    pub fn new() -> Self {
        Self
    }
}

impl QuerySelector for AqSelector {
    fn name(&self) -> String {
        "AQ".into()
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        // Aggregate statistics over gathered pages.
        let pages: Vec<(&Bow, bool)> = input
            .gathered
            .iter()
            .zip(input.relevant)
            .map(|(&p, &rel)| (input.corpus.page(p).bow(), rel))
            .collect();

        let mut best: Option<(f64, &Query)> = None;
        for q in input.page_candidates {
            let qbow = Bow::from_words(q.words());
            let mut tf_rel = 0u64;
            let mut df_gathered = 0u64;
            for (bow, rel) in &pages {
                if bow.contains_all(&qbow) {
                    df_gathered += 1;
                    if *rel {
                        // Frequency of the rarest query word approximates
                        // the query's frequency in the page.
                        let f = q
                            .words()
                            .iter()
                            .map(|&w| u64::from(bow.tf(w)))
                            .min()
                            .unwrap_or(0);
                        tf_rel += f;
                    }
                }
            }
            if tf_rel == 0 {
                continue;
            }
            let score = tf_rel as f64 / (1.0 + df_gathered as f64);
            match best {
                Some((s, b)) if score < s || (score == s && *b < *q) => {}
                _ => best = Some((score, q)),
            }
        }
        // Fall back to any unfired candidate if nothing matched relevant
        // pages (e.g. nothing relevant gathered yet).
        best.map(|(_, q)| q.clone())
            .or_else(|| input.page_candidates.first().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{Harvester, L2qConfig};
    use l2q_corpus::{cars_domain, generate, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn aq_harvests_deterministically() {
        let corpus = std::sync::Arc::new(generate(&cars_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("DRIVING").unwrap();
        let mut sel = AqSelector::new();
        let a = harvester.run(EntityId(0), aspect, &mut sel);
        let b = harvester.run(EntityId(0), aspect, &mut sel);
        assert!(!a.iterations.is_empty());
        let qa: Vec<_> = a.queries().collect();
        let qb: Vec<_> = b.queries().collect();
        assert_eq!(qa, qb);
    }
}
