//! RND — the random reference point (paper Sect. VI-B): "randomly selects
//! a query from all the candidates".

use l2q_core::{Query, QuerySelector, SelectionInput};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Uniform-random query selection over the full candidate pool (page
/// candidates plus frequent domain queries when a domain model is given).
pub struct RndSelector {
    seed: u64,
    rng: StdRng,
}

impl RndSelector {
    /// Create with a seed (runs are reproducible per seed).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl QuerySelector for RndSelector {
    fn name(&self) -> String {
        "RND".into()
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let fired: HashSet<&Query> = input.fired.iter().collect();
        let mut pool: Vec<&Query> = input.page_candidates.iter().collect();
        if let Some(dm) = input.domain {
            pool.extend(dm.frequent_queries().filter(|q| !fired.contains(q)));
        }
        pool.retain(|q| !fired.contains(q));
        pool.choose(&mut self.rng).map(|q| (*q).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{Harvester, L2qConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn rnd_is_reproducible_per_seed() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut s1 = RndSelector::new(5);
        let mut s2 = RndSelector::new(5);
        let a = harvester.run(EntityId(0), aspect, &mut s1);
        let b = harvester.run(EntityId(0), aspect, &mut s2);
        let qa: Vec<_> = a.queries().collect();
        let qb: Vec<_> = b.queries().collect();
        assert_eq!(qa, qb);

        let mut s3 = RndSelector::new(6);
        let c = harvester.run(EntityId(0), aspect, &mut s3);
        let qc: Vec<_> = c.queries().collect();
        // Different seed should (almost surely) differ.
        assert_ne!(qa, qc);
    }
}
