//! LM — the language-feedback-model baseline (paper Sect. VI-C), adapted
//! from Zhai & Lafferty's model-based feedback: "In each iteration, it
//! chooses the query with maximum likelihood on the k most relevant
//! current pages. In particular, we use k = 1, which results in the best
//! performance on our corpora."
//!
//! Page "relevance" here is the materialized Y; among relevant gathered
//! pages we rank by how many of their paragraphs the target aspect covers
//! (tie: earliest gathered) and build a maximum-likelihood feedback model
//! over the top-k. Candidates are scored by their log-likelihood under
//! that model with small additive smoothing.

use l2q_core::{Query, QuerySelector, SelectionInput};
use l2q_text::Bow;

/// The LM feedback baseline.
pub struct LmSelector {
    /// Number of feedback pages (paper: 1).
    pub k: usize,
}

impl LmSelector {
    /// The paper's configuration (k = 1).
    pub fn new() -> Self {
        Self { k: 1 }
    }
}

impl Default for LmSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl QuerySelector for LmSelector {
    fn name(&self) -> String {
        "LM".into()
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        // Rank relevant gathered pages by relevant-paragraph count.
        let mut ranked: Vec<(usize, usize)> = input
            .gathered
            .iter()
            .enumerate()
            .filter(|&(i, _)| input.relevant[i])
            .map(|(i, &p)| {
                let page = input.corpus.page(p);
                (i, page.relevant_paragraphs(input.aspect))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        // Feedback model over the top-k pages (fall back to all gathered
        // pages if nothing is relevant yet).
        let mut feedback = Bow::new();
        if ranked.is_empty() {
            for &p in input.gathered {
                feedback.merge(input.corpus.page(p).bow());
            }
        } else {
            for &(i, _) in ranked.iter().take(self.k) {
                feedback.merge(input.corpus.page(input.gathered[i]).bow());
            }
        }
        if feedback.is_empty() {
            return None;
        }

        // Score candidates by smoothed log-likelihood under the feedback
        // model; longer queries are not penalized per-word (the model is a
        // product over words, as in query likelihood).
        let total = feedback.len() as f64;
        let vocab = feedback.distinct().max(1) as f64;
        let mut best: Option<(f64, &Query)> = None;
        for q in input.page_candidates {
            let mut ll = 0.0;
            for &w in q.words() {
                let p = (f64::from(feedback.tf(w)) + 0.5) / (total + 0.5 * vocab);
                ll += p.ln();
            }
            // Normalize by length so unigrams and trigrams compete on
            // per-word likelihood.
            let score = ll / q.len().max(1) as f64;
            match best {
                Some((s, b)) if score < s || (score == s && *b < *q) => {}
                _ => best = Some((score, q)),
            }
        }
        best.map(|(_, q)| q.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{Harvester, L2qConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn lm_selects_queries_and_harvests() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = LmSelector::new();
        let rec = harvester.run(EntityId(1), aspect, &mut sel);
        assert!(!rec.iterations.is_empty());
        // Deterministic.
        let rec2 = harvester.run(EntityId(1), aspect, &mut sel);
        let qa: Vec<_> = rec.queries().collect();
        let qb: Vec<_> = rec2.queries().collect();
        assert_eq!(qa, qb);
    }
}
