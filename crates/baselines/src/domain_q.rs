//! P+q / R+q — the template-free domain ablation (paper Sect. VI-B):
//! "directly uses queries (+q) of best precision or recall learnt from the
//! domain phase, to show the problem of entity variations."
//!
//! Each iteration fires the next-best domain query (ranked by its
//! domain-phase utility) that has not been fired yet — no adaptation to
//! the target entity at all, which is exactly why entity variation hurts
//! it.

use l2q_core::{Query, QuerySelector, SelectionInput};
use std::collections::HashSet;

/// Selector firing the domain phase's top queries verbatim.
pub struct DomainQuerySelector {
    by_precision: bool,
    /// How many top queries to pre-rank per aspect.
    depth: usize,
}

impl DomainQuerySelector {
    /// Rank by domain precision (`P+q`).
    pub fn precision() -> Self {
        Self {
            by_precision: true,
            depth: 64,
        }
    }

    /// Rank by domain recall (`R+q`).
    pub fn recall() -> Self {
        Self {
            by_precision: false,
            depth: 64,
        }
    }
}

impl QuerySelector for DomainQuerySelector {
    fn name(&self) -> String {
        if self.by_precision {
            "P+q".into()
        } else {
            "R+q".into()
        }
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let dm = input.domain?;
        let fired: HashSet<&Query> = input.fired.iter().collect();
        dm.best_queries(input.aspect, self.by_precision, self.depth)
            .into_iter()
            .find(|q| !fired.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{learn_domain, Harvester, L2qConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn fires_distinct_domain_queries_in_rank_order() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let cfg = L2qConfig::default();
        let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
        let dm = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: Some(&dm),
            cfg,
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = DomainQuerySelector::precision();
        let rec = harvester.run(EntityId(6), aspect, &mut sel);
        let fired: Vec<_> = rec.queries().cloned().collect();
        assert_eq!(fired.len(), 3);
        // The fired queries must be a prefix of the domain ranking,
        // in order.
        let ranked = dm.best_queries(aspect, true, 64);
        let positions: Vec<usize> = fired
            .iter()
            .map(|q| ranked.iter().position(|r| r == q).expect("from ranking"))
            .collect();
        for w in positions.windows(2) {
            assert!(w[0] < w[1], "out of rank order: {positions:?}");
        }
    }

    #[test]
    fn without_domain_model_selects_nothing() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = DomainQuerySelector::recall();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert_eq!(rec.iterations.len(), 0);
    }
}
