//! MQ — the manual-querying baseline (paper Sect. VI-C): "based on human
//! designed queries. For each domain and aspect, we asked nine graduate
//! students to provide five queries that they would use to search for the
//! target entity aspect."
//!
//! The paper notes "generally good inter-user agreement" and reports the
//! user average; our deterministic equivalent is a curated list of five
//! generic (entity-agnostic) aspect queries per domain and aspect, fired
//! in order. Entity-specific manual queries "do not scale up" — exactly
//! the gap L2Q exploits.

use l2q_core::{Query, QuerySelector, SelectionInput};
use l2q_text::Sym;
use std::collections::HashSet;

/// Five manual queries per aspect for the researchers domain, in the
/// paper's Fig. 9 aspect order.
/// The lists mirror what the paper's user study produced: mostly
/// well-aimed generic aspect keywords ("award", "distinguished",
/// "award won", …) with the occasional term that happens not to match the
/// corpus's vocabulary — users design queries without seeing the corpus.
pub const RESEARCHER_QUERIES: [[&str; 5]; 7] = [
    // BIOGRAPHY
    [
        "biography",
        "born",
        "early life",
        "personal history",
        "grew up",
    ],
    // PRESENTATION
    [
        "keynote",
        "talk",
        "presentation slides",
        "seminar",
        "invited talk",
    ],
    // AWARD (sample queries from the paper: award, distinguished, award won, …)
    ["award", "distinguished", "prize", "award won", "recipient"],
    // RESEARCH
    [
        "research",
        "publications",
        "papers",
        "research interests",
        "projects",
    ],
    // EDUCATION
    ["phd", "education", "graduated", "alma mater", "thesis"],
    // EMPLOYMENT
    [
        "professor",
        "employment history",
        "faculty",
        "job",
        "position",
    ],
    // CONTACT
    ["contact", "email address", "phone", "office", "homepage"],
];

/// Five manual queries per aspect for the cars domain.
pub const CAR_QUERIES: [[&str; 5]; 7] = [
    // VERDICT
    ["review", "verdict", "rating", "pros cons", "best in class"],
    // INTERIOR
    ["interior", "cabin", "seats", "legroom", "dashboard"],
    // EXTERIOR
    ["exterior", "styling", "wheels", "paint", "design"],
    // PRICE
    ["price", "msrp", "cost", "deals", "invoice"],
    // RELIABILITY
    [
        "reliability",
        "warranty",
        "recall",
        "problems",
        "complaints",
    ],
    // SAFETY
    ["safety", "crash test", "airbags", "crash rating", "nhtsa"],
    // DRIVING
    ["driving", "handling", "horsepower", "gas mileage", "mpg"],
];

/// The manual-querying baseline: fires the curated list in order.
#[derive(Default)]
pub struct MqSelector;

impl MqSelector {
    /// Create the selector.
    pub fn new() -> Self {
        Self
    }

    /// The curated query strings for a domain name, or None for unknown
    /// domains.
    pub fn queries_for(domain: &str, aspect_index: usize) -> Option<&'static [&'static str; 5]> {
        match domain {
            "researchers" => RESEARCHER_QUERIES.get(aspect_index),
            "cars" => CAR_QUERIES.get(aspect_index),
            _ => None,
        }
    }
}

impl QuerySelector for MqSelector {
    fn name(&self) -> String {
        "MQ".into()
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let list = Self::queries_for(input.corpus.domain, input.aspect.index())?;
        let fired: HashSet<&Query> = input.fired.iter().collect();
        for text in list {
            // Resolve through the corpus tokenizer; words the corpus never
            // saw are dropped (they cannot retrieve anything anyway).
            let words: Vec<Sym> = input
                .corpus
                .tokenizer
                .tokenize_to_strings(text)
                .iter()
                .filter_map(|w| input.corpus.symbols.get(w))
                .collect();
            if words.is_empty() {
                continue;
            }
            let q = Query::new(&words);
            if !fired.contains(&q) {
                return Some(q);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{Harvester, L2qConfig};
    use l2q_corpus::{cars_domain, generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn mq_fires_curated_queries_in_order() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("AWARD").unwrap();
        let mut sel = MqSelector::new();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert!(!rec.iterations.is_empty());
        // The fired queries must come from the curated AWARD list, in list
        // order (words the corpus never saw are skipped).
        let list = RESEARCHER_QUERIES[aspect.index()];
        let mut cursor = 0;
        for q in rec.queries() {
            let pos = list[cursor..]
                .iter()
                .position(|s| {
                    // Compare against the resolvable part of the curated text.
                    let resolved: Vec<_> = corpus
                        .tokenizer
                        .tokenize_to_strings(s)
                        .into_iter()
                        .filter_map(|w| corpus.symbols.get(&w))
                        .collect();
                    !resolved.is_empty() && Query::new(&resolved) == *q
                })
                .unwrap_or_else(|| {
                    panic!("query '{}' not in curated order", q.render(&corpus.symbols))
                });
            cursor += pos + 1;
        }
    }

    #[test]
    fn both_domains_have_seven_aspect_lists() {
        assert_eq!(RESEARCHER_QUERIES.len(), 7);
        assert_eq!(CAR_QUERIES.len(), 7);
        assert!(MqSelector::queries_for("researchers", 3).is_some());
        assert!(MqSelector::queries_for("cars", 6).is_some());
        assert!(MqSelector::queries_for("unknown", 0).is_none());
        assert!(MqSelector::queries_for("cars", 9).is_none());
    }

    #[test]
    fn mq_works_on_cars() {
        let corpus = std::sync::Arc::new(generate(&cars_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("SAFETY").unwrap();
        let mut sel = MqSelector::new();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert!(!rec.iterations.is_empty());
    }
}
