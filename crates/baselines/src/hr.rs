//! HR — the harvest-rate baseline (paper Sect. VI-C), adapted from Wu et
//! al.'s query selection for crawling structured Web sources: "We first
//! modify its query and record model as a bag of words, and incorporate
//! the notion of relevance … We then apply templates: the statistics of
//! each query is computed as the average over its templates. (We only use
//! templates in HR but not the others, since only HR exploits domain
//! data.)"
//!
//! A template's harvest rate over the domain corpus is
//! `relevant pages covered / total pages covered`; a candidate's score is
//! the mean harvest rate of its templates, with a current-results
//! fallback (fraction of relevant pages among the gathered pages
//! containing the query) for candidates whose templates the domain never
//! saw.

use l2q_core::{templates_of, Query, QuerySelector, SelectionInput};
use l2q_text::Bow;
use std::collections::HashSet;

/// The harvest-rate baseline.
#[derive(Default)]
pub struct HrSelector;

impl HrSelector {
    /// Create the selector.
    pub fn new() -> Self {
        Self
    }
}

impl QuerySelector for HrSelector {
    fn name(&self) -> String {
        "HR".into()
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let fired: HashSet<&Query> = input.fired.iter().collect();
        let mut pool: Vec<&Query> = input.page_candidates.iter().collect();
        if let Some(dm) = input.domain {
            let seen: HashSet<&Query> = pool.iter().copied().collect();
            // HR exploits domain data: extend the pool like L2Q does.
            let extra: Vec<&Query> = dm
                .frequent_queries()
                .filter(|q| !fired.contains(q) && !seen.contains(q))
                .collect();
            pool.extend(extra);
        }
        pool.retain(|q| !fired.contains(q));

        let mut best: Option<(f64, &Query)> = None;
        for q in pool {
            let score = self.score(q, input);
            match best {
                Some((s, b)) if score < s || (score == s && *b < *q) => {}
                _ => best = Some((score, q)),
            }
        }
        best.map(|(_, q)| q.clone())
    }
}

impl HrSelector {
    fn score(&self, q: &Query, input: &SelectionInput<'_>) -> f64 {
        // Template-averaged domain harvest rate.
        if let Some(dm) = input.domain {
            let templates = templates_of(q, input.corpus, input.cfg.template_mode);
            let mut rates = Vec::new();
            for t in &templates {
                if let Some((rel, total)) = dm.template_harvest(input.aspect, t) {
                    if total > 0 {
                        rates.push(f64::from(rel) / f64::from(total));
                    }
                }
            }
            if !rates.is_empty() {
                return rates.iter().sum::<f64>() / rates.len() as f64;
            }
        }
        // Fallback: harvest rate over current results.
        let qbow = Bow::from_words(q.words());
        let mut total = 0u32;
        let mut rel = 0u32;
        for (i, &p) in input.gathered.iter().enumerate() {
            if input.corpus.page(p).bow().contains_all(&qbow) {
                total += 1;
                if input.relevant[i] {
                    rel += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            f64::from(rel) / f64::from(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_aspect::RelevanceOracle;
    use l2q_core::{learn_domain, Harvester, L2qConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
    use l2q_retrieval::SearchEngine;

    #[test]
    fn hr_uses_domain_statistics() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let cfg = L2qConfig::default();
        let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
        let dm = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: Some(&dm),
            cfg,
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = HrSelector::new();
        let rec = harvester.run(EntityId(6), aspect, &mut sel);
        assert!(!rec.iterations.is_empty());
    }

    #[test]
    fn hr_works_without_domain_via_fallback() {
        let corpus =
            std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let engine = SearchEngine::with_defaults(corpus.clone());
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("CONTACT").unwrap();
        let mut sel = HrSelector::new();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert!(!rec.iterations.is_empty());
    }
}
