//! Maximum-entropy (logistic regression) classifier.
//!
//! The paper's per-aspect classifiers are "based on conditional random
//! fields"; for *paragraph-level* (non-sequence) binary classification the
//! CRF reduces to exactly this log-linear model. Training is mini-epoch SGD
//! with L2 regularization over sparse binary-presence features.

use crate::classifier::{BinaryClassifier, Example};
use l2q_text::{Bow, Sym};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LogisticParams {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed as 1/(1+t·decay)).
    pub learning_rate: f64,
    /// Learning-rate decay per epoch.
    pub decay: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self {
            epochs: 8,
            learning_rate: 0.5,
            decay: 0.5,
            l2: 1e-4,
            seed: 13,
        }
    }
}

/// A trained logistic-regression binary classifier (sparse weights).
#[derive(Debug, Clone)]
pub struct Logistic {
    weights: HashMap<Sym, f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Logistic {
    /// Train with the given hyper-parameters.
    pub fn train(examples: &[Example], params: LogisticParams) -> Self {
        let mut weights: HashMap<Sym, f64> = HashMap::new();
        let mut bias = 0.0f64;
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);

        for epoch in 0..params.epochs {
            order.shuffle(&mut rng);
            let lr = params.learning_rate / (1.0 + params.decay * epoch as f64);
            for &i in &order {
                let e = &examples[i];
                let mut z = bias;
                for (w, _) in e.bow.iter() {
                    z += weights.get(&w).copied().unwrap_or(0.0);
                }
                let y = if e.label { 1.0 } else { 0.0 };
                let err = sigmoid(z) - y;
                bias -= lr * err;
                for (w, _) in e.bow.iter() {
                    let entry = weights.entry(w).or_insert(0.0);
                    *entry -= lr * (err + params.l2 * *entry);
                }
            }
        }

        Self { weights, bias }
    }

    /// Train with default hyper-parameters.
    pub fn train_default(examples: &[Example]) -> Self {
        Self::train(examples, LogisticParams::default())
    }

    /// Raw decision score (pre-sigmoid).
    pub fn score(&self, bow: &Bow) -> f64 {
        let mut z = self.bias;
        for (w, _) in bow.iter() {
            z += self.weights.get(&w).copied().unwrap_or(0.0);
        }
        z
    }

    /// Number of non-zero feature weights.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }
}

impl BinaryClassifier for Logistic {
    fn prob(&self, bow: &Bow) -> f64 {
        sigmoid(self.score(bow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;

    fn ex(ids: &[u32], label: bool) -> Example {
        Example {
            bow: ids.iter().copied().map(Sym).collect(),
            label,
        }
    }

    fn separable() -> Vec<Example> {
        let mut data = Vec::new();
        for i in 0..20 {
            data.push(ex(&[1, 5 + (i % 3)], true));
            data.push(ex(&[2, 5 + (i % 3)], false));
        }
        data
    }

    #[test]
    fn learns_separable_data() {
        let data = separable();
        let clf = Logistic::train_default(&data);
        assert_eq!(accuracy(&clf, &data), 1.0);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable();
        let a = Logistic::train_default(&data);
        let b = Logistic::train_default(&data);
        let bow: Bow = [Sym(1), Sym(5)].into_iter().collect();
        assert_eq!(a.prob(&bow), b.prob(&bow));
    }

    #[test]
    fn empty_training_predicts_half() {
        let clf = Logistic::train_default(&[]);
        let bow: Bow = [Sym(1)].into_iter().collect();
        assert!((clf.prob(&bow) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn class_imbalance_shifts_bias() {
        let mut data = vec![ex(&[7], false); 30];
        data.push(ex(&[7], true));
        let clf = Logistic::train_default(&data);
        let bow: Bow = [Sym(7)].into_iter().collect();
        assert!(clf.prob(&bow) < 0.5);
    }
}
