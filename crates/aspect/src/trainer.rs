//! Per-aspect classifier training over a corpus.
//!
//! Mirrors the paper's setup: "we trained one classifier for each Y …
//! which can classify a paragraph as relevant to Y or not. Our aspect
//! classifiers can achieve a high level of accuracy … and thus their
//! output is taken as the ground truth." (Sect. VI-A, Fig. 9.)
//!
//! Training data are the corpus's labelled paragraphs; a held-out split
//! measures the accuracy reported in the Fig. 9 reproduction, and the
//! trained model then materializes Y over *all* pages via the
//! [`crate::oracle::RelevanceOracle`].

use crate::classifier::{accuracy, prf, BinaryClassifier, Example, Prf};
use crate::logistic::{Logistic, LogisticParams};
use crate::naive_bayes::NaiveBayes;
use l2q_corpus::{AspectId, Corpus};
use l2q_text::Bow;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which model family to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModelKind {
    /// Maximum-entropy / logistic regression (default; the CRF stand-in).
    #[default]
    Logistic,
    /// Multinomial Naive Bayes.
    NaiveBayes,
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Fraction of paragraphs used for training (rest evaluates accuracy).
    pub train_fraction: f64,
    /// Cap on negative examples per positive in the *training* split
    /// (evaluation is never subsampled).
    pub max_neg_per_pos: usize,
    /// Split/shuffle seed.
    pub seed: u64,
    /// Logistic hyper-parameters (ignored for NB).
    pub logistic: LogisticParams,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            kind: ModelKind::default(),
            train_fraction: 0.7,
            max_neg_per_pos: 4,
            seed: 17,
            logistic: LogisticParams::default(),
        }
    }
}

/// A trained per-aspect model with its held-out quality metrics.
pub struct AspectModel {
    /// The aspect this model detects.
    pub aspect: AspectId,
    /// Held-out accuracy (the Fig. 9 "Accuracy" column).
    pub accuracy: f64,
    /// Held-out positive-class precision/recall/F1.
    pub prf: Prf,
    /// Number of training examples used.
    pub train_size: usize,
    /// Number of evaluation examples.
    pub eval_size: usize,
    clf: ModelImpl,
}

enum ModelImpl {
    Logistic(Logistic),
    NaiveBayes(NaiveBayes),
}

impl BinaryClassifier for AspectModel {
    fn prob(&self, bow: &Bow) -> f64 {
        match &self.clf {
            ModelImpl::Logistic(m) => m.prob(bow),
            ModelImpl::NaiveBayes(m) => m.prob(bow),
        }
    }
}

/// Train one model per aspect of the corpus.
pub fn train_aspect_models(corpus: &Corpus, config: &TrainConfig) -> Vec<AspectModel> {
    corpus
        .aspects()
        .map(|a| train_one(corpus, a, config))
        .collect()
}

/// Train the model for a single aspect.
pub fn train_one(corpus: &Corpus, aspect: AspectId, config: &TrainConfig) -> AspectModel {
    // Collect all paragraphs as labelled examples.
    let mut examples: Vec<Example> = Vec::new();
    for page in &corpus.pages {
        for para in &page.paragraphs {
            examples.push(Example {
                bow: Bow::from_words(&para.words),
                label: para.label.is_relevant_to(aspect),
            });
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ u64::from(aspect.0));
    examples.shuffle(&mut rng);
    let split = ((examples.len() as f64) * config.train_fraction).round() as usize;
    let (train_all, eval) = examples.split_at(split.min(examples.len()));

    // Subsample training negatives for balance and speed.
    let n_pos = train_all.iter().filter(|e| e.label).count();
    let max_neg = n_pos.max(1) * config.max_neg_per_pos;
    let mut train: Vec<Example> = Vec::with_capacity(n_pos + max_neg);
    let mut neg_taken = 0usize;
    for e in train_all {
        if e.label {
            train.push(e.clone());
        } else if neg_taken < max_neg {
            train.push(e.clone());
            neg_taken += 1;
        }
    }

    let clf = match config.kind {
        ModelKind::Logistic => ModelImpl::Logistic(Logistic::train(&train, config.logistic)),
        ModelKind::NaiveBayes => ModelImpl::NaiveBayes(NaiveBayes::train(&train)),
    };

    let model = AspectModel {
        aspect,
        accuracy: 0.0,
        prf: Prf::default(),
        train_size: train.len(),
        eval_size: eval.len(),
        clf,
    };
    let acc = accuracy(&model, eval);
    let metrics = prf(&model, eval);
    AspectModel {
        accuracy: acc,
        prf: metrics,
        ..model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap()
    }

    #[test]
    fn trained_models_are_accurate_like_fig9() {
        let c = corpus();
        let models = train_aspect_models(&c, &TrainConfig::default());
        assert_eq!(models.len(), c.aspect_count());
        for m in &models {
            assert!(
                m.accuracy >= 0.85,
                "aspect {} accuracy {:.3} below the paper's weakest classifier",
                c.aspect_name(m.aspect),
                m.accuracy
            );
            assert!(m.train_size > 0);
            assert!(m.eval_size > 0);
        }
    }

    #[test]
    fn naive_bayes_variant_also_trains() {
        let c = corpus();
        let cfg = TrainConfig {
            kind: ModelKind::NaiveBayes,
            ..Default::default()
        };
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let m = train_one(&c, research, &cfg);
        assert!(m.accuracy >= 0.8, "NB accuracy {:.3}", m.accuracy);
    }

    #[test]
    fn training_is_deterministic() {
        let c = corpus();
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let a = train_one(&c, research, &TrainConfig::default());
        let b = train_one(&c, research, &TrainConfig::default());
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.prf, b.prf);
    }
}
