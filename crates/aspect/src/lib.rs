//! # l2q-aspect — aspect classifiers materializing the target function Y
//!
//! The paper models the target aspect as a relevance function `Y : P → {1,0}`
//! and materializes it with one pre-trained paragraph classifier per aspect,
//! whose output the evaluation then treats as ground truth (Sect. VI-A,
//! Fig. 9). This crate provides:
//!
//! * [`Logistic`] — a maximum-entropy model, the non-sequential core of the
//!   paper's CRF classifiers (paragraph classification is not a sequence-
//!   labelling task, so the linear-chain structure contributes nothing);
//! * [`NaiveBayes`] — a fast baseline for cross-checking;
//! * [`trainer`] — per-aspect training over a corpus with held-out
//!   accuracy (reproducing Fig. 9's accuracy column);
//! * [`RelevanceOracle`] — the materialized Y: page-level relevance for
//!   every (aspect, page) pair, from models or from generator truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod logistic;
pub mod naive_bayes;
pub mod oracle;
pub mod trainer;

pub use classifier::{accuracy, prf, BinaryClassifier, Example, Prf};
pub use logistic::{Logistic, LogisticParams};
pub use naive_bayes::NaiveBayes;
pub use oracle::RelevanceOracle;
pub use trainer::{train_aspect_models, train_one, AspectModel, ModelKind, TrainConfig};
